#!/usr/bin/env sh
# Offline CI for the EPOC workspace.
#
# The workspace is hermetic: every dependency is a path dependency on a
# sibling crate (see `epoc-rt`), so this script must succeed with no
# network access and no crates-io registry. Run it before every push.
#
#   ./ci.sh            # build + test + (if installed) clippy
#   ./ci.sh --quick    # skip the release build

set -eu

cd "$(dirname "$0")"

quick=0
for arg in "$@"; do
    case "$arg" in
    --quick) quick=1 ;;
    *)
        echo "usage: ./ci.sh [--quick]" >&2
        exit 2
        ;;
    esac
done

run() {
    echo "==> $*"
    "$@"
}

export CARGO_NET_OFFLINE=true

if [ "$quick" -eq 0 ]; then
    run cargo build --workspace --release
fi

run cargo test --workspace -q
# The [[bench]] target is excluded from `cargo test`; make sure it still builds.
run cargo test --workspace -q --benches --no-run

# Clippy is optional tooling: warn-only if the component is missing.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed; skipping lint step" >&2
fi

# simd-matrix: the linalg kernels must agree bit-for-bit between the
# vector and scalar dispatch paths, so run the linalg tests with each
# path force-selected via EPOC_SIMD (the normal test run above covers
# auto-detection; EPOC_SIMD=1 is "auto", which on AVX2 hardware is the
# vector path, and EPOC_SIMD=0 forces the portable fallback).
run env EPOC_SIMD=1 cargo test -q -p epoc-linalg
run env EPOC_SIMD=0 cargo test -q -p epoc-linalg

# bench-check: a quick bench run (3 samples per stage) writes
# target/BENCH_stages.json and fails if any stage's median regressed more
# than 2x against the committed BENCH_baseline.json. The bench binary
# skips the comparison (with a notice) when no baseline is committed.
run env EPOC_BENCH_QUICK=1 EPOC_BENCH_CHECK=1 cargo bench -p epoc-bench --bench stages

# trace-smoke: compile a benchmark with telemetry enabled and validate the
# exported Chrome trace structurally — malformed or empty traces (or a
# compile that lost one of the five stage spans) fail the build. Needs the
# release binaries, so it rides with the non-quick path.
if [ "$quick" -eq 0 ]; then
    run ./target/release/epocc --trace target/trace-smoke.json bench:ghz_n8
    run ./target/release/trace_check --require-qoc target/trace-smoke.json
fi

# chaos-smoke: compile under a fixed-seed failure storm (QSearch budgets
# and GRAPE convergence both injected to fail on every attempt) and
# demand that the exported trace carries recovery.* counters — the
# recovery ladder must both rescue the compile (the run exits 0 with a
# verified report) and leave an audit trail, or degradation happened
# silently.
if [ "$quick" -eq 0 ]; then
    run ./target/release/epocc \
        --faults "grape.converge=always,qsearch.budget=always" --fault-seed 7 \
        --trace target/chaos-smoke.json bench:ghz_n8
    run ./target/release/trace_check --require-recovery target/chaos-smoke.json
fi

# service-smoke: pipe two identical jobs into the epocd compilation
# service with a persistent library. Both reports must verify; the second
# must be served entirely from the warm cache (zero misses, zero GRAPE
# iterations). Then restart the daemon on the persisted library file and
# demand the warm start survives the process boundary.
if [ "$quick" -eq 0 ]; then
    rm -f target/service-smoke-lib.json
    echo "==> epocd service-smoke (cold run, 2 jobs)" >&2
    printf '%s\n' \
        '{"id":1,"bench":"qaoa_n6"}' \
        '{"id":2,"bench":"qaoa_n6"}' \
        '{"cmd":"shutdown"}' \
        | ./target/release/epocd --grape 1 --no-regroup \
            --library target/service-smoke-lib.json \
        > target/service-smoke.out
    [ "$(grep -c '"ok":true' target/service-smoke.out)" -ge 3 ] \
        || { echo "service-smoke: a job or the shutdown checkpoint failed" >&2; exit 1; }
    sed -n 2p target/service-smoke.out | grep -q '"cache_misses":0' \
        || { echo "service-smoke: second job missed the warm cache" >&2; exit 1; }
    sed -n 2p target/service-smoke.out | grep -q '"grape_iterations":0' \
        || { echo "service-smoke: second job re-ran GRAPE" >&2; exit 1; }
    echo "==> epocd service-smoke (restarted daemon, warm library)" >&2
    printf '%s\n' '{"id":3,"bench":"qaoa_n6"}' \
        | ./target/release/epocd --grape 1 --no-regroup \
            --library target/service-smoke-lib.json \
        > target/service-smoke-warm.out
    grep -q '"cache_misses":0' target/service-smoke-warm.out \
        || { echo "service-smoke: restarted daemon compiled cold" >&2; exit 1; }
    grep -q '"grape_iterations":0' target/service-smoke-warm.out \
        || { echo "service-smoke: restarted daemon re-ran GRAPE" >&2; exit 1; }
    echo "==> service-smoke OK (warm cache survived the restart)"
fi

# obs-smoke: run the epocd service over two jobs with a structured JSONL
# log, fetch the live Prometheus exposition over the line protocol, and
# validate the whole observability surface: the log must attribute
# lifecycle events to per-service job ids and the exposition must carry
# job="N" labels plus latency summary quantiles (trace_check
# --require-jobs), or job-scoped telemetry regressed. The one-shot
# epocc --metrics-file exposition must validate as well.
if [ "$quick" -eq 0 ]; then
    echo "==> epocd obs-smoke (2 jobs, metrics command, JSONL log)" >&2
    rm -f target/obs-smoke.log target/obs-smoke-metrics.json
    printf '%s\n' \
        '{"id":1,"bench":"qaoa_n6"}' \
        '{"id":2,"bench":"qaoa_n6"}' \
        '{"cmd":"metrics"}' \
        '{"cmd":"shutdown"}' \
        | ./target/release/epocd --grape 1 --no-regroup \
            --log target/obs-smoke.log \
        > target/obs-smoke.out
    grep '"metrics"' target/obs-smoke.out > target/obs-smoke-metrics.json \
        || { echo "obs-smoke: no metrics response line" >&2; exit 1; }
    run ./target/release/trace_check --require-jobs \
        --log target/obs-smoke.log --metrics target/obs-smoke-metrics.json
    run ./target/release/epocc --metrics-file target/obs-smoke-epocc.prom bench:ghz_n8
    run ./target/release/trace_check --metrics target/obs-smoke-epocc.prom
fi

# resilience-smoke: exercise the service's failure-handling surface end
# to end. (1) Flood a --queue-limit 1 daemon and demand typed queue_full
# rejections alongside at least one completed job, with the job.rejected
# event in the structured log (trace_check --require-event). (2) A job
# with an impossible deadline must fail typed while the next job on the
# same connection succeeds. (3) kill -9 the daemon mid-batch (library
# checkpoint never ran, journal has the inserts) and demand the restarted
# daemon replays the journal into a fully warm cache — zero misses, zero
# GRAPE iterations — proving no completed insert was lost.
if [ "$quick" -eq 0 ]; then
    echo "==> epocd resilience-smoke (queue flood, --queue-limit 1)" >&2
    rm -f target/resilience-flood.log
    printf '%s\n' \
        '{"id":1,"bench":"qaoa_n6"}' \
        '{"id":2,"bench":"qaoa_n6"}' \
        '{"id":3,"bench":"qaoa_n6"}' \
        '{"id":4,"bench":"qaoa_n6"}' \
        | ./target/release/epocd --grape 1 --no-regroup --queue-limit 1 \
            --log target/resilience-flood.log \
        > target/resilience-flood.out
    grep -q '"rejected":"queue_full"' target/resilience-flood.out \
        || { echo "resilience-smoke: flood produced no queue_full rejection" >&2; exit 1; }
    grep -q '"ok":true' target/resilience-flood.out \
        || { echo "resilience-smoke: no job completed under the flood" >&2; exit 1; }
    run ./target/release/trace_check --require-event job.rejected \
        --log target/resilience-flood.log
    echo "==> epocd resilience-smoke (deadline job fails typed, daemon survives)" >&2
    printf '%s\n' \
        '{"id":5,"bench":"qaoa_n6","deadline_ms":0}' \
        '{"id":6,"bench":"ghz_n4"}' \
        '{"cmd":"shutdown"}' \
        | ./target/release/epocd --grape 0 \
        > target/resilience-deadline.out
    sed -n 1p target/resilience-deadline.out | grep -q 'deadline' \
        || { echo "resilience-smoke: deadline job did not fail typed" >&2; exit 1; }
    sed -n 2p target/resilience-deadline.out | grep -q '"ok":true' \
        || { echo "resilience-smoke: daemon did not survive the deadline job" >&2; exit 1; }
    echo "==> epocd resilience-smoke (kill -9 mid-batch, journal replay)" >&2
    rm -f target/resilience-lib.json target/resilience-journal.jsonl
    mkfifo target/resilience-stdin.fifo
    ./target/release/epocd --grape 1 --no-regroup \
        --library target/resilience-lib.json \
        --journal target/resilience-journal.jsonl \
        < target/resilience-stdin.fifo > target/resilience-cold.out &
    epocd_pid=$!
    exec 9> target/resilience-stdin.fifo
    printf '%s\n' '{"id":7,"bench":"qaoa_n6"}' >&9
    for _ in $(seq 1 100); do
        grep -q '"id":7' target/resilience-cold.out 2>/dev/null && break
        sleep 0.2
    done
    grep -q '"id":7.*"ok":true' target/resilience-cold.out \
        || { echo "resilience-smoke: cold journal job failed" >&2; exit 1; }
    kill -9 "$epocd_pid"
    wait "$epocd_pid" 2>/dev/null || true
    exec 9>&-
    rm -f target/resilience-stdin.fifo
    [ ! -e target/resilience-lib.json ] \
        || { echo "resilience-smoke: checkpoint ran before kill -9 (test is vacuous)" >&2; exit 1; }
    [ -s target/resilience-journal.jsonl ] \
        || { echo "resilience-smoke: journal is empty after kill -9" >&2; exit 1; }
    printf '%s\n' '{"id":8,"bench":"qaoa_n6"}' '{"cmd":"shutdown"}' \
        | ./target/release/epocd --grape 1 --no-regroup \
            --library target/resilience-lib.json \
            --journal target/resilience-journal.jsonl \
        > target/resilience-warm.out
    grep -q '"id":8.*"cache_misses":0' target/resilience-warm.out \
        || { echo "resilience-smoke: journal replay lost inserts (cache misses on warm restart)" >&2; exit 1; }
    grep -q '"id":8.*"grape_iterations":0' target/resilience-warm.out \
        || { echo "resilience-smoke: warm restart re-ran GRAPE" >&2; exit 1; }
    echo "==> resilience-smoke OK (typed shedding, typed deadlines, lossless kill -9 restart)"
fi

# sim-smoke: compile a small benchmark with the default hybrid flow, dump
# the schedule, validate it structurally (payloads included — the epoc
# flow must emit simulatable schedules), and replay it at pulse level
# asserting >= 0.99 noiseless process fidelity against the circuit
# unitary. This is the end-to-end digital-twin check: it fails on
# scheduling bugs and wrong block embeddings that GRAPE's own per-block
# fidelity cannot see.
if [ "$quick" -eq 0 ]; then
    run ./target/release/epocc --simulate --sim-check 0.99 \
        --schedule target/sim-smoke-schedule.json bench:wstate_n3
    run ./target/release/schedule_check --require-payloads \
        target/sim-smoke-schedule.json
fi

# hw-smoke: compile under the transmon_awg_8bit control-electronics model
# (8-bit DAC, Gaussian line filter, neighbour crosstalk, slew limit) and
# replay the *conditioned* schedule at pulse level. Constrained GRAPE must
# recover >= 0.95 simulated process fidelity — post-hoc conditioning of
# ideal-electronics pulses lands well below that on the same benchmark
# (see EXPERIMENTS.md), so this gate fails if constraint-aware
# optimization regresses.
if [ "$quick" -eq 0 ]; then
    run ./target/release/epocc --hw transmon_awg_8bit \
        --simulate --sim-check 0.95 bench:wstate_n3
fi

echo "CI OK"

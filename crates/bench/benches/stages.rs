//! Criterion micro-benchmarks for every pipeline stage.
//!
//! ```sh
//! cargo bench -p epoc-bench
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use epoc::baselines::PaqocCompiler;
use epoc::{EpocCompiler, EpocConfig};
use epoc_circuit::{generators, Gate};
use epoc_linalg::{eigh, expm_ih, random_hermitian, random_unitary};
use epoc_partition::{greedy_partition, paqoc_partition, PaqocConfig, PartitionConfig};
use epoc_qoc::{grape, DeviceModel, GrapeConfig};
use epoc_synth::{synthesize, SynthConfig};
use epoc_zx::zx_optimize;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_linalg(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_unitary(16, &mut rng);
    let b = random_unitary(16, &mut rng);
    g.bench_function("matmul_16", |bench| bench.iter(|| a.matmul(&b)));
    let h = random_hermitian(16, &mut rng);
    g.bench_function("eigh_16", |bench| bench.iter(|| eigh(&h).unwrap()));
    g.bench_function("expm_ih_16", |bench| bench.iter(|| expm_ih(&h, 0.5).unwrap()));
    let u = random_unitary(8, &mut rng);
    g.bench_function("unitary_key_8", |bench| {
        bench.iter(|| epoc_linalg::UnitaryKey::new(&u))
    });
    g.finish();
}

fn bench_zx(c: &mut Criterion) {
    let mut g = c.benchmark_group("zx");
    let clifford_t = generators::random_clifford_t(4, 60, 0.2, 11);
    g.bench_function("optimize_cliffordt_4q60", |bench| {
        bench.iter(|| zx_optimize(&clifford_t))
    });
    let qaoa = generators::qaoa(6, 2, 7);
    g.bench_function("optimize_qaoa_6q", |bench| bench.iter(|| zx_optimize(&qaoa)));
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    let circuit = generators::random_circuit(6, 80, 3);
    g.bench_function("greedy_6q80", |bench| {
        bench.iter(|| {
            greedy_partition(
                &circuit,
                PartitionConfig {
                    max_qubits: 3,
                    max_gates: 12,
                },
            )
        })
    });
    g.bench_function("paqoc_6q80", |bench| {
        bench.iter(|| paqoc_partition(&circuit, PaqocConfig::default()))
    });
    g.finish();
}

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);
    let cz = Gate::CZ.unitary_matrix();
    g.bench_function("qsearch_cz", |bench| {
        bench.iter(|| synthesize(&cz, &SynthConfig::default()))
    });
    let mut rng = StdRng::seed_from_u64(5);
    let random2q = random_unitary(4, &mut rng);
    g.bench_function("qsearch_random_2q", |bench| {
        bench.iter(|| synthesize(&random2q, &SynthConfig::default()))
    });
    g.finish();
}

fn bench_grape(c: &mut Criterion) {
    let mut g = c.benchmark_group("grape");
    g.sample_size(10);
    let d1 = DeviceModel::transmon_line(1);
    let x = Gate::X.unitary_matrix();
    g.bench_function("grape_x_30slots", |bench| {
        bench.iter(|| grape(&d1, &x, 30, &GrapeConfig::default()))
    });
    let d2 = DeviceModel::transmon_line(2);
    let cz = Gate::CZ.unitary_matrix();
    g.bench_function("grape_cz_128slots", |bench| {
        bench.iter(|| {
            grape(
                &d2,
                &cz,
                128,
                &GrapeConfig {
                    max_iters: 100,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    let ghz = generators::ghz(4);
    g.bench_function("epoc_compile_ghz4", |bench| {
        bench.iter_batched(
            || EpocCompiler::new(EpocConfig::fast()),
            |compiler| compiler.compile(&ghz),
            BatchSize::PerIteration,
        )
    });
    let qaoa = generators::qaoa(4, 2, 5);
    g.bench_function("epoc_compile_qaoa4", |bench| {
        bench.iter_batched(
            || EpocCompiler::new(EpocConfig::fast()),
            |compiler| compiler.compile(&qaoa),
            BatchSize::PerIteration,
        )
    });
    g.bench_function("paqoc_compile_qaoa4", |bench| {
        bench.iter_batched(
            PaqocCompiler::default,
            |compiler| compiler.compile(&qaoa),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_linalg,
    bench_zx,
    bench_partition,
    bench_synthesis,
    bench_grape,
    bench_pipeline
);
criterion_main!(benches);

//! Micro-benchmarks for every pipeline stage, on the `epoc_rt::bench`
//! wall-clock harness (median-of-N with warmup).
//!
//! ```sh
//! cargo bench -p epoc-bench
//! ```
//!
//! Every run writes the per-stage medians to `target/BENCH_stages.json`
//! (an untracked build artifact — only the pinned `BENCH_baseline.json`
//! at the workspace root is committed), so speedups are tracked as data
//! rather than claims.
//! Two environment variables drive CI integration (see `ci.sh`):
//!
//! * `EPOC_BENCH_QUICK=1` — 3 samples instead of 10, for a fast smoke run;
//! * `EPOC_BENCH_CHECK=1` — after writing the report, compare each stage
//!   median against the committed `BENCH_baseline.json` and exit nonzero
//!   if any stage regressed more than [`REGRESSION_FACTOR`]×. Absent
//!   baseline → the check is skipped with a notice.

use epoc::baselines::PaqocCompiler;
use epoc::{EpocCompiler, EpocConfig};
use epoc_circuit::{generators, Gate};
use epoc_linalg::{eigh, expm_ih, random_hermitian, random_unitary, Complex64, Matrix};
use epoc_partition::{greedy_partition, paqoc_partition, PaqocConfig, PartitionConfig};
use epoc_qoc::{grape, DeviceModel, GrapeConfig};
use epoc_rt::bench::{bench, Bench, Stats};
use epoc_rt::json::Json;
use epoc_rt::rng::StdRng;
use epoc_synth::{synthesize, SynthConfig};
use epoc_zx::zx_optimize;
use std::path::{Path, PathBuf};

/// A fresh median must stay below `baseline × REGRESSION_FACTOR`.
const REGRESSION_FACTOR: f64 = 2.0;

/// Stages whose baseline median is below this are exempt from the
/// regression check: below ~100µs, scheduler noise on a shared 1-CPU
/// runner routinely doubles a median, so only the substantive stages
/// (eig/expm, ZX, synthesis, GRAPE, full pipeline) are gated.
const MIN_BASELINE_NS: f64 = 100_000.0;

fn quick() -> bool {
    std::env::var("EPOC_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn check_mode() -> bool {
    std::env::var("EPOC_BENCH_CHECK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A bench with the sample count for the current mode applied.
fn stage(name: &str) -> Bench {
    bench(name).samples(if quick() { 3 } else { 10 })
}

/// The workspace root (two levels above this crate's manifest).
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The pre-optimization dense matmul inner loop, kept here (and only
/// here) as the reference side of the `matmul_16` comparison: i-k-j
/// order with a zero-skip branch on the left operand. On dense unitaries
/// the branch never fires — it only costs a compare and a mispredict per
/// element — which is why the kernel in `epoc_linalg` dropped it.
fn branchy_matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    assert_eq!(k, b.rows());
    let mut out = Matrix::zeros(n, m);
    let (av, bv, ov) = (a.as_slice(), b.as_slice(), out.as_mut_slice());
    for i in 0..n {
        for p in 0..k {
            let aip = av[i * k + p];
            if aip == Complex64::ZERO {
                continue;
            }
            let row = &bv[p * m..(p + 1) * m];
            let dst = &mut ov[i * m..(i + 1) * m];
            for (d, &x) in dst.iter_mut().zip(row) {
                *d += aip * x;
            }
        }
    }
    out
}

fn bench_linalg(stats: &mut Vec<Stats>) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_unitary(16, &mut rng);
    let b = random_unitary(16, &mut rng);
    stats.push(stage("linalg/matmul_16").run(|| a.matmul(&b)));
    stats.push(stage("linalg/matmul_16_branchy_ref").run(|| branchy_matmul_reference(&a, &b)));
    // Vector dispatch pinned on for the duration of the run (restored to
    // auto after): the SIMD kernels are bit-identical to the scalar path,
    // so this differs from `linalg/matmul_16` only in which code executes.
    // On hardware without AVX2 the force is refused and this re-measures
    // the scalar path.
    epoc_linalg::force_simd(Some(true));
    stats.push(stage("linalg/matmul_16_simd").run(|| a.matmul(&b)));
    epoc_linalg::force_simd(None);
    let h = random_hermitian(16, &mut rng);
    stats.push(stage("linalg/eigh_16").run(|| eigh(&h).unwrap()));
    stats.push(stage("linalg/expm_ih_16").run(|| expm_ih(&h, 0.5).unwrap()));
    let u = random_unitary(8, &mut rng);
    stats.push(stage("linalg/unitary_key_8").run(|| epoc_linalg::UnitaryKey::new(&u)));
}

fn bench_zx(stats: &mut Vec<Stats>) {
    let clifford_t = generators::random_clifford_t(4, 60, 0.2, 11);
    stats.push(stage("zx/optimize_cliffordt_4q60").run(|| zx_optimize(&clifford_t)));
    let qaoa = generators::qaoa(6, 2, 7);
    stats.push(stage("zx/optimize_qaoa_6q").run(|| zx_optimize(&qaoa)));
}

fn bench_partition(stats: &mut Vec<Stats>) {
    let circuit = generators::random_circuit(6, 80, 3);
    stats.push(stage("partition/greedy_6q80").run(|| {
        greedy_partition(
            &circuit,
            PartitionConfig {
                max_qubits: 3,
                max_gates: 12,
            },
        )
    }));
    stats.push(stage("partition/paqoc_6q80").run(|| paqoc_partition(&circuit, PaqocConfig::default())));
}

fn bench_synthesis(stats: &mut Vec<Stats>) {
    let cz = Gate::CZ.unitary_matrix();
    stats.push(stage("synthesis/qsearch_cz").run(|| synthesize(&cz, &SynthConfig::default())));
    let mut rng = StdRng::seed_from_u64(5);
    let random2q = random_unitary(4, &mut rng);
    stats.push(stage("synthesis/qsearch_random_2q").run(|| synthesize(&random2q, &SynthConfig::default())));
    // The parallel frontier at 4 workers: byte-identical results to the
    // single-worker run by construction, so this measures pure dispatch
    // overhead/benefit of the worker crew.
    stats.push(stage("synthesis/qsearch_random_2q_4w").run(|| {
        synthesize(
            &random2q,
            &SynthConfig {
                workers: 4,
                ..SynthConfig::default()
            },
        )
    }));
}

fn bench_grape(stats: &mut Vec<Stats>) {
    let d1 = DeviceModel::transmon_line(1).unwrap();
    let x = Gate::X.unitary_matrix();
    stats.push(stage("grape/grape_x_30slots").run(|| grape(&d1, &x, 30, &GrapeConfig::default())));
    let d2 = DeviceModel::transmon_line(2).unwrap();
    let cz = Gate::CZ.unitary_matrix();
    stats.push(stage("grape/grape_cz_128slots").run(|| {
        grape(
            &d2,
            &cz,
            128,
            &GrapeConfig {
                max_iters: 100,
                ..Default::default()
            },
        )
    }));
    // Same optimization with the iteration-level eigensystem cache pinned
    // on explicitly, so the cached path stays measured even if the
    // `GrapeConfig` default ever changes.
    stats.push(stage("grape/grape_cz_128slots_cached_eig").run(|| {
        grape(
            &d2,
            &cz,
            128,
            &GrapeConfig {
                max_iters: 100,
                eig_cache: true,
                ..Default::default()
            },
        )
    }));
}

fn bench_sim(stats: &mut Vec<Stats>) {
    use epoc_pulse::{PulsePayload, PulseSchedule, ScheduledPulse};
    use epoc_qoc::PulseWaveform;
    use epoc_sim::{propagate, SimWorkspace, Timeline};
    use std::sync::Arc;

    // A 64-slot 2-qubit waveform pulse — the shape a GRAPE-synthesized
    // CZ-class block produces — lowered once, propagated per sample.
    let device = DeviceModel::transmon_line(2).unwrap();
    let n_slots = 64;
    let amp = device.max_amplitude();
    let controls: Vec<Vec<f64>> = (0..4)
        .map(|ch| {
            (0..n_slots)
                .map(|s| amp * 0.6 * (0.37 * s as f64 + ch as f64).sin())
                .collect()
        })
        .collect();
    let w = PulseWaveform::new(device.dt(), controls);
    let mut s = PulseSchedule::new(2);
    s.push(ScheduledPulse {
        qubits: vec![0, 1],
        start: 0.0,
        duration: w.duration(),
        fidelity: 1.0,
        label: "blk0".into(),
        payload: PulsePayload::Waveform(Arc::new(w)),
    });
    let timeline = Timeline::lower(&s, 8).unwrap();
    stats.push(stage("sim/propagate_2q").run(|| {
        let mut ws = SimWorkspace::new(timeline.dim);
        propagate(&timeline, &mut ws).unwrap()
    }));
}

fn bench_hw(stats: &mut Vec<Stats>) {
    // Conditioning a 1000-slot 4-channel staircase under the full AWG
    // profile (slew-clip -> 8-bit quantize -> Gaussian filter ->
    // crosstalk mix) -- the per-pulse cost constrained GRAPE pays every
    // iteration and schedule emission pays once per waveform.
    let profile = epoc_hw::HardwareProfile::transmon_awg_8bit();
    let device = DeviceModel::transmon_line(2).unwrap();
    let a_max = device.max_amplitude();
    let dt = device.dt();
    let n_slots = 1000;
    let raw: Vec<Vec<f64>> = (0..4)
        .map(|ch| {
            (0..n_slots)
                .map(|s| a_max * 0.6 * (0.37 * s as f64 + ch as f64).sin())
                .collect()
        })
        .collect();
    let mut ws = epoc_hw::ConditionWorkspace::new();
    let mut controls = raw.clone();
    stats.push(stage("hw/condition_1k_slots").run(|| {
        for (dst, src) in controls.iter_mut().zip(&raw) {
            dst.copy_from_slice(src);
        }
        profile.condition_controls(dt, a_max, &mut controls, &mut ws);
        controls[0][0]
    }));
}

fn bench_pipeline(stats: &mut Vec<Stats>) {
    // Fresh compiler per iteration: the pulse library cache persists
    // across compiles, so a reused compiler would measure cache hits.
    let ghz = generators::ghz(4);
    stats.push(stage("pipeline/epoc_compile_ghz4").run_with_setup(
        || EpocCompiler::new(EpocConfig::fast()),
        |compiler| compiler.compile(&ghz).unwrap(),
    ));
    let qaoa = generators::qaoa(4, 2, 5);
    stats.push(stage("pipeline/epoc_compile_qaoa4").run_with_setup(
        || EpocCompiler::new(EpocConfig::fast()),
        |compiler| compiler.compile(&qaoa).unwrap(),
    ));
    stats.push(
        stage("pipeline/paqoc_compile_qaoa4")
            .run_with_setup(PaqocCompiler::default, |compiler| compiler.compile(&qaoa)),
    );
}

/// Writes `target/BENCH_stages.json` and returns its path.
fn write_report(stats: &[Stats]) -> PathBuf {
    let mut benches = Json::obj();
    for s in stats {
        benches = benches.push(
            &s.name,
            Json::obj()
                .push("median_ns", s.median().as_nanos() as u64)
                .push("min_ns", s.min().as_nanos() as u64)
                .push("mean_ns", s.mean().as_nanos() as u64)
                .push("samples", s.samples.len()),
        );
    }
    let doc = Json::obj()
        .push("schema", "epoc-bench-stages/v1")
        .push("quick", quick())
        .push("benches", benches);
    let dir = workspace_root().join("target");
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    let path = dir.join("BENCH_stages.json");
    std::fs::write(&path, doc.to_string_pretty() + "\n")
        .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    path
}

/// One row of the baseline comparison: fresh median vs committed median.
struct Comparison {
    name: String,
    now_ns: f64,
    /// Committed median; `None` for benches absent from the baseline.
    base_ns: Option<f64>,
    /// Whether the regression gate applies (present in the baseline and
    /// above the [`MIN_BASELINE_NS`] noise floor).
    gated: bool,
}

impl Comparison {
    fn regressed(&self) -> bool {
        self.gated
            && matches!(self.base_ns, Some(b) if self.now_ns > b * REGRESSION_FACTOR)
    }
}

/// Pairs every fresh median with its committed baseline entry.
fn compare_to_baseline(stats: &[Stats], baseline: &Json) -> Vec<Comparison> {
    stats
        .iter()
        .map(|s| {
            let base_ns = baseline
                .get("benches")
                .and_then(|b| b.get(&s.name))
                .and_then(|e| e.get("median_ns"))
                .and_then(Json::as_f64);
            Comparison {
                name: s.name.clone(),
                now_ns: s.median().as_nanos() as f64,
                base_ns,
                gated: base_ns.is_some_and(|b| b >= MIN_BASELINE_NS),
            }
        })
        .collect()
}

fn check_against_baseline(stats: &[Stats]) {
    let path = workspace_root().join("BENCH_baseline.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(_) => {
            eprintln!("bench-check: no {} — skipping regression check", path.display());
            return;
        }
    };
    let baseline = Json::parse(&text)
        .unwrap_or_else(|e| panic!("parsing {}: {e}", path.display()));
    let rows = compare_to_baseline(stats, &baseline);
    let n_failures = rows.iter().filter(|r| r.regressed()).count();
    if n_failures == 0 {
        eprintln!("bench-check: all stages within {REGRESSION_FACTOR}x of baseline");
        return;
    }
    // Regressions must be diagnosable from the CI log alone: print the
    // whole old/new/ratio table, not just the failing names.
    eprintln!("bench-check: {n_failures} stage(s) regressed more than {REGRESSION_FACTOR}x; full comparison:");
    eprintln!("  {:<36} {:>12} {:>12} {:>7}", "bench", "baseline", "new", "ratio");
    for r in &rows {
        let now = format!("{:.1}µs", r.now_ns / 1e3);
        let (base, ratio, mark) = match r.base_ns {
            Some(b) => (
                format!("{:.1}µs", b / 1e3),
                format!("{:.2}x", r.now_ns / b),
                if r.regressed() {
                    "  <-- REGRESSION"
                } else if !r.gated {
                    "  (ungated)"
                } else {
                    ""
                },
            ),
            None => ("-".to_string(), "-".to_string(), "  (new)"),
        };
        eprintln!("  {:<36} {:>12} {:>12} {:>7}{}", r.name, base, now, ratio, mark);
    }
    std::process::exit(1);
}

fn main() {
    let mut stats = Vec::new();
    bench_linalg(&mut stats);
    bench_zx(&mut stats);
    bench_partition(&mut stats);
    bench_synthesis(&mut stats);
    bench_grape(&mut stats);
    bench_sim(&mut stats);
    bench_hw(&mut stats);
    bench_pipeline(&mut stats);
    let path = write_report(&stats);
    eprintln!("wrote {}", path.display());
    if check_mode() {
        check_against_baseline(&stats);
    }
}

//! Micro-benchmarks for every pipeline stage, on the `epoc_rt::bench`
//! wall-clock harness (median-of-N with warmup).
//!
//! ```sh
//! cargo bench -p epoc-bench
//! ```

use epoc::baselines::PaqocCompiler;
use epoc::{EpocCompiler, EpocConfig};
use epoc_circuit::{generators, Gate};
use epoc_linalg::{eigh, expm_ih, random_hermitian, random_unitary};
use epoc_partition::{greedy_partition, paqoc_partition, PaqocConfig, PartitionConfig};
use epoc_qoc::{grape, DeviceModel, GrapeConfig};
use epoc_rt::bench::bench;
use epoc_rt::rng::StdRng;
use epoc_synth::{synthesize, SynthConfig};
use epoc_zx::zx_optimize;

fn bench_linalg() {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random_unitary(16, &mut rng);
    let b = random_unitary(16, &mut rng);
    bench("linalg/matmul_16").run(|| a.matmul(&b));
    let h = random_hermitian(16, &mut rng);
    bench("linalg/eigh_16").run(|| eigh(&h).unwrap());
    bench("linalg/expm_ih_16").run(|| expm_ih(&h, 0.5).unwrap());
    let u = random_unitary(8, &mut rng);
    bench("linalg/unitary_key_8").run(|| epoc_linalg::UnitaryKey::new(&u));
}

fn bench_zx() {
    let clifford_t = generators::random_clifford_t(4, 60, 0.2, 11);
    bench("zx/optimize_cliffordt_4q60").run(|| zx_optimize(&clifford_t));
    let qaoa = generators::qaoa(6, 2, 7);
    bench("zx/optimize_qaoa_6q").run(|| zx_optimize(&qaoa));
}

fn bench_partition() {
    let circuit = generators::random_circuit(6, 80, 3);
    bench("partition/greedy_6q80").run(|| {
        greedy_partition(
            &circuit,
            PartitionConfig {
                max_qubits: 3,
                max_gates: 12,
            },
        )
    });
    bench("partition/paqoc_6q80").run(|| paqoc_partition(&circuit, PaqocConfig::default()));
}

fn bench_synthesis() {
    let cz = Gate::CZ.unitary_matrix();
    bench("synthesis/qsearch_cz")
        .samples(10)
        .run(|| synthesize(&cz, &SynthConfig::default()));
    let mut rng = StdRng::seed_from_u64(5);
    let random2q = random_unitary(4, &mut rng);
    bench("synthesis/qsearch_random_2q")
        .samples(10)
        .run(|| synthesize(&random2q, &SynthConfig::default()));
}

fn bench_grape() {
    let d1 = DeviceModel::transmon_line(1);
    let x = Gate::X.unitary_matrix();
    bench("grape/grape_x_30slots")
        .samples(10)
        .run(|| grape(&d1, &x, 30, &GrapeConfig::default()));
    let d2 = DeviceModel::transmon_line(2);
    let cz = Gate::CZ.unitary_matrix();
    bench("grape/grape_cz_128slots").samples(10).run(|| {
        grape(
            &d2,
            &cz,
            128,
            &GrapeConfig {
                max_iters: 100,
                ..Default::default()
            },
        )
    });
}

fn bench_pipeline() {
    // Fresh compiler per iteration: the pulse library cache persists
    // across compiles, so a reused compiler would measure cache hits.
    let ghz = generators::ghz(4);
    bench("pipeline/epoc_compile_ghz4")
        .samples(10)
        .run_with_setup(
            || EpocCompiler::new(EpocConfig::fast()),
            |compiler| compiler.compile(&ghz),
        );
    let qaoa = generators::qaoa(4, 2, 5);
    bench("pipeline/epoc_compile_qaoa4")
        .samples(10)
        .run_with_setup(
            || EpocCompiler::new(EpocConfig::fast()),
            |compiler| compiler.compile(&qaoa),
        );
    bench("pipeline/paqoc_compile_qaoa4")
        .samples(10)
        .run_with_setup(PaqocCompiler::default, |compiler| compiler.compile(&qaoa));
}

fn main() {
    bench_linalg();
    bench_zx();
    bench_partition();
    bench_synthesis();
    bench_grape();
    bench_pipeline();
}

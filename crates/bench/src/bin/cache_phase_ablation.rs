//! **§3.4 ablation**: pulse-cache hit rate with EPOC's global-phase-aware
//! keys vs the AccQOC/PAQOC phase-sensitive keys, over a compiled
//! workload ("by allowing global phase, we can identify more matched
//! unitary matrices, similar to having a higher cache hit rate").
//!
//! Phase-twin unitaries arise in real streams because frontends emit the
//! same operation in phase-inequivalent forms — `Z` vs `RZ(π)`, `S` vs
//! `RZ(π/2)`, `X` vs `RX(π)` — and because numerical synthesis fixes VUGs
//! only up to global phase. The workload therefore contains each
//! benchmark twice: once as generated and once with rotation-form
//! aliases.
//!
//! ```sh
//! cargo run -p epoc-bench --bin cache_phase_ablation --release
//! ```

use epoc_bench::{header, row};
use epoc_circuit::{generators, Circuit, Gate};
use epoc_linalg::Matrix;
use epoc_partition::{regroup, RegroupConfig};
use epoc_qoc::{KeyPolicy, PulseEntry, PulseLibrary};
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI};

/// Rewrites named phase gates into their rotation-form aliases (equal up
/// to global phase only).
fn alias_form(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for op in circuit.ops() {
        let gate = match op.gate {
            Gate::Z => Gate::RZ(PI),
            Gate::S => Gate::RZ(FRAC_PI_2),
            Gate::Sdg => Gate::RZ(-FRAC_PI_2),
            Gate::T => Gate::RZ(FRAC_PI_4),
            Gate::Tdg => Gate::RZ(-FRAC_PI_4),
            Gate::X => Gate::RX(PI),
            Gate::Y => Gate::RY(PI),
            Gate::Sx => Gate::RX(FRAC_PI_2),
            Gate::Phase(t) => Gate::RZ(t),
            ref g => g.clone(),
        };
        out.push(gate, &op.qubits);
    }
    out
}

fn main() {
    // Build the stream of block unitaries an EPOC workload produces:
    // every benchmark in both gate forms, partitioned into QOC blocks.
    let mut unitaries: Vec<Matrix> = Vec::new();
    for b in generators::benchmark_suite() {
        let basis = epoc_circuit::lower_to_basis(&b.circuit);
        for form in [basis.clone(), alias_form(&basis)] {
            let p = regroup(
                &form,
                RegroupConfig {
                    max_qubits: 2,
                    max_gates: 4,
                },
            );
            for block in p.blocks() {
                unitaries.push(block.unitary());
            }
        }
    }
    println!("workload: {} block unitaries\n", unitaries.len());

    let widths = [16, 8, 8, 10, 9];
    header(&["policy", "hits", "misses", "entries", "hit rate"], &widths);
    for (name, policy) in [
        ("phase-aware", KeyPolicy::PhaseAware),
        ("phase-sensitive", KeyPolicy::PhaseSensitive),
    ] {
        let lib = PulseLibrary::new(policy);
        for u in &unitaries {
            if lib.lookup(u).is_none() {
                // Miss: "run QOC" (stub entry) and store.
                lib.insert(
                    u,
                    PulseEntry {
                        duration: 20.0,
                        fidelity: 0.999,
                        n_slots: 10,
                        waveform: None,
                    },
                );
            }
        }
        row(
            &[
                name.to_string(),
                lib.hits().to_string(),
                lib.misses().to_string(),
                lib.len().to_string(),
                format!("{:.1}%", 100.0 * lib.hit_rate()),
            ],
            &widths,
        );
    }
    println!("\nphase-aware keys fold phase-twin unitaries into one entry,");
    println!("raising the hit rate and shrinking the library — EPOC's §3.4 claim.");
}

//! Regenerates the [`DurationModel`] constants from real GRAPE duration
//! searches on the simulated device (the numbers baked into
//! `DurationModel::default()`).
//!
//! ```sh
//! cargo run -p epoc-bench --bin calibrate --release
//! ```

use epoc_qoc::DurationModel;
use std::time::Instant;

fn main() {
    println!("running GRAPE duration searches for calibration…");
    let t0 = Instant::now();
    let model = DurationModel::calibrate();
    println!("calibration finished in {:.2?}\n", t0.elapsed());
    println!("qoc_factor     = {:.4}", model.qoc_factor);
    println!("min_pulse      = {:.2} ns", model.min_pulse);
    println!("overhead       = {:.2} ns", model.overhead);
    println!("absorption     = {:.4}", model.absorption);
    println!("pulse_fidelity = {:.6}", model.pulse_fidelity);
    let d = DurationModel::default();
    println!("\ndefaults in code: qoc_factor {:.4}, min_pulse {:.2}, fidelity {:.6}",
        d.qoc_factor, d.min_pulse, d.pulse_fidelity);
    println!("update `DurationModel::default()` if these drift.");
}

//! **Extension figure**: decoherence-aware fidelity vs coherence time.
//!
//! The paper's introduction motivates latency reduction through coherence
//! time ("the coherence time determines the duration and depth of quantum
//! circuits that can be successfully executed"). This sweep quantifies
//! that: total fidelity (ESP × T1/T2 decay over the schedule makespan)
//! for the three flows as T1 shrinks — EPOC's latency advantage grows
//! into a fidelity advantage precisely where devices are short-lived.
//!
//! ```sh
//! cargo run -p epoc-bench --bin coherence_sweep --release
//! ```

use epoc::baselines::{gate_based, PaqocCompiler};
use epoc::{EpocCompiler, EpocConfig};
use epoc_bench::{header, row};
use epoc_circuit::generators;
use epoc_pulse::CoherenceModel;

fn main() {
    let epoc = EpocCompiler::new(EpocConfig::default());
    let paqoc = PaqocCompiler::default();
    let circuit = generators::ham7(); // the longest-latency Table-1 circuit

    let g = gate_based(&circuit);
    let p = paqoc.compile(&circuit);
    let e = epoc.compile(&circuit).expect("sweep circuit compiles");
    println!(
        "ham7 latencies: gate-based {:.0} ns, paqoc {:.0} ns, epoc {:.0} ns\n",
        g.latency(),
        p.latency(),
        e.latency()
    );

    let widths = [10, 12, 12, 12];
    header(&["T1 (µs)", "gate-based", "paqoc", "epoc"], &widths);
    for t1_us in [200.0, 100.0, 50.0, 20.0, 10.0, 5.0] {
        let model = CoherenceModel::new(t1_us * 1e3, 0.8 * t1_us * 1e3);
        row(
            &[
                format!("{t1_us:.0}"),
                format!("{:.4}", model.esp_with_decoherence(&g.schedule)),
                format!("{:.4}", model.esp_with_decoherence(&p.schedule)),
                format!("{:.4}", model.esp_with_decoherence(&e.schedule)),
            ],
            &widths,
        );
    }
    println!("\nshorter schedules decay less: EPOC's latency advantage compounds");
    println!("into fidelity as T1 shrinks toward the schedule makespan.");
}

//! **Figure 10**: ESP fidelity with vs without the regrouping step
//! (paper: grouping generally higher, +33.77% average improvement —
//! fine-grained per-VUG pulses accumulate error).
//!
//! ```sh
//! cargo run -p epoc-bench --bin fig10_fidelity --release
//! ```

use epoc::{EpocCompiler, EpocConfig};
use epoc_bench::{header, mean, row};
use epoc_circuit::generators;

fn main() {
    let grouped = EpocCompiler::new(EpocConfig::default());
    let ungrouped = EpocCompiler::new(EpocConfig::default().without_regrouping());
    let widths = [12, 12, 12, 12];
    header(
        &["benchmark", "no-group", "grouped", "improvement"],
        &widths,
    );
    let mut improvements = Vec::new();
    for b in generators::benchmark_suite() {
        let g = grouped.compile(&b.circuit).expect("benchmark circuits compile");
        let u = ungrouped.compile(&b.circuit).expect("benchmark circuits compile");
        let imp = g.esp() / u.esp().max(1e-12) - 1.0;
        improvements.push(imp);
        row(
            &[
                b.name.to_string(),
                format!("{:.4}", u.esp()),
                format!("{:.4}", g.esp()),
                format!("{:+.2}%", 100.0 * imp),
            ],
            &widths,
        );
    }
    println!(
        "\nmean ESP improvement from grouping: {:+.2}% (paper: +33.77%)",
        100.0 * mean(&improvements)
    );
}

//! **Figure 5**: ZX optimization depth reduction across 34 randomly
//! selected circuits (paper: average reduction 1.48×, VQE extreme
//! 7656 → 1110).
//!
//! ```sh
//! cargo run -p epoc-bench --bin fig5_zx_depth --release
//! ```

use epoc_bench::{header, mean, row};
use epoc_circuit::generators;
use epoc_zx::zx_optimize;

fn main() {
    let widths = [14, 8, 8, 8];
    header(&["circuit", "before", "after", "ratio"], &widths);
    let mut ratios = Vec::new();
    // 34 random circuits across sizes and gate mixes, as in the paper.
    for i in 0..34u64 {
        let (name, circuit) = match i % 4 {
            0 => (
                format!("rand{:02}_cl-t", i),
                generators::random_clifford_t(3 + (i as usize % 4), 40 + 5 * i as usize % 60, 0.15, i),
            ),
            1 => (
                format!("rand{:02}_mix", i),
                generators::random_circuit(3 + (i as usize % 5), 30 + (3 * i as usize) % 50, i),
            ),
            2 => (
                format!("rand{:02}_cl", i),
                generators::random_clifford_t(4, 50, 0.0, i),
            ),
            _ => (
                format!("rand{:02}_dense", i),
                generators::random_clifford_t(5, 80, 0.3, i),
            ),
        };
        let r = zx_optimize(&circuit);
        let ratio = r.depth_reduction();
        ratios.push(ratio);
        row(
            &[
                name,
                r.depth_before.to_string(),
                r.depth_after.to_string(),
                format!("{ratio:.2}x"),
            ],
            &widths,
        );
    }
    println!("\nmean depth reduction: {:.2}x (paper: 1.48x)", mean(&ratios));

    // The paper's extreme case: a deep VQE ansatz. Ours is initialized at
    // a Clifford point (identity-block initialization), the population
    // where ZX reduction is most dramatic.
    let vqe = generators::vqe_clifford_init(6, 120, 7);
    let r = zx_optimize(&vqe);
    println!(
        "deep VQE ansatz (Clifford-init): depth {} -> {} ({:.2}x; paper's extreme: 7656 -> 1110, 6.9x)",
        r.depth_before,
        r.depth_after,
        r.depth_reduction()
    );
}

//! **Figure 8**: pulse latency with vs without the regrouping step across
//! the 17-benchmark suite (paper: grouping shorter on *all* benchmarks,
//! average 51.11% latency reduction).
//!
//! ```sh
//! cargo run -p epoc-bench --bin fig8_latency_grouping --release
//! ```

use epoc::{EpocCompiler, EpocConfig};
use epoc_bench::{header, mean, row};
use epoc_circuit::generators;

fn main() {
    let grouped = EpocCompiler::new(EpocConfig::default());
    let ungrouped = EpocCompiler::new(EpocConfig::default().without_regrouping());
    let widths = [12, 14, 14, 10];
    header(
        &["benchmark", "no-group (ns)", "grouped (ns)", "reduction"],
        &widths,
    );
    let mut reductions = Vec::new();
    let mut all_shorter = true;
    for b in generators::benchmark_suite() {
        let g = grouped.compile(&b.circuit).expect("benchmark circuits compile");
        let u = ungrouped.compile(&b.circuit).expect("benchmark circuits compile");
        let red = 1.0 - g.latency() / u.latency().max(1e-9);
        reductions.push(red);
        all_shorter &= g.latency() <= u.latency() + 1e-9;
        row(
            &[
                b.name.to_string(),
                format!("{:.1}", u.latency()),
                format!("{:.1}", g.latency()),
                format!("{:.1}%", 100.0 * red),
            ],
            &widths,
        );
    }
    println!(
        "\nmean latency reduction from grouping: {:.2}% (paper: 51.11%)",
        100.0 * mean(&reductions)
    );
    println!(
        "grouping shorter on all benchmarks: {} (paper: yes)",
        if all_shorter { "yes" } else { "NO" }
    );
}

//! **Figure 9**: compilation time with vs without the regrouping step
//! (paper: minimal overhead, ~7.11% average increase).
//!
//! ```sh
//! cargo run -p epoc-bench --bin fig9_compile_time --release
//! ```

use epoc::{EpocCompiler, EpocConfig};
use epoc_bench::{header, mean, row};
use epoc_circuit::generators;
use std::time::Instant;

fn main() {
    let widths = [12, 14, 14, 10];
    header(
        &["benchmark", "no-group (ms)", "grouped (ms)", "overhead"],
        &widths,
    );
    let mut overheads = Vec::new();
    for b in generators::benchmark_suite() {
        // Fresh compilers per benchmark so cache state doesn't skew the
        // timing comparison; best of 3 runs each.
        let time = |cfg: EpocConfig| -> f64 {
            let compiler = EpocCompiler::new(cfg);
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                let _ = compiler.compile(&b.circuit);
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let grouped_ms = time(EpocConfig::default());
        let ungrouped_ms = time(EpocConfig::default().without_regrouping());
        let overhead = grouped_ms / ungrouped_ms.max(1e-9) - 1.0;
        overheads.push(overhead);
        row(
            &[
                b.name.to_string(),
                format!("{ungrouped_ms:.2}"),
                format!("{grouped_ms:.2}"),
                format!("{:+.1}%", 100.0 * overhead),
            ],
            &widths,
        );
    }
    println!(
        "\nmean compile-time overhead of grouping: {:+.2}% (paper: +7.11%)",
        100.0 * mean(&overheads)
    );
}

//! **Design-choice ablation** (DESIGN.md §3.4): exact propagator-derivative
//! GRAPE gradients vs the original first-order approximation — iterations
//! and final fidelity on standard targets.
//!
//! ```sh
//! cargo run -p epoc-bench --bin grape_gradient_ablation --release
//! ```

use epoc_bench::{header, row};
use epoc_circuit::{Circuit, Gate};
use epoc_qoc::{grape, DeviceModel, GradientMode, GrapeConfig};

fn main() {
    let widths = [12, 8, 12, 8, 12];
    header(
        &["target", "ex iters", "ex fidelity", "fo iters", "fo fidelity"],
        &widths,
    );
    let cases: Vec<(&str, usize, epoc_linalg::Matrix, usize)> = vec![
        ("X", 1, Gate::X.unitary_matrix(), 20),
        ("H", 1, Gate::H.unitary_matrix(), 20),
        ("SX", 1, Gate::Sx.unitary_matrix(), 16),
        ("bell-block", 2, {
            let mut c = Circuit::new(2);
            c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
            c.unitary()
        }, 128),
        ("CZ", 2, Gate::CZ.unitary_matrix(), 128),
    ];
    for (name, n, target, slots) in cases {
        let device = DeviceModel::transmon_line(n).unwrap();
        let run = |mode: GradientMode| {
            grape(
                &device,
                &target,
                slots,
                &GrapeConfig {
                    gradient: mode,
                    max_iters: 400,
                    learning_rate: 0.01,
                    ..Default::default()
                },
            )
        };
        let exact = run(GradientMode::Exact).expect("ablation targets are well-formed");
        let first = run(GradientMode::FirstOrder).expect("ablation targets are well-formed");
        row(
            &[
                name.to_string(),
                exact.iterations.to_string(),
                format!("{:.6}", exact.fidelity),
                first.iterations.to_string(),
                format!("{:.6}", first.fidelity),
            ],
            &widths,
        );
    }
    println!("\nexact gradients converge in fewer iterations at equal or better");
    println!("fidelity; the first-order mode degrades as dt·||H|| grows.");
}

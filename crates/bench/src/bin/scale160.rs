//! **§4 scalability check**: compile a large, deep 160-qubit program end
//! to end (the paper validates feasibility on a 160-qubit circuit; no
//! PAQOC numbers exist for it, so only EPOC's result is reported).
//!
//! Verification is skipped (statevector would need 2^160 amplitudes) —
//! soundness at this scale rests on the per-pass property tests.
//!
//! ```sh
//! cargo run -p epoc-bench --bin scale160 --release
//! ```

use epoc::baselines::gate_based;
use epoc::{EpocCompiler, EpocConfig};
use epoc_circuit::{Circuit, Gate};
use epoc_rt::rng::StdRng;
use epoc_rt::rng::Rng;
use std::time::Instant;

/// A wide, deep, locally-structured program: layers of single-qubit
/// rotations and nearest-neighbor CX bricks on 160 qubits.
fn wide_program(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            c.push(Gate::RZ(rng.gen_f64() * 3.1), &[q]);
            c.push(Gate::Sx, &[q]);
            c.push(Gate::RZ(rng.gen_f64() * 3.1), &[q]);
        }
        let offset = layer % 2;
        let mut q = offset;
        while q + 1 < n {
            c.push(Gate::CX, &[q, q + 1]);
            q += 2;
        }
    }
    c
}

fn main() {
    let n = 160;
    let circuit = wide_program(n, 20, 160);
    println!(
        "program: {} qubits, {} gates, depth {}",
        circuit.n_qubits(),
        circuit.len(),
        circuit.depth()
    );

    let config = EpocConfig {
        verify: false, // 2^160 amplitudes are not a thing
        ..EpocConfig::default()
    };
    let t0 = Instant::now();
    let report = EpocCompiler::new(config).compile(&circuit).expect("scale circuit compiles");
    let elapsed = t0.elapsed();

    let gates = gate_based(&circuit);
    println!(
        "EPOC: latency {:.1} ns, {} pulses, ESP {:.4}, compiled in {:.2?}",
        report.latency(),
        report.schedule.len(),
        report.esp(),
        elapsed
    );
    println!(
        "gate-based: latency {:.1} ns, {} pulses",
        gates.latency(),
        gates.schedule.len()
    );
    println!(
        "latency reduction vs gate-based: {:.2}%",
        100.0 * (1.0 - report.latency() / gates.latency())
    );
    assert!(
        report.latency() < gates.latency(),
        "EPOC should beat the gate-based flow at scale"
    );
    println!("\n160-qubit end-to-end compilation: OK");
}

//! **Table 1**: latency (ns) and fidelity for the three flows —
//! gate-based, PAQOC-like, EPOC — on simon, bb84, bv, qaoa, decod24,
//! dnn, ham7 (paper: EPOC −31.74% latency vs PAQOC, −76.80% vs
//! gate-based).
//!
//! ```sh
//! cargo run -p epoc-bench --bin table1_comparison --release
//! ```

use epoc::baselines::{gate_based, PaqocCompiler};
use epoc::{EpocCompiler, EpocConfig};
use epoc_bench::{header, mean, row};
use epoc_circuit::generators;

fn main() {
    let epoc = EpocCompiler::new(EpocConfig::default());
    let paqoc = PaqocCompiler::default();
    let widths = [9, 12, 12, 12, 9, 9];
    header(
        &[
            "circuit",
            "gate (ns)",
            "paqoc (ns)",
            "epoc (ns)",
            "f(paqoc)",
            "f(epoc)",
        ],
        &widths,
    );
    let mut vs_paqoc = Vec::new();
    let mut vs_gate = Vec::new();
    for b in generators::table1_suite() {
        let g = gate_based(&b.circuit);
        let p = paqoc.compile(&b.circuit);
        let e = epoc.compile(&b.circuit).expect("benchmark circuits compile");
        vs_paqoc.push(1.0 - e.latency() / p.latency().max(1e-9));
        vs_gate.push(1.0 - e.latency() / g.latency().max(1e-9));
        row(
            &[
                b.name.to_string(),
                format!("{:.1}", g.latency()),
                format!("{:.1}", p.latency()),
                format!("{:.1}", e.latency()),
                format!("{:.4}", p.esp()),
                format!("{:.4}", e.esp()),
            ],
            &widths,
        );
    }
    println!(
        "\naverage latency reduction: EPOC vs PAQOC {:.2}% (paper: 31.74%)",
        100.0 * mean(&vs_paqoc)
    );
    println!(
        "average latency reduction: EPOC vs gate-based {:.2}% (paper: 76.80%)",
        100.0 * mean(&vs_gate)
    );
}

//! # epoc-bench — the benchmark harness reproducing the paper's evaluation
//!
//! One binary per table/figure (see DESIGN.md's per-experiment index):
//!
//! | target | reproduces |
//! |---|---|
//! | `fig5_zx_depth` | Figure 5 — ZX depth reduction over 34 random circuits |
//! | `fig8_latency_grouping` | Figure 8 — latency with vs without regrouping |
//! | `fig9_compile_time` | Figure 9 — compilation time with vs without regrouping |
//! | `fig10_fidelity` | Figure 10 — ESP fidelity with vs without regrouping |
//! | `table1_comparison` | Table 1 — gate-based vs PAQOC-like vs EPOC |
//! | `scale160` | §4 — 160-qubit feasibility run |
//! | `cache_phase_ablation` | §3.4 — phase-aware vs phase-sensitive cache |
//! | `grape_gradient_ablation` | design choice — exact vs first-order GRAPE gradients |
//! | `calibrate` | regenerates the DurationModel constants |
//!
//! Criterion micro-benchmarks for the pipeline stages live under
//! `benches/`.

use std::fmt::Display;

/// Prints a markdown-style table row.
pub fn row<D: Display>(cells: &[D], widths: &[usize]) {
    let mut line = String::from("|");
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!(" {:>w$} |", c.to_string(), w = w));
    }
    println!("{line}");
}

/// Prints a markdown-style table header with separator.
pub fn header(cells: &[&str], widths: &[usize]) {
    row(cells, widths);
    let mut line = String::from("|");
    for w in widths {
        line.push_str(&format!("{:-<w$}|", "", w = w + 2));
    }
    println!("{line}");
}

/// Geometric mean of a slice (ignores non-positive entries).
pub fn geomean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs.iter().filter(|&&x| x > 0.0).map(|x| x.ln()).collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
    }
}

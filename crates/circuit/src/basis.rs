//! Lowering to the hardware basis.
//!
//! Real transmons calibrate pulses for single-qubit gates plus CX/CZ (and
//! effectively SWAP as three CX). Every other multi-qubit gate — RZZ,
//! controlled rotations, Toffolis — is decomposed by the vendor
//! transpiler before pulses exist. [`lower_to_basis`] is that pass: it
//! keeps all single-qubit gates and `{CX, CZ, Swap}` untouched and
//! decomposes everything else, so all compilation flows (gate-based,
//! PAQOC-like, EPOC) price the same physical gate stream.

use crate::circuit::Circuit;
use crate::euler::append_controlled_unitary;
use crate::gate::Gate;
use std::f64::consts::FRAC_PI_4;

/// `true` when the gate is directly calibrated on the target hardware.
pub fn is_basis_gate(gate: &Gate) -> bool {
    match gate {
        Gate::CX | Gate::CZ | Gate::Swap => true,
        Gate::Unitary { matrix, .. } => matrix.rows() == 2,
        g => g.arity() == 1,
    }
}

/// Lowers a circuit to the hardware basis (single-qubit gates +
/// `{CX, CZ, Swap}`), preserving semantics up to global phase.
///
/// # Panics
///
/// Panics if the circuit contains opaque unitary blocks wider than one
/// qubit (those only exist *after* pulse-level compilation).
pub fn lower_to_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.n_qubits());
    for op in circuit.ops() {
        lower_op(&op.gate, &op.qubits, &mut out);
    }
    out
}

fn lower_op(gate: &Gate, q: &[usize], out: &mut Circuit) {
    use Gate::*;
    match gate {
        g if is_basis_gate(g) => {
            out.push(g.clone(), q);
        }
        CY => {
            out.push(Sdg, &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
            out.push(S, &[q[1]]);
        }
        CRZ(t) => {
            out.push(RZ(t / 2.0), &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
            out.push(RZ(-t / 2.0), &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
        }
        CPhase(t) => {
            out.push(RZ(t / 2.0), &[q[0]]);
            out.push(RZ(t / 2.0), &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
            out.push(RZ(-t / 2.0), &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
        }
        RZZ(t) => {
            out.push(CX, &[q[0], q[1]]);
            out.push(RZ(*t), &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
        }
        RXX(t) => {
            out.push(H, &[q[0]]);
            out.push(H, &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
            out.push(RZ(*t), &[q[1]]);
            out.push(CX, &[q[0], q[1]]);
            out.push(H, &[q[0]]);
            out.push(H, &[q[1]]);
        }
        CH | CRX(_) | CRY(_) => {
            let u = match gate {
                CH => H.unitary_matrix(),
                CRX(t) => RX(*t).unitary_matrix(),
                CRY(t) => RY(*t).unitary_matrix(),
                _ => unreachable!(),
            };
            append_controlled_unitary(out, &u, q[0], q[1]);
        }
        CCX => {
            let (a, b, c) = (q[0], q[1], q[2]);
            out.push(H, &[c]);
            out.push(CX, &[b, c]);
            out.push(RZ(-FRAC_PI_4), &[c]);
            out.push(CX, &[a, c]);
            out.push(RZ(FRAC_PI_4), &[c]);
            out.push(CX, &[b, c]);
            out.push(RZ(-FRAC_PI_4), &[c]);
            out.push(CX, &[a, c]);
            out.push(RZ(FRAC_PI_4), &[b]);
            out.push(RZ(FRAC_PI_4), &[c]);
            out.push(CX, &[a, b]);
            out.push(RZ(FRAC_PI_4), &[a]);
            out.push(RZ(-FRAC_PI_4), &[b]);
            out.push(CX, &[a, b]);
            out.push(H, &[c]);
        }
        CCZ => {
            out.push(H, &[q[2]]);
            lower_op(&CCX, q, out);
            out.push(H, &[q[2]]);
        }
        CSwap => {
            out.push(CX, &[q[2], q[1]]);
            lower_op(&CCX, &[q[0], q[1], q[2]], out);
            out.push(CX, &[q[2], q[1]]);
        }
        Unitary { .. } => panic!("multi-qubit opaque blocks cannot be lowered to the basis"),
        other => unreachable!("gate {other} unhandled in lower_to_basis"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::circuits_equivalent;

    fn check(gate: Gate, qubits: &[usize], n: usize) {
        let mut c = Circuit::new(n);
        c.push(gate.clone(), qubits);
        let lowered = lower_to_basis(&c);
        assert!(
            circuits_equivalent(&c, &lowered, 1e-7),
            "lowering changed {gate}"
        );
        for op in lowered.ops() {
            assert!(is_basis_gate(&op.gate), "{} not basis", op.gate);
        }
    }

    #[test]
    fn basis_gates_pass_through() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0])
            .push(Gate::RZ(0.4), &[1])
            .push(Gate::CX, &[0, 1])
            .push(Gate::CZ, &[1, 0])
            .push(Gate::Swap, &[0, 1]);
        let lowered = lower_to_basis(&c);
        assert_eq!(lowered.len(), c.len());
        assert_eq!(lowered.ops(), c.ops());
    }

    #[test]
    fn exotic_two_qubit_gates_lower() {
        for gate in [
            Gate::CY,
            Gate::CH,
            Gate::CRX(0.7),
            Gate::CRY(-0.9),
            Gate::CRZ(1.3),
            Gate::CPhase(0.5),
            Gate::RZZ(0.8),
            Gate::RXX(-0.4),
        ] {
            check(gate.clone(), &[0, 1], 2);
            check(gate, &[1, 0], 2);
        }
    }

    #[test]
    fn three_qubit_gates_lower() {
        for gate in [Gate::CCX, Gate::CCZ, Gate::CSwap] {
            check(gate.clone(), &[0, 1, 2], 3);
            check(gate, &[2, 0, 1], 3);
        }
    }

    #[test]
    fn one_qubit_vug_passes_through() {
        let mut c = Circuit::new(1);
        c.push(Gate::unitary("vug", Gate::H.unitary_matrix()), &[0]);
        let lowered = lower_to_basis(&c);
        assert_eq!(lowered.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot be lowered")]
    fn wide_opaque_blocks_rejected() {
        let mut c = Circuit::new(2);
        c.push(Gate::unitary("blk", Gate::CX.unitary_matrix()), &[0, 1]);
        lower_to_basis(&c);
    }

    #[test]
    fn benchmark_suite_lowers_cleanly() {
        for b in crate::generators::benchmark_suite() {
            let lowered = lower_to_basis(&b.circuit);
            assert!(lowered.len() >= b.circuit.len() || !lowered.is_empty());
            if b.circuit.n_qubits() <= 6 {
                assert!(
                    circuits_equivalent(&b.circuit, &lowered, 1e-7),
                    "{} broken",
                    b.name
                );
            }
        }
    }
}

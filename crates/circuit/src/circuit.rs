//! Circuit IR: an ordered list of gate applications on an n-qubit register.

use crate::gate::Gate;
use epoc_linalg::Matrix;
use std::fmt;

/// One gate applied to specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Operation {
    /// The gate.
    pub gate: Gate,
    /// Target qubit indices, in the gate's own qubit order
    /// (e.g. `[control, target]` for [`Gate::CX`]).
    pub qubits: Vec<usize>,
}

impl Operation {
    /// Creates an operation, validating qubit count and uniqueness.
    ///
    /// # Panics
    ///
    /// Panics if the qubit list length does not match the gate arity or
    /// contains duplicates.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {gate} expects {} qubits, got {}",
            gate.arity(),
            qubits.len()
        );
        for (i, q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(q),
                "duplicate qubit {q} in operation {gate}"
            );
        }
        Self { gate, qubits }
    }

    /// Largest qubit index touched.
    pub fn max_qubit(&self) -> usize {
        *self.qubits.iter().max().expect("operations touch >=1 qubit")
    }

    /// `true` when this operation shares a qubit with `other`.
    pub fn overlaps(&self, other: &Operation) -> bool {
        self.qubits.iter().any(|q| other.qubits.contains(q))
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs: Vec<String> = self.qubits.iter().map(|q| format!("q[{q}]")).collect();
        write!(f, "{} {}", self.gate, qs.join(","))
    }
}

/// A quantum circuit: a gate sequence over `n` qubits.
///
/// # Examples
///
/// ```
/// use epoc_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]);
/// c.push(Gate::CX, &[0, 1]);
/// assert_eq!(c.depth(), 2);
/// assert!(c.unitary().is_unitary(1e-10));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Operation>,
}

impl Circuit {
    /// Creates an empty circuit on `n_qubits` qubits.
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of operations (gates).
    #[inline]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when the circuit has no gates.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operations in program order.
    #[inline]
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Appends a gate application.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range, the qubit list has the
    /// wrong length, or it contains duplicates.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        for &q in qubits {
            assert!(q < self.n_qubits, "qubit {q} out of range ({} qubits)", self.n_qubits);
        }
        self.ops.push(Operation::new(gate, qubits.to_vec()));
        self
    }

    /// Appends an already-built operation.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range.
    pub fn push_op(&mut self, op: Operation) -> &mut Self {
        assert!(op.max_qubit() < self.n_qubits, "operation out of range");
        self.ops.push(op);
        self
    }

    /// Appends all operations of `other` (same register size required).
    ///
    /// # Panics
    ///
    /// Panics if `other` addresses qubits beyond this circuit's register.
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        for op in &other.ops {
            self.push_op(op.clone());
        }
        self
    }

    /// Appends `other` with its qubit `i` mapped to `mapping[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is too short or maps out of range.
    pub fn extend_mapped(&mut self, other: &Circuit, mapping: &[usize]) -> &mut Self {
        assert!(
            mapping.len() >= other.n_qubits(),
            "mapping shorter than sub-circuit register"
        );
        for op in &other.ops {
            let qubits: Vec<usize> = op.qubits.iter().map(|&q| mapping[q]).collect();
            self.push(op.gate.clone(), &qubits);
        }
        self
    }

    /// The inverse circuit (reversed gate order, inverted gates).
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.n_qubits);
        for op in self.ops.iter().rev() {
            inv.push(op.gate.inverse(), &op.qubits);
        }
        inv
    }

    /// Circuit depth: the longest chain of gates sharing qubits
    /// (ASAP-layered; an empty circuit has depth 0).
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.n_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let layer = op.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0) + 1;
            for &q in &op.qubits {
                frontier[q] = layer;
            }
            depth = depth.max(layer);
        }
        depth
    }

    /// Greedy ASAP layering: returns the operations grouped into moments
    /// where no two operations in a moment share a qubit.
    pub fn moments(&self) -> Vec<Vec<&Operation>> {
        let mut frontier = vec![0usize; self.n_qubits];
        let mut layers: Vec<Vec<&Operation>> = Vec::new();
        for op in &self.ops {
            let layer = op.qubits.iter().map(|&q| frontier[q]).max().unwrap_or(0);
            for &q in &op.qubits {
                frontier[q] = layer + 1;
            }
            if layer >= layers.len() {
                layers.resize_with(layer + 1, Vec::new);
            }
            layers[layer].push(op);
        }
        layers
    }

    /// Number of two-qubit gates.
    pub fn two_qubit_count(&self) -> usize {
        self.ops.iter().filter(|op| op.gate.arity() == 2).count()
    }

    /// Count of gates matching a predicate.
    pub fn count_gates(&self, pred: impl Fn(&Gate) -> bool) -> usize {
        self.ops.iter().filter(|op| pred(&op.gate)).count()
    }

    /// The circuit's unitary matrix (dimension `2^n`).
    ///
    /// Gate order: the first pushed gate is applied first, so
    /// `U = U_k ⋯ U_2 · U_1`.
    ///
    /// # Panics
    ///
    /// Panics for registers larger than 12 qubits (4096×4096 — beyond that,
    /// dense evaluation is a programming error, use the simulator).
    pub fn unitary(&self) -> Matrix {
        assert!(
            self.n_qubits <= 12,
            "dense unitary limited to 12 qubits, circuit has {}",
            self.n_qubits
        );
        let dim = 1usize << self.n_qubits;
        let mut u = Matrix::identity(dim);
        for op in &self.ops {
            let g = op.gate.unitary_matrix().embed(&op.qubits, self.n_qubits);
            u = g.matmul(&u);
        }
        u
    }

    /// Set of qubits actually touched by at least one gate.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.n_qubits];
        for op in &self.ops {
            for &q in &op.qubits {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(q, &u)| u.then_some(q))
            .collect()
    }

    /// Histogram of gate names → counts.
    pub fn gate_histogram(&self) -> std::collections::BTreeMap<&'static str, usize> {
        let mut h = std::collections::BTreeMap::new();
        for op in &self.ops {
            *h.entry(op.gate.name()).or_insert(0) += 1;
        }
        h
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} gates, depth {})",
            self.n_qubits,
            self.ops.len(),
            self.depth()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

impl Extend<Operation> for Circuit {
    fn extend<T: IntoIterator<Item = Operation>>(&mut self, iter: T) {
        for op in iter {
            self.push_op(op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_linalg::approx_eq_up_to_phase;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        c
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(3);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
        assert!(c.unitary().approx_eq(&Matrix::identity(8), 1e-12));
        assert!(c.active_qubits().is_empty());
    }

    #[test]
    fn depth_accounts_for_parallelism() {
        let mut c = Circuit::new(4);
        c.push(Gate::H, &[0])
            .push(Gate::H, &[1])
            .push(Gate::H, &[2])
            .push(Gate::H, &[3]);
        assert_eq!(c.depth(), 1);
        c.push(Gate::CX, &[0, 1]).push(Gate::CX, &[2, 3]);
        assert_eq!(c.depth(), 2);
        c.push(Gate::CX, &[1, 2]);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn moments_partition_all_ops() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::H, &[2])
            .push(Gate::CX, &[1, 2]);
        let m = c.moments();
        let total: usize = m.iter().map(|l| l.len()).sum();
        assert_eq!(total, 4);
        assert_eq!(m.len(), c.depth());
        // No qubit reuse within a moment.
        for layer in &m {
            for (i, a) in layer.iter().enumerate() {
                for b in &layer[i + 1..] {
                    assert!(!a.overlaps(b));
                }
            }
        }
    }

    #[test]
    fn bell_state_unitary() {
        let u = bell().unitary();
        // Column 0 = (|00> + |11>)/√2
        let s = std::f64::consts::FRAC_1_SQRT_2;
        assert!((u[(0, 0)].re - s).abs() < 1e-12);
        assert!((u[(3, 0)].re - s).abs() < 1e-12);
        assert!(u[(1, 0)].abs() < 1e-12);
        assert!(u[(2, 0)].abs() < 1e-12);
    }

    #[test]
    fn inverse_cancels() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::T, &[1])
            .push(Gate::CX, &[0, 2])
            .push(Gate::RZ(0.3), &[2])
            .push(Gate::CCX, &[0, 1, 2]);
        let prod = c.inverse().unitary().matmul(&c.unitary());
        assert!(approx_eq_up_to_phase(&prod, &Matrix::identity(8), 1e-7));
    }

    #[test]
    fn gate_order_matters() {
        // X then H on one qubit: U = H·X
        let mut c = Circuit::new(1);
        c.push(Gate::X, &[0]).push(Gate::H, &[0]);
        let expect = Gate::H.unitary_matrix().matmul(&Gate::X.unitary_matrix());
        assert!(c.unitary().approx_eq(&expect, 1e-12));
    }

    #[test]
    fn extend_mapped_applies_mapping() {
        let sub = bell();
        let mut big = Circuit::new(4);
        big.extend_mapped(&sub, &[2, 3]);
        assert_eq!(big.ops()[0].qubits, vec![2]);
        assert_eq!(big.ops()[1].qubits, vec![2, 3]);
    }

    #[test]
    fn counting_helpers() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::CX, &[1, 2])
            .push(Gate::T, &[2]);
        assert_eq!(c.two_qubit_count(), 2);
        assert_eq!(c.count_gates(|g| matches!(g, Gate::T)), 1);
        let h = c.gate_histogram();
        assert_eq!(h["cx"], 2);
        assert_eq!(h["h"], 1);
    }

    #[test]
    fn active_qubits_skips_idle() {
        let mut c = Circuit::new(5);
        c.push(Gate::H, &[1]).push(Gate::CX, &[1, 3]);
        assert_eq!(c.active_qubits(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        Circuit::new(2).push(Gate::H, &[2]);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn push_rejects_duplicates() {
        Circuit::new(2).push(Gate::CX, &[1, 1]);
    }

    #[test]
    fn display_shows_shape() {
        let text = bell().to_string();
        assert!(text.contains("2 qubits"));
        assert!(text.contains("cx q[0],q[1]"));
    }
}

//! Dependency DAG over a circuit's operations.
//!
//! Each operation depends on the previous operation touching each of its
//! qubits. The DAG drives the greedy partitioner (gate availability), the
//! PAQOC-like pattern miner, and latency-oriented analyses (critical path
//! under a per-gate duration model).

use crate::circuit::Circuit;

/// A node in the dependency DAG: one operation plus its wiring.
#[derive(Debug, Clone)]
pub struct DagNode {
    /// Index of the operation in the source circuit's `ops()` order.
    pub op_index: usize,
    /// Indices of operations this one depends on (per-qubit predecessors,
    /// deduplicated).
    pub preds: Vec<usize>,
    /// Indices of operations depending on this one.
    pub succs: Vec<usize>,
}

/// Dependency DAG of a circuit.
///
/// # Examples
///
/// ```
/// use epoc_circuit::{Circuit, Gate, CircuitDag};
///
/// let mut c = Circuit::new(2);
/// c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]).push(Gate::H, &[1]);
/// let dag = CircuitDag::new(&c);
/// assert_eq!(dag.node(1).preds, vec![0]);     // CX waits on H(q0)
/// assert_eq!(dag.node(2).preds, vec![1]);     // H(q1) waits on CX
/// assert_eq!(dag.layers().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitDag {
    nodes: Vec<DagNode>,
    n_qubits: usize,
}

impl CircuitDag {
    /// Builds the DAG for a circuit.
    pub fn new(circuit: &Circuit) -> Self {
        let mut nodes: Vec<DagNode> = Vec::with_capacity(circuit.len());
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.n_qubits()];
        for (idx, op) in circuit.ops().iter().enumerate() {
            let mut preds: Vec<usize> = op
                .qubits
                .iter()
                .filter_map(|&q| last_on_qubit[q])
                .collect();
            preds.sort_unstable();
            preds.dedup();
            for &p in &preds {
                nodes[p].succs.push(idx);
            }
            nodes.push(DagNode {
                op_index: idx,
                preds,
                succs: Vec::new(),
            });
            for &q in &op.qubits {
                last_on_qubit[q] = Some(idx);
            }
        }
        Self {
            nodes,
            n_qubits: circuit.n_qubits(),
        }
    }

    /// Number of nodes (operations).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the circuit had no operations.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of qubits in the underlying circuit.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Node accessor.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn node(&self, index: usize) -> &DagNode {
        &self.nodes[index]
    }

    /// All nodes in program order.
    pub fn nodes(&self) -> &[DagNode] {
        &self.nodes
    }

    /// ASAP layering: `layers()[k]` holds the op indices whose longest
    /// dependency chain has length `k`.
    pub fn layers(&self) -> Vec<Vec<usize>> {
        let mut level = vec![0usize; self.nodes.len()];
        let mut layers: Vec<Vec<usize>> = Vec::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            let l = node
                .preds
                .iter()
                .map(|&p| level[p] + 1)
                .max()
                .unwrap_or(0);
            level[idx] = l;
            if l >= layers.len() {
                layers.resize_with(l + 1, Vec::new);
            }
            layers[l].push(idx);
        }
        layers
    }

    /// Critical-path length under a per-operation cost function
    /// (e.g. a gate-duration model). Returns 0 for an empty DAG.
    pub fn critical_path(&self, cost: impl Fn(usize) -> f64) -> f64 {
        let mut finish = vec![0.0f64; self.nodes.len()];
        let mut best: f64 = 0.0;
        for (idx, node) in self.nodes.iter().enumerate() {
            let start = node
                .preds
                .iter()
                .map(|&p| finish[p])
                .fold(0.0f64, f64::max);
            finish[idx] = start + cost(idx);
            best = best.max(finish[idx]);
        }
        best
    }

    /// Operation indices with no predecessors (the initial frontier).
    pub fn roots(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.preds.is_empty().then_some(i))
            .collect()
    }

    /// A topological order (program order is always valid here).
    pub fn topo_order(&self) -> Vec<usize> {
        (0..self.nodes.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn sample() -> Circuit {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0]) // 0
            .push(Gate::H, &[1]) // 1
            .push(Gate::CX, &[0, 1]) // 2
            .push(Gate::T, &[2]) // 3
            .push(Gate::CX, &[1, 2]) // 4
            .push(Gate::H, &[0]); // 5
        c
    }

    #[test]
    fn preds_follow_qubit_wiring() {
        let dag = CircuitDag::new(&sample());
        assert!(dag.node(0).preds.is_empty());
        assert!(dag.node(1).preds.is_empty());
        assert_eq!(dag.node(2).preds, vec![0, 1]);
        assert!(dag.node(3).preds.is_empty());
        assert_eq!(dag.node(4).preds, vec![2, 3]);
        assert_eq!(dag.node(5).preds, vec![2]);
    }

    #[test]
    fn succs_mirror_preds() {
        let dag = CircuitDag::new(&sample());
        for (i, n) in dag.nodes().iter().enumerate() {
            for &s in &n.succs {
                assert!(dag.node(s).preds.contains(&i));
            }
            for &p in &n.preds {
                assert!(dag.node(p).succs.contains(&i));
            }
        }
    }

    #[test]
    fn layers_match_depth() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.layers().len(), c.depth());
        let total: usize = dag.layers().iter().map(|l| l.len()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn roots_are_predecessor_free() {
        let dag = CircuitDag::new(&sample());
        assert_eq!(dag.roots(), vec![0, 1, 3]);
    }

    #[test]
    fn unit_cost_critical_path_equals_depth() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        let cp = dag.critical_path(|_| 1.0);
        assert!((cp - c.depth() as f64).abs() < 1e-12);
    }

    #[test]
    fn weighted_critical_path() {
        let c = sample();
        let dag = CircuitDag::new(&c);
        // Two-qubit gates cost 10, single-qubit cost 1.
        let ops = c.ops().to_vec();
        let cp = dag.critical_path(|i| if ops[i].gate.arity() == 2 { 10.0 } else { 1.0 });
        // Chain: H(1) -> CX(10) -> CX(10) = 21.
        assert!((cp - 21.0).abs() < 1e-12);
    }

    #[test]
    fn dedup_multi_qubit_pred() {
        // Both qubits of the second CX come from the first CX: one pred.
        let mut c = Circuit::new(2);
        c.push(Gate::CX, &[0, 1]).push(Gate::CX, &[1, 0]);
        let dag = CircuitDag::new(&c);
        assert_eq!(dag.node(1).preds, vec![0]);
    }

    #[test]
    fn empty_dag() {
        let dag = CircuitDag::new(&Circuit::new(2));
        assert!(dag.is_empty());
        assert!(dag.layers().is_empty());
        assert_eq!(dag.critical_path(|_| 1.0), 0.0);
    }
}

//! Euler-angle decompositions of single-qubit unitaries and the generic
//! controlled-U construction built on them.
//!
//! Used by the ZX converter (to lower arbitrary controlled gates to
//! `{CX, RZ, RY, Phase}`) and by the synthesis crate (to turn optimized
//! VUG parameters back into elementary gates when needed).

use crate::circuit::Circuit;
use crate::gate::Gate;
use epoc_linalg::{Complex64, Matrix};

/// ZYZ Euler angles of a 2×2 unitary: `U = e^{iα} · RZ(β) · RY(γ) · RZ(δ)`
/// (matrix product order — `RZ(δ)` acts first).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZyzAngles {
    /// Global phase α.
    pub alpha: f64,
    /// Last z-rotation β.
    pub beta: f64,
    /// Middle y-rotation γ.
    pub gamma: f64,
    /// First z-rotation δ.
    pub delta: f64,
}

impl ZyzAngles {
    /// Reconstructs the unitary `e^{iα} RZ(β) RY(γ) RZ(δ)`.
    pub fn to_matrix(self) -> Matrix {
        let rz_b = Gate::RZ(self.beta).unitary_matrix();
        let ry_g = Gate::RY(self.gamma).unitary_matrix();
        let rz_d = Gate::RZ(self.delta).unitary_matrix();
        rz_b.matmul(&ry_g)
            .matmul(&rz_d)
            .scale(Complex64::cis(self.alpha))
    }
}

/// Computes the ZYZ decomposition of a single-qubit unitary.
///
/// # Panics
///
/// Panics if `u` is not 2×2 or not unitary within `1e-8`.
pub fn zyz_decompose(u: &Matrix) -> ZyzAngles {
    assert_eq!(u.rows(), 2, "zyz needs a 2x2 matrix");
    assert!(u.is_unitary(1e-8), "zyz needs a unitary matrix");
    // Normalize to SU(2): det = ad - bc, divide by sqrt(det).
    let det = u[(0, 0)] * u[(1, 1)] - u[(0, 1)] * u[(1, 0)];
    let sqrt_det = det.sqrt();
    let alpha0 = sqrt_det.arg();
    let a = u[(0, 0)] / sqrt_det;
    let c = u[(1, 0)] / sqrt_det;
    let d = u[(1, 1)] / sqrt_det;
    // SU(2): a = cos(γ/2) e^{-i(β+δ)/2}, c = sin(γ/2) e^{i(β-δ)/2}.
    let gamma = 2.0 * c.abs().atan2(a.abs());
    let (sum, diff) = if a.abs() > 1e-9 && c.abs() > 1e-9 {
        (2.0 * d.arg(), 2.0 * c.arg())
    } else if a.abs() > 1e-9 {
        // γ ≈ 0: only β+δ matters.
        (2.0 * d.arg(), 0.0)
    } else {
        // γ ≈ π: only β−δ matters.
        (0.0, 2.0 * c.arg())
    };
    let beta = (sum + diff) / 2.0;
    let delta = (sum - diff) / 2.0;
    ZyzAngles {
        alpha: alpha0,
        beta,
        gamma,
        delta,
    }
}

/// Appends gates implementing `U` (2×2) on `qubit` using `{RZ, RY}`,
/// dropping the global phase.
pub fn append_single_qubit_unitary(c: &mut Circuit, u: &Matrix, qubit: usize) {
    let z = zyz_decompose(u);
    if z.delta.abs() > 1e-12 {
        c.push(Gate::RZ(z.delta), &[qubit]);
    }
    if z.gamma.abs() > 1e-12 {
        c.push(Gate::RY(z.gamma), &[qubit]);
    }
    if z.beta.abs() > 1e-12 {
        c.push(Gate::RZ(z.beta), &[qubit]);
    }
}

/// Appends a controlled-`U` (2×2 `U`) on `(control, target)` decomposed
/// into `{CX, RZ, RY, Phase}` via the standard ABC construction:
/// `CU = (Phase(α) ⊗ I) · A · CX · B · CX · C` with `A·X·B·X·C = U` and
/// `A·B·C = I`.
pub fn append_controlled_unitary(c: &mut Circuit, u: &Matrix, control: usize, target: usize) {
    let z = zyz_decompose(u);
    // C = RZ((δ−β)/2), B = RY(−γ/2)·RZ(−(δ+β)/2), A = RZ(β)·RY(γ/2)
    let c_angle = (z.delta - z.beta) / 2.0;
    if c_angle.abs() > 1e-12 {
        c.push(Gate::RZ(c_angle), &[target]);
    }
    c.push(Gate::CX, &[control, target]);
    let b1 = -(z.delta + z.beta) / 2.0;
    if b1.abs() > 1e-12 {
        c.push(Gate::RZ(b1), &[target]);
    }
    if z.gamma.abs() > 1e-12 {
        c.push(Gate::RY(-z.gamma / 2.0), &[target]);
    }
    c.push(Gate::CX, &[control, target]);
    if z.gamma.abs() > 1e-12 {
        c.push(Gate::RY(z.gamma / 2.0), &[target]);
    }
    if z.beta.abs() > 1e-12 {
        c.push(Gate::RZ(z.beta), &[target]);
    }
    if z.alpha.abs() > 1e-12 {
        c.push(Gate::Phase(z.alpha), &[control]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_linalg::{approx_eq_up_to_phase, random_unitary};
    use epoc_rt::rng::StdRng;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn zyz_reconstructs_standard_gates() {
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::RX(0.3),
            Gate::RY(-0.7),
            Gate::RZ(1.9),
            Gate::U3(0.5, 1.0, -0.5),
        ] {
            let u = g.unitary_matrix();
            let z = zyz_decompose(&u);
            assert!(
                z.to_matrix().approx_eq(&u, 1e-9),
                "zyz failed for {g}: {z:?}"
            );
        }
    }

    #[test]
    fn zyz_reconstructs_random_unitaries() {
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..50 {
            let u = random_unitary(2, &mut rng);
            let z = zyz_decompose(&u);
            assert!(z.to_matrix().approx_eq(&u, 1e-8));
        }
    }

    #[test]
    fn known_angles_for_hadamard() {
        // H = e^{iπ/2} RZ(π) RY(π/2)   (δ = 0)
        let z = zyz_decompose(&Gate::H.unitary_matrix());
        assert!((z.gamma - FRAC_PI_2).abs() < 1e-9);
        let total = (z.beta + z.delta).rem_euclid(2.0 * PI);
        assert!((total - PI).abs() < 1e-9, "β+δ = {total}");
    }

    #[test]
    fn single_qubit_append_matches() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let u = random_unitary(2, &mut rng);
            let mut c = Circuit::new(1);
            append_single_qubit_unitary(&mut c, &u, 0);
            assert!(approx_eq_up_to_phase(&c.unitary(), &u, 1e-7));
        }
    }

    #[test]
    fn controlled_u_matches_direct_construction() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let u = random_unitary(2, &mut rng);
            let mut c = Circuit::new(2);
            append_controlled_unitary(&mut c, &u, 0, 1);
            let direct = crate::gate::controlled(&u);
            assert!(
                approx_eq_up_to_phase(&c.unitary(), &direct, 1e-7),
                "controlled-U mismatch"
            );
        }
    }

    #[test]
    fn controlled_known_gates() {
        for (g, cg) in [
            (Gate::X, Gate::CX),
            (Gate::Y, Gate::CY),
            (Gate::Z, Gate::CZ),
            (Gate::H, Gate::CH),
            (Gate::RZ(0.7), Gate::CRZ(0.7)),
            (Gate::RY(1.1), Gate::CRY(1.1)),
            (Gate::Phase(0.9), Gate::CPhase(0.9)),
        ] {
            let mut c = Circuit::new(2);
            append_controlled_unitary(&mut c, &g.unitary_matrix(), 0, 1);
            assert!(
                approx_eq_up_to_phase(&c.unitary(), &cg.unitary_matrix(), 1e-7),
                "mismatch for controlled {g}"
            );
        }
    }

    #[test]
    fn controlled_reversed_qubits() {
        let u = Gate::H.unitary_matrix();
        let mut c = Circuit::new(2);
        append_controlled_unitary(&mut c, &u, 1, 0);
        let expect = Gate::CH.unitary_matrix().embed(&[1, 0], 2);
        assert!(approx_eq_up_to_phase(&c.unitary(), &expect, 1e-7));
    }

    #[test]
    fn identity_decomposes_to_nothing() {
        let mut c = Circuit::new(1);
        append_single_qubit_unitary(&mut c, &Matrix::identity(2), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn diag_phase_global() {
        // diag(e^{iφ}, e^{iφ}) is pure global phase.
        let phi = 0.6;
        let m = Matrix::from_diag(&[Complex64::cis(phi), Complex64::cis(phi)]);
        let z = zyz_decompose(&m);
        assert!((z.gamma).abs() < 1e-9);
        assert!(z.to_matrix().approx_eq(&m, 1e-9));
    }
}

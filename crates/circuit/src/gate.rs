//! The quantum gate set.
//!
//! [`Gate`] covers the gates QASMBench-style circuits use (Paulis, Clifford
//! generators, parameterized rotations, controlled gates, Toffoli family)
//! plus [`Gate::Unitary`] — an opaque k-qubit unitary block. Opaque blocks
//! are how synthesized *variable unitary gates* (VUGs) and regrouped blocks
//! flow through the same circuit IR as elementary gates.
//!
//! Qubit-order convention: **big-endian** — in an n-qubit operator, qubit 0
//! is the most significant bit of the basis-state index. This matches
//! `epoc_linalg::Matrix::embed`.

use epoc_linalg::{c64, Complex64, Matrix};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2, FRAC_PI_4};
use std::fmt;
use std::sync::Arc;

/// A quantum gate (possibly parameterized), including opaque unitary blocks.
///
/// # Examples
///
/// ```
/// use epoc_circuit::Gate;
///
/// assert_eq!(Gate::H.arity(), 1);
/// assert_eq!(Gate::CX.arity(), 2);
/// assert!(Gate::RZ(0.3).unitary_matrix().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = √Z.
    S,
    /// Inverse phase gate S†.
    Sdg,
    /// T = √S.
    T,
    /// T†.
    Tdg,
    /// √X (the transmon-native SX gate).
    Sx,
    /// (√X)†.
    Sxdg,
    /// Rotation about X by the given angle (radians).
    RX(f64),
    /// Rotation about Y by the given angle (radians).
    RY(f64),
    /// Rotation about Z by the given angle (radians).
    RZ(f64),
    /// Phase gate diag(1, e^{iλ}).
    Phase(f64),
    /// IBM U2(φ, λ) gate.
    U2(f64, f64),
    /// IBM U3(θ, φ, λ) general single-qubit gate.
    U3(f64, f64, f64),
    /// Controlled-X (CNOT): qubit 0 control, qubit 1 target.
    CX,
    /// Controlled-Y.
    CY,
    /// Controlled-Z.
    CZ,
    /// Controlled-H.
    CH,
    /// Controlled-RX.
    CRX(f64),
    /// Controlled-RY.
    CRY(f64),
    /// Controlled-RZ.
    CRZ(f64),
    /// Controlled phase diag(1,1,1,e^{iλ}).
    CPhase(f64),
    /// Two-qubit ZZ interaction exp(-i θ/2 Z⊗Z).
    RZZ(f64),
    /// Two-qubit XX interaction exp(-i θ/2 X⊗X).
    RXX(f64),
    /// SWAP.
    Swap,
    /// Toffoli (CCX): qubits 0,1 controls, qubit 2 target.
    CCX,
    /// Controlled-controlled-Z.
    CCZ,
    /// Controlled-SWAP (Fredkin).
    CSwap,
    /// An opaque k-qubit unitary block (VUG or regrouped block).
    ///
    /// The label is carried for display; the matrix must be `2^k × 2^k`.
    Unitary {
        /// Display label, e.g. `"vug"` or `"blk3"`.
        label: String,
        /// The unitary matrix (shared so circuits clone cheaply).
        matrix: Arc<Matrix>,
    },
}

impl Gate {
    /// Creates an opaque unitary block gate.
    ///
    /// # Panics
    ///
    /// Panics if `matrix` is not square with a power-of-two dimension ≥ 2.
    pub fn unitary(label: impl Into<String>, matrix: Matrix) -> Self {
        assert!(matrix.is_square(), "block unitary must be square");
        let d = matrix.rows();
        assert!(d >= 2 && d.is_power_of_two(), "dimension must be 2^k, k>=1");
        Gate::Unitary {
            label: label.into(),
            matrix: Arc::new(matrix),
        }
    }

    /// Number of qubits the gate acts on.
    pub fn arity(&self) -> usize {
        use Gate::*;
        match self {
            I | X | Y | Z | H | S | Sdg | T | Tdg | Sx | Sxdg | RX(_) | RY(_) | RZ(_)
            | Phase(_) | U2(_, _) | U3(_, _, _) => 1,
            CX | CY | CZ | CH | CRX(_) | CRY(_) | CRZ(_) | CPhase(_) | RZZ(_) | RXX(_) | Swap => 2,
            CCX | CCZ | CSwap => 3,
            Unitary { matrix, .. } => (matrix.rows().trailing_zeros()) as usize,
        }
    }

    /// The gate's unitary matrix (dimension `2^arity`).
    pub fn unitary_matrix(&self) -> Matrix {
        use Gate::*;
        let o = Complex64::ONE;
        let z = Complex64::ZERO;
        let i = Complex64::I;
        match self {
            I => Matrix::identity(2),
            X => Matrix::from_rows(&[&[z, o], &[o, z]]),
            Y => Matrix::from_rows(&[&[z, -i], &[i, z]]),
            Z => Matrix::from_diag(&[o, -o]),
            H => {
                let s = c64(FRAC_1_SQRT_2, 0.0);
                Matrix::from_rows(&[&[s, s], &[s, -s]])
            }
            S => Matrix::from_diag(&[o, i]),
            Sdg => Matrix::from_diag(&[o, -i]),
            T => Matrix::from_diag(&[o, Complex64::cis(FRAC_PI_4)]),
            Tdg => Matrix::from_diag(&[o, Complex64::cis(-FRAC_PI_4)]),
            Sx => {
                let p = c64(0.5, 0.5);
                let m = c64(0.5, -0.5);
                Matrix::from_rows(&[&[p, m], &[m, p]])
            }
            Sxdg => {
                let p = c64(0.5, 0.5);
                let m = c64(0.5, -0.5);
                Matrix::from_rows(&[&[m, p], &[p, m]])
            }
            RX(t) => rot_matrix(*t, &Matrix::from_rows(&[&[z, o], &[o, z]])),
            RY(t) => rot_matrix(*t, &Matrix::from_rows(&[&[z, -i], &[i, z]])),
            RZ(t) => Matrix::from_diag(&[Complex64::cis(-t / 2.0), Complex64::cis(t / 2.0)]),
            Phase(l) => Matrix::from_diag(&[o, Complex64::cis(*l)]),
            U2(phi, lam) => u3_matrix(FRAC_PI_2, *phi, *lam),
            U3(t, phi, lam) => u3_matrix(*t, *phi, *lam),
            CX => controlled(&X.unitary_matrix()),
            CY => controlled(&Y.unitary_matrix()),
            CZ => controlled(&Z.unitary_matrix()),
            CH => controlled(&H.unitary_matrix()),
            CRX(t) => controlled(&RX(*t).unitary_matrix()),
            CRY(t) => controlled(&RY(*t).unitary_matrix()),
            CRZ(t) => controlled(&RZ(*t).unitary_matrix()),
            CPhase(l) => controlled(&Phase(*l).unitary_matrix()),
            RZZ(t) => Matrix::from_diag(&[
                Complex64::cis(-t / 2.0),
                Complex64::cis(t / 2.0),
                Complex64::cis(t / 2.0),
                Complex64::cis(-t / 2.0),
            ]),
            RXX(t) => {
                let c = c64((t / 2.0).cos(), 0.0);
                let s = c64(0.0, -(t / 2.0).sin());
                Matrix::from_rows(&[
                    &[c, z, z, s],
                    &[z, c, s, z],
                    &[z, s, c, z],
                    &[s, z, z, c],
                ])
            }
            Swap => Matrix::from_rows(&[
                &[o, z, z, z],
                &[z, z, o, z],
                &[z, o, z, z],
                &[z, z, z, o],
            ]),
            CCX => controlled(&CX.unitary_matrix()),
            CCZ => controlled(&CZ.unitary_matrix()),
            CSwap => controlled(&Swap.unitary_matrix()),
            Unitary { matrix, .. } => (**matrix).clone(),
        }
    }

    /// The inverse gate.
    pub fn inverse(&self) -> Gate {
        use Gate::*;
        match self {
            I | X | Y | Z | H | CX | CY | CZ | CH | Swap | CCX | CCZ | CSwap => self.clone(),
            S => Sdg,
            Sdg => S,
            T => Tdg,
            Tdg => T,
            Sx => Sxdg,
            Sxdg => Sx,
            RX(t) => RX(-t),
            RY(t) => RY(-t),
            RZ(t) => RZ(-t),
            Phase(l) => Phase(-l),
            U2(phi, lam) => U3(-FRAC_PI_2, -lam, -phi),
            U3(t, phi, lam) => U3(-t, -lam, -phi),
            CRX(t) => CRX(-t),
            CRY(t) => CRY(-t),
            CRZ(t) => CRZ(-t),
            CPhase(l) => CPhase(-l),
            RZZ(t) => RZZ(-t),
            RXX(t) => RXX(-t),
            Unitary { label, matrix } => Unitary {
                label: format!("{label}†"),
                matrix: Arc::new(matrix.dagger()),
            },
        }
    }

    /// `true` for gates diagonal in the computational basis.
    pub fn is_diagonal(&self) -> bool {
        use Gate::*;
        matches!(
            self,
            I | Z | S | Sdg | T | Tdg | RZ(_) | Phase(_) | CZ | CRZ(_) | CPhase(_) | RZZ(_) | CCZ
        )
    }

    /// `true` for Clifford gates (at any parameter value for rotations,
    /// only the exact gate variants count).
    pub fn is_clifford(&self) -> bool {
        use Gate::*;
        matches!(self, I | X | Y | Z | H | S | Sdg | Sx | Sxdg | CX | CY | CZ | Swap)
    }

    /// The QASM-style mnemonic (lower case).
    pub fn name(&self) -> &'static str {
        use Gate::*;
        match self {
            I => "id",
            X => "x",
            Y => "y",
            Z => "z",
            H => "h",
            S => "s",
            Sdg => "sdg",
            T => "t",
            Tdg => "tdg",
            Sx => "sx",
            Sxdg => "sxdg",
            RX(_) => "rx",
            RY(_) => "ry",
            RZ(_) => "rz",
            Phase(_) => "p",
            U2(_, _) => "u2",
            U3(_, _, _) => "u3",
            CX => "cx",
            CY => "cy",
            CZ => "cz",
            CH => "ch",
            CRX(_) => "crx",
            CRY(_) => "cry",
            CRZ(_) => "crz",
            CPhase(_) => "cp",
            RZZ(_) => "rzz",
            RXX(_) => "rxx",
            Swap => "swap",
            CCX => "ccx",
            CCZ => "ccz",
            CSwap => "cswap",
            Unitary { .. } => "unitary",
        }
    }

    /// The gate's rotation/phase parameters, if any.
    pub fn params(&self) -> Vec<f64> {
        use Gate::*;
        match self {
            RX(t) | RY(t) | RZ(t) | Phase(t) | CRX(t) | CRY(t) | CRZ(t) | CPhase(t) | RZZ(t)
            | RXX(t) => vec![*t],
            U2(a, b) => vec![*a, *b],
            U3(a, b, c) => vec![*a, *b, *c],
            _ => vec![],
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Gate::Unitary { label, matrix } = self {
            return write!(f, "{label}[{}q]", matrix.rows().trailing_zeros());
        }
        let p = self.params();
        if p.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let args: Vec<String> = p.iter().map(|x| format!("{x:.6}")).collect();
            write!(f, "{}({})", self.name(), args.join(","))
        }
    }
}

/// `exp(-i θ/2 P)` for an involutory generator `P` (`P² = I`).
fn rot_matrix(theta: f64, p: &Matrix) -> Matrix {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    let n = p.rows();
    let mut out = Matrix::identity(n).scale(c64(c, 0.0));
    let ip = p.scale(c64(0.0, -s));
    out += &ip;
    out
}

/// IBM-convention U3 matrix.
fn u3_matrix(theta: f64, phi: f64, lam: f64) -> Matrix {
    let ct = c64((theta / 2.0).cos(), 0.0);
    let st = c64((theta / 2.0).sin(), 0.0);
    Matrix::from_rows(&[
        &[ct, -(Complex64::cis(lam) * st)],
        &[Complex64::cis(phi) * st, Complex64::cis(phi + lam) * ct],
    ])
}

/// Controlled version of `u` with the new control as the top (most
/// significant) qubit: `|0⟩⟨0|⊗I + |1⟩⟨1|⊗u`.
pub fn controlled(u: &Matrix) -> Matrix {
    let d = u.rows();
    let mut out = Matrix::identity(2 * d);
    for r in 0..d {
        for c in 0..d {
            out[(d + r, d + c)] = u[(r, c)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_linalg::approx_eq_up_to_phase;
    use std::f64::consts::PI;

    const TOL: f64 = 1e-12;

    fn check_unitary(g: Gate) {
        let u = g.unitary_matrix();
        assert!(u.is_unitary(TOL), "{g} is not unitary");
        assert_eq!(u.rows(), 1 << g.arity(), "{g} has wrong dimension");
    }

    #[test]
    fn all_gates_are_unitary() {
        let gates = vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::RX(0.3),
            Gate::RY(-1.1),
            Gate::RZ(2.2),
            Gate::Phase(0.7),
            Gate::U2(0.1, 0.2),
            Gate::U3(1.0, 0.5, -0.5),
            Gate::CX,
            Gate::CY,
            Gate::CZ,
            Gate::CH,
            Gate::CRX(0.4),
            Gate::CRY(0.4),
            Gate::CRZ(0.4),
            Gate::CPhase(1.3),
            Gate::RZZ(0.8),
            Gate::RXX(0.8),
            Gate::Swap,
            Gate::CCX,
            Gate::CCZ,
            Gate::CSwap,
        ];
        for g in gates {
            check_unitary(g);
        }
    }

    #[test]
    fn inverses_cancel() {
        let gates = vec![
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::RX(0.7),
            Gate::RZ(-2.0),
            Gate::U2(0.4, 1.1),
            Gate::U3(0.9, 0.2, -0.3),
            Gate::CRZ(0.5),
            Gate::CPhase(0.5),
            Gate::RZZ(1.0),
            Gate::RXX(-0.6),
            Gate::CCX,
        ];
        for g in gates {
            let u = g.unitary_matrix();
            let v = g.inverse().unitary_matrix();
            let prod = u.matmul(&v);
            assert!(
                approx_eq_up_to_phase(&prod, &Matrix::identity(u.rows()), 1e-7),
                "{g} inverse fails"
            );
        }
    }

    #[test]
    fn algebraic_identities() {
        // HH = I, SS = Z, TT = S, SxSx = X
        let h = Gate::H.unitary_matrix();
        assert!(h.matmul(&h).approx_eq(&Matrix::identity(2), TOL));
        let s = Gate::S.unitary_matrix();
        assert!(s.matmul(&s).approx_eq(&Gate::Z.unitary_matrix(), TOL));
        let t = Gate::T.unitary_matrix();
        assert!(t.matmul(&t).approx_eq(&s, TOL));
        let sx = Gate::Sx.unitary_matrix();
        assert!(sx.matmul(&sx).approx_eq(&Gate::X.unitary_matrix(), TOL));
    }

    #[test]
    fn hzh_is_x() {
        let h = Gate::H.unitary_matrix();
        let z = Gate::Z.unitary_matrix();
        let x = Gate::X.unitary_matrix();
        assert!(h.matmul(&z).matmul(&h).approx_eq(&x, TOL));
    }

    #[test]
    fn rz_matches_phase_up_to_global_phase() {
        let theta = 0.9;
        let rz = Gate::RZ(theta).unitary_matrix();
        let p = Gate::Phase(theta).unitary_matrix();
        assert!(approx_eq_up_to_phase(&rz, &p, 1e-7));
    }

    #[test]
    fn u3_special_cases() {
        // U3(π/2, 0, π) = H (up to global phase... actually exactly H).
        let u = Gate::U3(FRAC_PI_2, 0.0, PI).unitary_matrix();
        assert!(u.approx_eq(&Gate::H.unitary_matrix(), 1e-12));
        // U3(θ, -π/2, π/2) = RX(θ)
        let t = 0.77;
        let u = Gate::U3(t, -FRAC_PI_2, FRAC_PI_2).unitary_matrix();
        assert!(u.approx_eq(&Gate::RX(t).unitary_matrix(), 1e-12));
        // U3(θ, 0, 0) = RY(θ)
        let u = Gate::U3(t, 0.0, 0.0).unitary_matrix();
        assert!(u.approx_eq(&Gate::RY(t).unitary_matrix(), 1e-12));
    }

    #[test]
    fn cx_truth_table() {
        let cx = Gate::CX.unitary_matrix();
        // |10> -> |11>, |11> -> |10> (control = high bit)
        assert_eq!(cx[(3, 2)], Complex64::ONE);
        assert_eq!(cx[(2, 3)], Complex64::ONE);
        assert_eq!(cx[(0, 0)], Complex64::ONE);
        assert_eq!(cx[(1, 1)], Complex64::ONE);
    }

    #[test]
    fn ccx_truth_table() {
        let u = Gate::CCX.unitary_matrix();
        // Only |110> <-> |111> swap.
        assert_eq!(u[(7, 6)], Complex64::ONE);
        assert_eq!(u[(6, 7)], Complex64::ONE);
        for k in 0..6 {
            assert_eq!(u[(k, k)], Complex64::ONE);
        }
    }

    #[test]
    fn swap_conjugates_cx() {
        // SWAP · CX(0→1) · SWAP = CX(1→0)
        let sw = Gate::Swap.unitary_matrix();
        let cx = Gate::CX.unitary_matrix();
        let flipped = sw.matmul(&cx).matmul(&sw);
        let expect = Gate::CX.unitary_matrix().embed(&[1, 0], 2);
        assert!(flipped.approx_eq(&expect, TOL));
    }

    #[test]
    fn rzz_is_diagonal_and_symmetric() {
        let g = Gate::RZZ(1.2);
        assert!(g.is_diagonal());
        let u = g.unitary_matrix();
        let sw = Gate::Swap.unitary_matrix();
        assert!(sw.matmul(&u).matmul(&sw).approx_eq(&u, TOL));
    }

    #[test]
    fn opaque_unitary_round_trip() {
        let m = Gate::CX.unitary_matrix();
        let g = Gate::unitary("blk", m.clone());
        assert_eq!(g.arity(), 2);
        assert!(g.unitary_matrix().approx_eq(&m, 0.0));
        assert_eq!(g.to_string(), "blk[2q]");
        let inv = g.inverse();
        assert!(inv
            .unitary_matrix()
            .matmul(&m)
            .approx_eq(&Matrix::identity(4), TOL));
    }

    #[test]
    #[should_panic(expected = "dimension must be 2^k")]
    fn opaque_unitary_rejects_bad_dim() {
        let _ = Gate::unitary("bad", Matrix::identity(3));
    }

    #[test]
    fn clifford_and_diagonal_classification() {
        assert!(Gate::H.is_clifford());
        assert!(!Gate::T.is_clifford());
        assert!(Gate::T.is_diagonal());
        assert!(!Gate::H.is_diagonal());
        assert!(Gate::CZ.is_diagonal());
        assert!(Gate::CZ.is_clifford());
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::H.to_string(), "h");
        assert!(Gate::RX(0.5).to_string().starts_with("rx(0.5"));
    }
}

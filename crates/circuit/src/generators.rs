//! Benchmark circuit generators.
//!
//! The paper evaluates on circuits from QASMBench plus random mixes. The
//! QASM files themselves are not redistributable, so this module generates
//! structurally faithful equivalents in code: the same algorithm, qubit
//! count and gate mix as the corresponding QASMBench entries. Every
//! generator is deterministic (seeded where randomized) so experiments are
//! reproducible.

use crate::circuit::Circuit;
use crate::gate::Gate;
use epoc_rt::rng::StdRng;
use epoc_rt::rng::Rng;
use std::f64::consts::PI;

/// GHZ state preparation on `n` qubits: `H` then a CNOT chain.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 1, "ghz needs at least one qubit");
    let mut c = Circuit::new(n);
    c.push(Gate::H, &[0]);
    for q in 0..n.saturating_sub(1) {
        c.push(Gate::CX, &[q, q + 1]);
    }
    c
}

/// W-state preparation on `n` qubits via controlled rotations and CNOTs.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn wstate(n: usize) -> Circuit {
    assert!(n >= 2, "wstate needs at least two qubits");
    let mut c = Circuit::new(n);
    // Excitation-passing cascade: at stage k, keep amplitude 1/√n at site k
    // and pass the rest to site k+1 via CRY + CX.
    c.push(Gate::X, &[0]);
    for k in 0..n - 1 {
        let theta = 2.0 * (1.0 / ((n - k) as f64)).sqrt().acos();
        c.push(Gate::CRY(theta), &[k, k + 1]);
        c.push(Gate::CX, &[k + 1, k]);
    }
    c
}

/// The 4-qubit Bell-pair preparation circuit of the paper's Figure 4:
/// two Bell pairs built from RZ/SX/CX basis gates (transmon-native form),
/// padded with the single-qubit chaff that ZX optimization removes.
pub fn bell_pair_prep() -> Circuit {
    let mut c = Circuit::new(4);
    for pair in [(0usize, 1usize), (2, 3)] {
        let (a, b) = pair;
        // H decomposed into RZ·SX·RZ (native basis), as Figure 4(a) shows.
        c.push(Gate::RZ(PI / 2.0), &[a])
            .push(Gate::Sx, &[a])
            .push(Gate::RZ(PI / 2.0), &[a]);
        // Chaff that commutes/cancels under ZX rules.
        c.push(Gate::RZ(PI / 4.0), &[b])
            .push(Gate::RZ(-PI / 4.0), &[b])
            .push(Gate::X, &[b])
            .push(Gate::X, &[b]);
        c.push(Gate::CX, &[a, b]);
        c.push(Gate::RZ(PI), &[a])
            .push(Gate::RZ(-PI / 2.0), &[a])
            .push(Gate::RZ(-PI / 2.0), &[a]);
        c.push(Gate::Sx, &[b]).push(Gate::Sxdg, &[b]);
    }
    c.push(Gate::CX, &[1, 2]);
    c.push(Gate::CX, &[1, 2]);
    c
}

/// Bernstein–Vazirani with the given secret bitstring (1 oracle qubit at
/// the end). `secret.len()` data qubits + 1 ancilla.
///
/// # Panics
///
/// Panics if `secret` is empty.
pub fn bernstein_vazirani(secret: &[bool]) -> Circuit {
    assert!(!secret.is_empty(), "secret must be non-empty");
    let n = secret.len();
    let mut c = Circuit::new(n + 1);
    c.push(Gate::X, &[n]);
    for q in 0..=n {
        c.push(Gate::H, &[q]);
    }
    for (q, &bit) in secret.iter().enumerate() {
        if bit {
            c.push(Gate::CX, &[q, n]);
        }
    }
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    c
}

/// QASMBench-style `bv` instance: alternating-bits secret on `n` data qubits.
pub fn bv(n: usize) -> Circuit {
    let secret: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
    bernstein_vazirani(&secret)
}

/// Simon's algorithm instance on `2n` qubits with hidden period `s`
/// (QASMBench `simon_n6` corresponds to `n = 3`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn simon(n: usize) -> Circuit {
    assert!(n >= 2, "simon needs n >= 2 input qubits");
    let mut c = Circuit::new(2 * n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    // Oracle: copy x to output register, then XOR period s = 110...0 when
    // the first qubit is 1.
    for q in 0..n {
        c.push(Gate::CX, &[q, n + q]);
    }
    c.push(Gate::CX, &[0, n]);
    c.push(Gate::CX, &[0, n + 1]);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    c
}

/// BB84 state preparation/measurement bases on `n` qubits (QASMBench
/// `bb84_n8`): per-qubit bit/basis choices, seeded.
pub fn bb84(n: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        if rng.gen_bool() {
            c.push(Gate::X, &[q]);
        }
        if rng.gen_bool() {
            c.push(Gate::H, &[q]);
        }
        // Bob's random basis.
        if rng.gen_bool() {
            c.push(Gate::H, &[q]);
        }
    }
    c
}

/// QAOA MaxCut ansatz on a ring of `n` qubits with `p` layers.
pub fn qaoa(n: usize, p: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    for _ in 0..p {
        let gamma: f64 = rng.gen_f64() * PI;
        let beta: f64 = rng.gen_f64() * PI;
        for q in 0..n {
            let r = (q + 1) % n;
            if n > 2 || q < r {
                c.push(Gate::CX, &[q, r]);
                c.push(Gate::RZ(2.0 * gamma), &[r]);
                c.push(Gate::CX, &[q, r]);
            }
        }
        for q in 0..n {
            c.push(Gate::RX(2.0 * beta), &[q]);
        }
    }
    c
}

/// The reversible `decod24` circuit (RevLib decod24-v2_43): a 4-qubit
/// 2-to-4 decoder built from Toffoli/CNOT/NOT, lowered to {CCX, CX, X}.
pub fn decod24() -> Circuit {
    let mut c = Circuit::new(4);
    c.push(Gate::CX, &[2, 1])
        .push(Gate::CCX, &[0, 1, 3])
        .push(Gate::CX, &[3, 0])
        .push(Gate::X, &[1])
        .push(Gate::CCX, &[1, 2, 0])
        .push(Gate::CX, &[0, 2])
        .push(Gate::CX, &[1, 3])
        .push(Gate::X, &[3])
        .push(Gate::CCX, &[2, 3, 1])
        .push(Gate::CX, &[1, 0]);
    c
}

/// Quantum-DNN-style layered ansatz (QASMBench `dnn_n8`): alternating
/// parameterized single-qubit layers and entangling ladders.
pub fn dnn(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..layers {
        for q in 0..n {
            c.push(Gate::RY(rng.gen_f64() * PI), &[q]);
            c.push(Gate::RZ(rng.gen_f64() * PI), &[q]);
        }
        for q in 0..n.saturating_sub(1) {
            c.push(Gate::CX, &[q, q + 1]);
        }
        for q in 0..n {
            c.push(Gate::RY(rng.gen_f64() * PI), &[q]);
        }
    }
    c
}

/// `ham7`-style Hamiltonian-simulation circuit on 7 qubits: first-order
/// Trotter steps of a Heisenberg-like chain.
pub fn ham7() -> Circuit {
    hamiltonian_sim(7, 3, 0.35)
}

/// First-order Trotterized Heisenberg-chain simulation: `steps` repetitions
/// of RZZ/RXX couplings plus local fields.
pub fn hamiltonian_sim(n: usize, steps: usize, dt: f64) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..steps {
        for q in 0..n.saturating_sub(1) {
            c.push(Gate::RZZ(2.0 * dt), &[q, q + 1]);
        }
        for q in 0..n.saturating_sub(1) {
            c.push(Gate::RXX(2.0 * dt), &[q, q + 1]);
        }
        for q in 0..n {
            c.push(Gate::RZ(dt), &[q]);
            c.push(Gate::RX(dt), &[q]);
        }
    }
    c
}

/// Hardware-efficient VQE ansatz (RY + CZ ladder), `layers` deep.
pub fn vqe(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::RY(rng.gen_f64() * PI), &[q]);
    }
    for _ in 0..layers {
        for q in 0..n.saturating_sub(1) {
            c.push(Gate::CZ, &[q, q + 1]);
        }
        for q in 0..n {
            c.push(Gate::RY(rng.gen_f64() * PI), &[q]);
            c.push(Gate::RZ(rng.gen_f64() * PI), &[q]);
        }
    }
    c
}

/// VQE ansatz initialized at a Clifford point (all angles multiples of
/// π/2), as identity-block / barren-plateau-avoiding initialization
/// schemes produce. Heavily ZX-reducible — the population behind the
/// paper's extreme Figure-5 data point.
pub fn vqe_clifford_init(n: usize, layers: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    fn snap(c: &mut Circuit, rng: &mut StdRng, q: usize) {
        let k = rng.gen_range(0..4u32);
        c.push(Gate::RY(k as f64 * PI / 2.0), &[q]);
    }
    for q in 0..n {
        snap(&mut c, &mut rng, q);
    }
    for _ in 0..layers {
        for q in 0..n.saturating_sub(1) {
            c.push(Gate::CZ, &[q, q + 1]);
        }
        for q in 0..n {
            snap(&mut c, &mut rng, q);
            let k = rng.gen_range(0..4u32);
            c.push(Gate::RZ(k as f64 * PI / 2.0), &[q]);
        }
    }
    c
}

/// Quantum Fourier transform on `n` qubits (no terminal swaps).
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
        for t in (q + 1)..n {
            let angle = PI / f64::powi(2.0, (t - q) as i32);
            c.push(Gate::CPhase(angle), &[t, q]);
        }
    }
    c
}

/// Ripple-carry adder (Cuccaro-style) on `2n + 2` qubits for `n`-bit
/// operands, lowered to {CCX, CX, X}.
pub fn adder(n: usize) -> Circuit {
    assert!(n >= 1, "adder needs at least 1-bit operands");
    // Layout: carry_in, a[0..n], b[0..n], carry_out
    let cin = 0;
    let a = |i: usize| 1 + i;
    let b = |i: usize| 1 + n + i;
    let cout = 1 + 2 * n;
    let mut c = Circuit::new(2 * n + 2);
    // MAJ / UMA cascade.
    c.push(Gate::CX, &[a(0), b(0)]);
    c.push(Gate::CX, &[a(0), cin]);
    c.push(Gate::CCX, &[cin, b(0), a(0)]);
    for i in 1..n {
        c.push(Gate::CX, &[a(i), b(i)]);
        c.push(Gate::CX, &[a(i), a(i - 1)]);
        c.push(Gate::CCX, &[a(i - 1), b(i), a(i)]);
    }
    c.push(Gate::CX, &[a(n - 1), cout]);
    for i in (1..n).rev() {
        c.push(Gate::CCX, &[a(i - 1), b(i), a(i)]);
        c.push(Gate::CX, &[a(i), a(i - 1)]);
        c.push(Gate::CX, &[a(i - 1), b(i)]);
    }
    c.push(Gate::CCX, &[cin, b(0), a(0)]);
    c.push(Gate::CX, &[a(0), cin]);
    c.push(Gate::CX, &[cin, b(0)]);
    c
}

/// Grover search on `n` qubits with a single marked state (all-ones),
/// one iteration, lowered to {H, X, CCX/CZ}.
pub fn grover(n: usize) -> Circuit {
    assert!((2..=8).contains(&n), "grover generator supports 2..=8 qubits");
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.push(Gate::H, &[q]);
    }
    // Oracle: multi-controlled Z on |1...1> (via CCZ/CZ ladder for small n).
    multi_controlled_z(&mut c, n);
    // Diffusion.
    for q in 0..n {
        c.push(Gate::H, &[q]);
        c.push(Gate::X, &[q]);
    }
    multi_controlled_z(&mut c, n);
    for q in 0..n {
        c.push(Gate::X, &[q]);
        c.push(Gate::H, &[q]);
    }
    c
}

/// Appends a multi-controlled Z across all `n` qubits (small-n ladder
/// construction without ancillas; exact for n ≤ 3, V-chain demo beyond).
fn multi_controlled_z(c: &mut Circuit, n: usize) {
    match n {
        1 => {
            c.push(Gate::Z, &[0]);
        }
        2 => {
            c.push(Gate::CZ, &[0, 1]);
        }
        3 => {
            c.push(Gate::CCZ, &[0, 1, 2]);
        }
        _ => {
            // Recursive phase-ladder: exact multi-controlled phase using
            // CPhase cascades (Barenco-style without ancilla, O(n²) gates).
            mcphase(c, &(0..n).collect::<Vec<_>>(), PI);
        }
    }
}

/// Multi-controlled phase via recursive halving of the angle.
fn mcphase(c: &mut Circuit, qubits: &[usize], angle: f64) {
    match qubits.len() {
        0 => {}
        1 => {
            c.push(Gate::Phase(angle), &[qubits[0]]);
        }
        2 => {
            c.push(Gate::CPhase(angle), &[qubits[0], qubits[1]]);
        }
        _ => {
            let (rest, last) = qubits.split_at(qubits.len() - 1);
            let t = last[0];
            let half = angle / 2.0;
            c.push(Gate::CPhase(half), &[rest[rest.len() - 1], t]);
            // CX-ladder onto the last control, flip, repeat.
            mccx_free_phase(c, rest, t, half);
        }
    }
}

fn mccx_free_phase(c: &mut Circuit, controls: &[usize], target: usize, half: f64) {
    // mcphase(controls ∪ {target}, 2·half) ≡
    //   CP(half)(last, t); MCX(rest→last); CP(-half)(last, t);
    //   MCX(rest→last); mcphase(rest ∪ {t}, half)
    let last = controls[controls.len() - 1];
    let rest = &controls[..controls.len() - 1];
    mcx(c, rest, last);
    c.push(Gate::CPhase(-half), &[last, target]);
    mcx(c, rest, last);
    let mut sub: Vec<usize> = rest.to_vec();
    sub.push(target);
    mcphase(c, &sub, half);
}

/// Multi-controlled X (no ancilla, recursive; exact for ≤ 2 controls, and
/// phase-corrected recursion beyond).
fn mcx(c: &mut Circuit, controls: &[usize], target: usize) {
    match controls.len() {
        0 => {
            c.push(Gate::X, &[target]);
        }
        1 => {
            c.push(Gate::CX, &[controls[0], target]);
        }
        2 => {
            c.push(Gate::CCX, &[controls[0], controls[1], target]);
        }
        _ => {
            // H t; MCPhase(controls+t, π); H t
            c.push(Gate::H, &[target]);
            let mut all: Vec<usize> = controls.to_vec();
            all.push(target);
            mcphase(c, &all, PI);
            c.push(Gate::H, &[target]);
        }
    }
}

/// A random circuit over {H, T, S, RX, RZ, CX, CZ} with the given gate
/// count; used for the Figure-5 random-circuit population.
pub fn random_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "random circuits need >= 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        match rng.gen_range(0..7) {
            0 => c.push(Gate::H, &[rng.gen_range(0..n)]),
            1 => c.push(Gate::T, &[rng.gen_range(0..n)]),
            2 => c.push(Gate::S, &[rng.gen_range(0..n)]),
            3 => c.push(Gate::RX(rng.gen_f64() * PI), &[rng.gen_range(0..n)]),
            4 => c.push(Gate::RZ(rng.gen_f64() * PI), &[rng.gen_range(0..n)]),
            5 => {
                let a = rng.gen_range(0..n);
                let b = (a + rng.gen_range(1..n)) % n;
                c.push(Gate::CX, &[a, b])
            }
            _ => {
                let a = rng.gen_range(0..n);
                let b = (a + rng.gen_range(1..n)) % n;
                c.push(Gate::CZ, &[a, b])
            }
        };
    }
    c
}

/// A random Clifford+T circuit (the population PyZX-style optimization is
/// strongest on).
pub fn random_clifford_t(n: usize, gates: usize, t_fraction: f64, seed: u64) -> Circuit {
    assert!(n >= 2, "need >= 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        if rng.gen_f64() < t_fraction {
            c.push(Gate::T, &[rng.gen_range(0..n)]);
        } else {
            match rng.gen_range(0..4) {
                0 => c.push(Gate::H, &[rng.gen_range(0..n)]),
                1 => c.push(Gate::S, &[rng.gen_range(0..n)]),
                2 => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    c.push(Gate::CX, &[a, b])
                }
                _ => {
                    let a = rng.gen_range(0..n);
                    let b = (a + rng.gen_range(1..n)) % n;
                    c.push(Gate::CZ, &[a, b])
                }
            };
        }
    }
    c
}

/// A named benchmark from the standard suite.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Short name (matches the paper's labels where applicable).
    pub name: &'static str,
    /// The circuit.
    pub circuit: Circuit,
}

/// The 17-benchmark family standing in for the paper's QASMBench set
/// (Figures 8–10).
pub fn benchmark_suite() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "ghz_n4", circuit: ghz(4) },
        Benchmark { name: "ghz_n8", circuit: ghz(8) },
        Benchmark { name: "wstate_n3", circuit: wstate(3) },
        Benchmark { name: "bell_n4", circuit: bell_pair_prep() },
        Benchmark { name: "bv_n5", circuit: bv(4) },
        Benchmark { name: "bv_n8", circuit: bv(7) },
        Benchmark { name: "simon_n6", circuit: simon(3) },
        Benchmark { name: "bb84_n8", circuit: bb84(8, 84) },
        Benchmark { name: "qaoa_n6", circuit: qaoa(6, 2, 7) },
        Benchmark { name: "decod24_n4", circuit: decod24() },
        Benchmark { name: "dnn_n8", circuit: dnn(8, 2, 11) },
        Benchmark { name: "ham7_n7", circuit: ham7() },
        Benchmark { name: "vqe_n4", circuit: vqe(4, 3, 5) },
        Benchmark { name: "qft_n5", circuit: qft(5) },
        Benchmark { name: "adder_n4", circuit: adder(1) },
        Benchmark { name: "grover_n3", circuit: grover(3) },
        Benchmark { name: "ising_n6", circuit: hamiltonian_sim(6, 2, 0.4) },
    ]
}

/// The 7 circuits of the paper's Table 1.
pub fn table1_suite() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "simon", circuit: simon(3) },
        Benchmark { name: "bb84", circuit: bb84(8, 84) },
        Benchmark { name: "bv", circuit: bv(7) },
        Benchmark { name: "qaoa", circuit: qaoa(6, 2, 7) },
        Benchmark { name: "decod24", circuit: decod24() },
        Benchmark { name: "dnn", circuit: dnn(8, 2, 11) },
        Benchmark { name: "ham7", circuit: ham7() },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;

    #[test]
    fn ghz_amplitudes() {
        let s = simulate(&ghz(4));
        assert!((s.probability(0) - 0.5).abs() < 1e-10);
        assert!((s.probability(15) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn wstate_has_hamming_weight_one_support() {
        let s = simulate(&wstate(4));
        let mut total = 0.0;
        for k in 0..16usize {
            let p = s.probability(k);
            if k.count_ones() == 1 {
                total += p;
                assert!(p > 0.2, "unexpected low weight at {k}: {p}");
            } else {
                assert!(p < 1e-9, "support outside weight-1 at {k}: {p}");
            }
        }
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bv_recovers_secret() {
        let secret = [true, false, true];
        let c = bernstein_vazirani(&secret);
        let s = simulate(&c);
        // Data register should be |101>, ancilla in |-> : probability mass
        // split between |101,0> and |101,1>.
        let base = 0b1010usize; // q0..q2 = 101, ancilla q3
        let p = s.probability(base) + s.probability(base | 1);
        assert!((p - 1.0).abs() < 1e-9, "secret not recovered: {p}");
    }

    #[test]
    fn simon_output_orthogonal_to_period() {
        let c = simon(3);
        let s = simulate(&c);
        // Period s = 110. Any measured first-register y must satisfy y·s = 0.
        let period = 0b110usize;
        for idx in 0..(1usize << 6) {
            let y = idx >> 3; // top 3 bits = first register
            let dot = (y & period).count_ones() % 2;
            if s.probability(idx) > 1e-9 {
                assert_eq!(dot, 0, "non-orthogonal outcome y={y:03b}");
            }
        }
    }

    #[test]
    fn qft_unitary_correct() {
        let n = 3;
        let u = qft(n).unitary();
        let dim = 1 << n;
        let omega = 2.0 * PI / dim as f64;
        // QFT (without terminal swaps) maps |j> to bit-reversed Fourier basis.
        // Check unitarity and first column = uniform superposition.
        assert!(u.is_unitary(1e-10));
        for r in 0..dim {
            let z = u[(r, 0)];
            assert!((z.abs() - 1.0 / (dim as f64).sqrt()).abs() < 1e-10);
        }
        // Column 1 should have phases stepping by ω under bit-reversal.
        let col = 1usize;
        for r in 0..dim {
            let rev = (0..n).fold(0usize, |acc, b| acc | (((r >> b) & 1) << (n - 1 - b)));
            let expect_phase = omega * (rev * col) as f64;
            let z = u[(r, col)];
            let diff = (z.arg() - expect_phase).rem_euclid(2.0 * PI);
            assert!(
                diff < 1e-9 || (2.0 * PI - diff) < 1e-9,
                "phase mismatch at row {r}"
            );
        }
    }

    #[test]
    fn adder_adds() {
        // 1-bit adder: a=1, b=1 -> sum bit 0, carry 1.
        let mut c = Circuit::new(4);
        c.push(Gate::X, &[1]); // a0 = 1
        c.push(Gate::X, &[2]); // b0 = 1
        c.extend(&adder(1));
        let s = simulate(&c);
        // Expected: b holds sum (0), cout = 1, a restored to 1, cin = 0.
        // Layout [cin, a0, b0, cout] big-endian → index 0b0101 = 5.
        assert!((s.probability(0b0101) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adder_two_bit() {
        // a = 3 (11), b = 1 (01) -> b := 4 → b=00, cout=1
        let n = 2;
        let mut c = Circuit::new(2 * n + 2);
        c.push(Gate::X, &[1]).push(Gate::X, &[2]); // a = 11
        c.push(Gate::X, &[3]); // b = 01  (b[0] is LSB at index 3)
        c.extend(&adder(n));
        let s = simulate(&c);
        let mut best = (0usize, 0.0f64);
        for k in 0..(1 << 6) {
            if s.probability(k) > best.1 {
                best = (k, s.probability(k));
            }
        }
        assert!(best.1 > 1.0 - 1e-9, "state not classical");
        let bits = best.0;
        // Layout: [cin, a0, a1, b0, b1, cout] big-endian: index bit 5 = cin.
        let cout = bits & 1;
        let b1 = (bits >> 1) & 1;
        let b0 = (bits >> 2) & 1;
        let sum = b0 + 2 * b1 + 4 * cout;
        assert_eq!(sum, 4, "3 + 1 != {sum} (state {bits:06b})");
    }

    #[test]
    fn grover_amplifies_marked_state() {
        for n in [2usize, 3] {
            let s = simulate(&grover(n));
            let marked = (1 << n) - 1;
            let p = s.probability(marked);
            let uniform = 1.0 / (1 << n) as f64;
            assert!(p > 2.0 * uniform, "n={n}: p={p} not amplified");
        }
    }

    #[test]
    fn decod24_is_permutation() {
        let u = decod24().unitary();
        assert!(u.is_unitary(1e-10));
        // Permutation matrix: every entry is 0 or 1 in modulus.
        for r in 0..16 {
            for c in 0..16 {
                let a = u[(r, c)].abs();
                assert!(a < 1e-9 || (a - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(qaoa(4, 2, 9), qaoa(4, 2, 9));
        assert_eq!(dnn(4, 2, 3), dnn(4, 2, 3));
        assert_eq!(random_circuit(4, 30, 5), random_circuit(4, 30, 5));
        assert_ne!(random_circuit(4, 30, 5), random_circuit(4, 30, 6));
    }

    #[test]
    fn suite_shapes() {
        let suite = benchmark_suite();
        assert_eq!(suite.len(), 17);
        for b in &suite {
            assert!(!b.circuit.is_empty(), "{} is empty", b.name);
            assert!(b.circuit.n_qubits() >= 2, "{} too small", b.name);
        }
        let t1 = table1_suite();
        assert_eq!(t1.len(), 7);
        let names: Vec<_> = t1.iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["simon", "bb84", "bv", "qaoa", "decod24", "dnn", "ham7"]);
    }

    #[test]
    fn mcx_matches_truth_table() {
        // 3-control X via the recursive construction.
        let mut c = Circuit::new(4);
        mcx(&mut c, &[0, 1, 2], 3);
        let u = c.unitary();
        assert!(u.is_unitary(1e-9));
        // |1110> <-> |1111> only.
        for k in 0..16 {
            let flipped = if k >> 1 == 0b111 { k ^ 1 } else { k };
            assert!(
                u[(flipped, k)].abs() > 1.0 - 1e-7,
                "mcx wrong at column {k:04b}"
            );
        }
    }

    #[test]
    fn ham7_shape() {
        let c = ham7();
        assert_eq!(c.n_qubits(), 7);
        assert!(c.len() > 50);
    }

    #[test]
    fn random_clifford_t_composition() {
        let c = random_clifford_t(4, 100, 0.2, 1);
        assert_eq!(c.len(), 100);
        let t_count = c.count_gates(|g| matches!(g, Gate::T));
        assert!(t_count > 5 && t_count < 50, "t_count = {t_count}");
    }
}

//! # epoc-circuit — quantum circuit IR, OpenQASM, simulation, benchmarks
//!
//! The circuit substrate of the EPOC reproduction:
//!
//! * [`Gate`] / [`Circuit`] — the gate set and circuit IR all EPOC passes
//!   operate on, including opaque [`Gate::Unitary`] blocks for synthesized
//!   VUGs and regrouped unitaries.
//! * [`CircuitDag`] — dependency DAG (drives partitioning & latency models).
//! * [`parse_qasm`] / [`to_qasm`] — OpenQASM 2.0 import/export.
//! * [`StateVector`] / [`simulate`] / [`circuits_equivalent`] — statevector
//!   simulation for semantic verification.
//! * [`generators`] — the QASMBench-family benchmark circuits the paper
//!   evaluates on (generated in code; see DESIGN.md for the substitution
//!   note).
//!
//! ## Example
//!
//! ```
//! use epoc_circuit::{Circuit, Gate, simulate};
//!
//! let mut c = Circuit::new(2);
//! c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
//! let state = simulate(&c);
//! assert!((state.probability(0b00) - 0.5).abs() < 1e-12);
//! assert!((state.probability(0b11) - 0.5).abs() < 1e-12);
//! ```

#![warn(missing_docs)]

mod basis;
mod circuit;
mod dag;
mod euler;
mod gate;
pub mod generators;
mod qasm;
mod sim;

pub use basis::{is_basis_gate, lower_to_basis};
pub use circuit::{Circuit, Operation};
pub use dag::{CircuitDag, DagNode};
pub use euler::{
    append_controlled_unitary, append_single_qubit_unitary, zyz_decompose, ZyzAngles,
};
pub use gate::{controlled, Gate};
pub use qasm::{parse_qasm, to_qasm, ParseQasmError};
pub use sim::{circuits_equivalent, simulate, StateVector};

//! OpenQASM 2.0 import/export.
//!
//! Supports the subset QASMBench-style benchmark files use: header,
//! `qelib1.inc` include, `qreg`/`creg` declarations, the standard gate
//! mnemonics with parameter expressions over `pi`, and `measure`/`barrier`
//! statements (parsed and dropped — pulse generation acts on the coherent
//! part of the program).

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing an OpenQASM 2.0 program.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    /// 1-based source line of the failure.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseQasmError {}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// Multiple quantum registers are flattened in declaration order.
/// `measure`, `barrier`, `creg` and `if` statements are accepted and
/// ignored; unknown gate mnemonics are an error.
///
/// # Errors
///
/// Returns [`ParseQasmError`] with the offending line on malformed input.
///
/// # Examples
///
/// ```
/// use epoc_circuit::parse_qasm;
///
/// let src = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[2];
/// h q[0];
/// cx q[0],q[1];
/// "#;
/// let c = parse_qasm(src)?;
/// assert_eq!(c.n_qubits(), 2);
/// assert_eq!(c.len(), 2);
/// # Ok::<(), epoc_circuit::ParseQasmError>(())
/// ```
pub fn parse_qasm(source: &str) -> Result<Circuit, ParseQasmError> {
    let mut registers: Vec<(String, usize, usize)> = Vec::new(); // (name, offset, size)
    let mut total_qubits = 0usize;
    let mut pending: Vec<(usize, String)> = Vec::new(); // statements with line numbers

    // Split into ';'-terminated statements while tracking line numbers and
    // stripping comments.
    let mut current = String::new();
    let mut stmt_line = 1usize;
    let mut started = false;
    for (lineno, raw) in source.lines().enumerate() {
        let line = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        for ch in line.chars() {
            if ch == ';' {
                let stmt = current.trim().to_string();
                if !stmt.is_empty() {
                    pending.push((stmt_line, stmt));
                }
                current.clear();
                started = false;
            } else {
                if !started && !ch.is_whitespace() {
                    started = true;
                    stmt_line = lineno + 1;
                }
                current.push(ch);
            }
        }
        current.push(' ');
    }
    if !current.trim().is_empty() {
        return Err(ParseQasmError {
            line: stmt_line,
            message: "unterminated statement (missing ';')".into(),
        });
    }

    // First pass: registers.
    for (line, stmt) in &pending {
        if let Some(rest) = stmt.strip_prefix("qreg") {
            let (name, size) = parse_reg_decl(rest).map_err(|m| ParseQasmError {
                line: *line,
                message: m,
            })?;
            registers.push((name, total_qubits, size));
            total_qubits += size;
        }
    }
    let reg_map: HashMap<&str, (usize, usize)> = registers
        .iter()
        .map(|(n, off, sz)| (n.as_str(), (*off, *sz)))
        .collect();

    let mut circuit = Circuit::new(total_qubits);
    for (line, stmt) in &pending {
        let stmt = stmt.trim();
        let head = stmt.split_whitespace().next().unwrap_or("");
        match head {
            "OPENQASM" | "include" | "qreg" | "creg" | "barrier" | "measure" | "reset"
            | "if" => continue,
            "" => continue,
            _ => {}
        }
        parse_gate_statement(stmt, &reg_map, &mut circuit).map_err(|m| ParseQasmError {
            line: *line,
            message: m,
        })?;
    }
    Ok(circuit)
}

fn parse_reg_decl(rest: &str) -> Result<(String, usize), String> {
    let rest = rest.trim();
    let open = rest.find('[').ok_or("expected '[' in register decl")?;
    let close = rest.find(']').ok_or("expected ']' in register decl")?;
    let name = rest[..open].trim().to_string();
    if name.is_empty() {
        return Err("empty register name".into());
    }
    let size: usize = rest[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| "invalid register size".to_string())?;
    Ok((name, size))
}

fn parse_gate_statement(
    stmt: &str,
    regs: &HashMap<&str, (usize, usize)>,
    circuit: &mut Circuit,
) -> Result<(), String> {
    // Split mnemonic(params) from operand list. A parameter list may
    // contain spaces (`rz(pi / 2)`) or be separated from the mnemonic by
    // one (`rz (pi/2)`), so when a '(' appears before any ']' the head
    // extends to the matching ')'.
    let open = stmt.find('(');
    let first_bracket = stmt.find('[').unwrap_or(usize::MAX);
    let (head, operands) = match open {
        Some(o) if o < first_bracket => {
            let close = stmt.find(')').ok_or("missing ')' in gate parameters")?;
            if close < o {
                return Err("mismatched parentheses".into());
            }
            (&stmt[..=close], &stmt[close + 1..])
        }
        _ => {
            let p = stmt
                .find(|c: char| c.is_whitespace())
                .ok_or("malformed gate statement")?;
            (&stmt[..p], &stmt[p..])
        }
    };
    let (name, params) = match head.find('(') {
        Some(p) => {
            let close = head.rfind(')').ok_or("missing ')' in gate parameters")?;
            let exprs: Vec<f64> = split_top_level(&head[p + 1..close])
                .into_iter()
                .map(|e| eval_expr(e.trim()))
                .collect::<Result<_, _>>()?;
            (head[..p].trim(), exprs)
        }
        None => (head.trim(), Vec::new()),
    };

    let mut qubits = Vec::new();
    for operand in split_top_level(operands) {
        let operand = operand.trim();
        if operand.is_empty() {
            continue;
        }
        qubits.push(resolve_qubit(operand, regs)?);
    }
    let gate = lookup_gate(name, &params)?;
    if qubits.len() != gate.arity() {
        return Err(format!(
            "gate {name} expects {} qubits, got {}",
            gate.arity(),
            qubits.len()
        ));
    }
    circuit.push(gate, &qubits);
    Ok(())
}

fn resolve_qubit(operand: &str, regs: &HashMap<&str, (usize, usize)>) -> Result<usize, String> {
    let open = operand
        .find('[')
        .ok_or_else(|| format!("expected indexed qubit, got '{operand}'"))?;
    let close = operand
        .find(']')
        .ok_or_else(|| format!("missing ']' in '{operand}'"))?;
    let reg = operand[..open].trim();
    let idx: usize = operand[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| format!("invalid qubit index in '{operand}'"))?;
    let &(offset, size) = regs
        .get(reg)
        .ok_or_else(|| format!("unknown register '{reg}'"))?;
    if idx >= size {
        return Err(format!("qubit index {idx} out of range for register '{reg}'"));
    }
    Ok(offset + idx)
}

/// Splits on commas that are not inside parentheses.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < s.len() {
        out.push(&s[start..]);
    }
    out
}

fn lookup_gate(name: &str, params: &[f64]) -> Result<Gate, String> {
    let need = |n: usize| -> Result<(), String> {
        if params.len() == n {
            Ok(())
        } else {
            Err(format!("gate {name} expects {n} parameters, got {}", params.len()))
        }
    };
    let g = match name {
        "id" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "sx" => Gate::Sx,
        "sxdg" => Gate::Sxdg,
        "rx" => {
            need(1)?;
            Gate::RX(params[0])
        }
        "ry" => {
            need(1)?;
            Gate::RY(params[0])
        }
        "rz" => {
            need(1)?;
            Gate::RZ(params[0])
        }
        "p" | "u1" => {
            need(1)?;
            Gate::Phase(params[0])
        }
        "u2" => {
            need(2)?;
            Gate::U2(params[0], params[1])
        }
        "u3" | "u" => {
            need(3)?;
            Gate::U3(params[0], params[1], params[2])
        }
        "cx" | "CX" => Gate::CX,
        "cy" => Gate::CY,
        "cz" => Gate::CZ,
        "ch" => Gate::CH,
        "crx" => {
            need(1)?;
            Gate::CRX(params[0])
        }
        "cry" => {
            need(1)?;
            Gate::CRY(params[0])
        }
        "crz" => {
            need(1)?;
            Gate::CRZ(params[0])
        }
        "cp" | "cu1" => {
            need(1)?;
            Gate::CPhase(params[0])
        }
        "rzz" => {
            need(1)?;
            Gate::RZZ(params[0])
        }
        "rxx" => {
            need(1)?;
            Gate::RXX(params[0])
        }
        "swap" => Gate::Swap,
        "ccx" => Gate::CCX,
        "ccz" => Gate::CCZ,
        "cswap" => Gate::CSwap,
        other => return Err(format!("unsupported gate '{other}'")),
    };
    if g.params().len() != params.len() {
        return Err(format!("gate {name} parameter count mismatch"));
    }
    Ok(g)
}

/// Evaluates a QASM parameter expression: numbers, `pi`, `+ - * /`,
/// parentheses and unary minus.
fn eval_expr(src: &str) -> Result<f64, String> {
    let tokens = tokenize(src)?;
    let mut pos = 0usize;
    let v = parse_sum(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens in expression '{src}'"));
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(src: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                out.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                out.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '/' => {
                out.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            'p' | 'P' => {
                if src[i..].len() >= 2 && src[i..i + 2].eq_ignore_ascii_case("pi") {
                    out.push(Tok::Num(std::f64::consts::PI));
                    i += 2;
                } else {
                    return Err(format!("unexpected identifier in expression '{src}'"));
                }
            }
            d if d.is_ascii_digit() || d == '.' => {
                let start = i;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    let exp_sign = (ch == '+' || ch == '-')
                        && i > start
                        && matches!(bytes[i - 1] as char, 'e' | 'E');
                    if ch.is_ascii_digit() || ch == '.' || ch == 'e' || ch == 'E' || exp_sign {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let num: f64 = src[start..i]
                    .parse()
                    .map_err(|_| format!("bad number '{}'", &src[start..i]))?;
                out.push(Tok::Num(num));
            }
            other => return Err(format!("unexpected character '{other}' in expression")),
        }
    }
    Ok(out)
}

fn parse_sum(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_product(toks, pos)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Plus => {
                *pos += 1;
                acc += parse_product(toks, pos)?;
            }
            Tok::Minus => {
                *pos += 1;
                acc -= parse_product(toks, pos)?;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_product(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_atom(toks, pos)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Star => {
                *pos += 1;
                acc *= parse_atom(toks, pos)?;
            }
            Tok::Slash => {
                *pos += 1;
                let d = parse_atom(toks, pos)?;
                acc /= d;
            }
            _ => break,
        }
    }
    Ok(acc)
}

fn parse_atom(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    match toks.get(*pos) {
        Some(Tok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-parse_atom(toks, pos)?)
        }
        Some(Tok::Plus) => {
            *pos += 1;
            parse_atom(toks, pos)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_sum(toks, pos)?;
            match toks.get(*pos) {
                Some(Tok::RParen) => {
                    *pos += 1;
                    Ok(v)
                }
                _ => Err("missing ')'".into()),
            }
        }
        _ => Err("unexpected end of expression".into()),
    }
}

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// Opaque [`Gate::Unitary`] blocks cannot be expressed in QASM 2.0 and
/// cause a panic — export circuits before synthesis, or after lowering.
///
/// # Panics
///
/// Panics if the circuit contains opaque unitary blocks.
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    out.push_str(&format!("qreg q[{}];\n", circuit.n_qubits()));
    for op in circuit.ops() {
        assert!(
            !matches!(op.gate, Gate::Unitary { .. }),
            "opaque unitary blocks cannot be exported to QASM 2.0"
        );
        let params = op.gate.params();
        let name = op.gate.name();
        if params.is_empty() {
            out.push_str(name);
        } else {
            let ps: Vec<String> = params.iter().map(|p| format!("{p:.12}")).collect();
            out.push_str(&format!("{name}({})", ps.join(",")));
        }
        let qs: Vec<String> = op.qubits.iter().map(|q| format!("q[{q}]")).collect();
        out.push_str(&format!(" {};\n", qs.join(",")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::circuits_equivalent;
    use std::f64::consts::PI;

    #[test]
    fn parse_minimal_program() {
        let src = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\nccx q[0],q[1],q[2];\n";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.n_qubits(), 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.ops()[2].qubits, vec![0, 1, 2]);
    }

    #[test]
    fn parse_parameter_expressions() {
        let src = "qreg q[1]; rz(pi/2) q[0]; rx(-pi/4) q[0]; u3(0.5, pi*2, 1e-1) q[0];";
        let c = parse_qasm(src).unwrap();
        match &c.ops()[0].gate {
            Gate::RZ(t) => assert!((t - PI / 2.0).abs() < 1e-12),
            g => panic!("wrong gate {g}"),
        }
        match &c.ops()[1].gate {
            Gate::RX(t) => assert!((t + PI / 4.0).abs() < 1e-12),
            g => panic!("wrong gate {g}"),
        }
        match &c.ops()[2].gate {
            Gate::U3(a, b, c) => {
                assert!((a - 0.5).abs() < 1e-12);
                assert!((b - 2.0 * PI).abs() < 1e-12);
                assert!((c - 0.1).abs() < 1e-12);
            }
            g => panic!("wrong gate {g}"),
        }
    }

    #[test]
    fn parse_spaces_around_parameter_list() {
        let src = "qreg q[1]; rz (pi / 2) q[0]; u3( 0.1 , 0.2 , 0.3 ) q[0];";
        let c = parse_qasm(src).unwrap();
        match &c.ops()[0].gate {
            Gate::RZ(t) => assert!((t - PI / 2.0).abs() < 1e-12),
            g => panic!("wrong gate {g}"),
        }
        assert!(matches!(c.ops()[1].gate, Gate::U3(_, _, _)));
    }

    #[test]
    fn parse_multiple_registers_flatten() {
        let src = "qreg a[2]; qreg b[2]; cx a[1],b[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.n_qubits(), 4);
        assert_eq!(c.ops()[0].qubits, vec![1, 2]);
    }

    #[test]
    fn measure_and_barrier_ignored() {
        let src = "qreg q[2]; creg c[2]; h q[0]; barrier q[0],q[1]; measure q[0] -> c[0];";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn comments_stripped() {
        let src = "// header\nqreg q[1]; // reg\nh q[0]; // gate";
        let c = parse_qasm(src).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn unknown_gate_is_error() {
        let src = "qreg q[1]; frobnicate q[0];";
        let err = parse_qasm(src).unwrap_err();
        assert!(err.message.contains("unsupported gate"));
    }

    #[test]
    fn out_of_range_qubit_is_error() {
        let src = "qreg q[1]; h q[3];";
        let err = parse_qasm(src).unwrap_err();
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn error_carries_line_number() {
        let src = "qreg q[1];\n\nbogus q[0];";
        let err = parse_qasm(src).unwrap_err();
        assert_eq!(err.line, 3);
    }

    #[test]
    fn round_trip_semantics() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::RZ(0.7), &[1])
            .push(Gate::CX, &[0, 2])
            .push(Gate::U3(0.1, -0.2, 0.3), &[1])
            .push(Gate::CPhase(1.5), &[1, 2])
            .push(Gate::Swap, &[0, 1]);
        let text = to_qasm(&c);
        let back = parse_qasm(&text).unwrap();
        assert_eq!(back.len(), c.len());
        assert!(circuits_equivalent(&c, &back, 1e-9));
    }

    #[test]
    fn u_aliases() {
        let src = "qreg q[1]; u1(0.3) q[0]; u(0.1,0.2,0.3) q[0]; p(0.5) q[0];";
        let c = parse_qasm(src).unwrap();
        assert!(matches!(c.ops()[0].gate, Gate::Phase(_)));
        assert!(matches!(c.ops()[1].gate, Gate::U3(_, _, _)));
        assert!(matches!(c.ops()[2].gate, Gate::Phase(_)));
    }

    #[test]
    #[should_panic(expected = "cannot be exported")]
    fn export_rejects_opaque_blocks() {
        let mut c = Circuit::new(2);
        c.push(
            Gate::unitary("blk", Gate::CX.unitary_matrix()),
            &[0, 1],
        );
        let _ = to_qasm(&c);
    }
}

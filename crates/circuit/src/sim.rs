//! Statevector simulator.
//!
//! Used for verification: the dense-unitary path ([`crate::Circuit::unitary`])
//! caps out around 12 qubits, while the statevector path handles ~20+ and is
//! how integration tests check that optimized circuits act identically on
//! states.

use crate::circuit::Circuit;
use crate::gate::Gate;
use epoc_linalg::{c64, Complex64, Matrix};

/// A pure quantum state on `n` qubits (big-endian index convention,
/// matching the rest of the crate).
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    n_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state `|0…0⟩`.
    pub fn zero(n_qubits: usize) -> Self {
        assert!(n_qubits <= 24, "statevector limited to 24 qubits");
        let mut amps = vec![Complex64::ZERO; 1 << n_qubits];
        amps[0] = Complex64::ONE;
        Self { n_qubits, amps }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^n`.
    pub fn basis(n_qubits: usize, index: usize) -> Self {
        let mut s = Self::zero(n_qubits);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = Complex64::ZERO;
        s.amps[index] = Complex64::ONE;
        s
    }

    /// Builds a state from raw amplitudes (must have length `2^n` and unit
    /// norm within `1e-6`).
    ///
    /// # Panics
    ///
    /// Panics on length/norm violations.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let len = amps.len();
        assert!(len.is_power_of_two() && len >= 2, "length must be 2^n");
        let n_qubits = len.trailing_zeros() as usize;
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-6, "state not normalized: {norm}");
        Self { n_qubits, amps }
    }

    /// Number of qubits.
    #[inline]
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The amplitudes in basis order.
    #[inline]
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Probability of measuring basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if qubit counts differ.
    pub fn inner(&self, other: &StateVector) -> Complex64 {
        assert_eq!(self.n_qubits, other.n_qubits, "qubit count mismatch");
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// State fidelity `|⟨self|other⟩|²`.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Applies a gate to the listed qubits in place.
    ///
    /// # Panics
    ///
    /// Panics if qubit indices are out of range, repeated, or don't match
    /// the gate arity.
    pub fn apply(&mut self, gate: &Gate, qubits: &[usize]) {
        let k = gate.arity();
        assert_eq!(qubits.len(), k, "qubit list does not match arity");
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.n_qubits, "qubit {q} out of range");
            assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
        }
        let m = gate.unitary_matrix();
        self.apply_matrix(&m, qubits);
    }

    /// Applies an arbitrary `2^k`-dimensional matrix to `k` qubits in place.
    pub fn apply_matrix(&mut self, m: &Matrix, qubits: &[usize]) {
        let k = qubits.len();
        let dk = 1usize << k;
        assert_eq!(m.rows(), dk, "matrix dim mismatch");
        let n = self.n_qubits;
        let shifts: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
        let full_mask = (1usize << n) - 1;
        let mut sel_mask = 0usize;
        for &s in &shifts {
            sel_mask |= 1 << s;
        }
        let rest_mask = full_mask & !sel_mask;

        let mut local = vec![Complex64::ZERO; dk];
        // Iterate over all assignments of the untouched qubits.
        let mut rest = 0usize;
        loop {
            // Gather the 2^k amplitudes for this "rest" assignment.
            for (a, slot) in local.iter_mut().enumerate() {
                let mut idx = rest;
                for (bit, &s) in shifts.iter().enumerate() {
                    if (a >> (k - 1 - bit)) & 1 == 1 {
                        idx |= 1 << s;
                    }
                }
                *slot = self.amps[idx];
            }
            // Multiply by the gate matrix and scatter back.
            for (r, row_out) in (0..dk).map(|r| (r, m.row(r))).map(|(r, row)| {
                let mut acc = Complex64::ZERO;
                for (c, &amp) in local.iter().enumerate() {
                    acc += row[c] * amp;
                }
                (r, acc)
            }) {
                let mut idx = rest;
                for (bit, &s) in shifts.iter().enumerate() {
                    if (r >> (k - 1 - bit)) & 1 == 1 {
                        idx |= 1 << s;
                    }
                }
                self.amps[idx] = row_out;
            }
            // Next subset of rest_mask (standard bit trick).
            if rest == rest_mask {
                break;
            }
            rest = (rest.wrapping_sub(rest_mask)) & rest_mask;
        }
    }

    /// Runs a whole circuit on the state in place.
    ///
    /// # Panics
    ///
    /// Panics if the circuit register is larger than the state.
    pub fn run(&mut self, circuit: &Circuit) {
        assert!(
            circuit.n_qubits() <= self.n_qubits,
            "circuit register exceeds state size"
        );
        for op in circuit.ops() {
            self.apply(&op.gate, &op.qubits);
        }
    }

    /// L2 norm of the state (should always be ~1).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }
}

/// Convenience: runs `circuit` on `|0…0⟩` and returns the final state.
pub fn simulate(circuit: &Circuit) -> StateVector {
    let mut s = StateVector::zero(circuit.n_qubits());
    s.run(circuit);
    s
}

/// `true` when two circuits act identically (up to global phase) on a set of
/// probe states: all computational basis states plus superposition probes.
///
/// A cheap but strong semantic-equality check used heavily by the test
/// suites of the ZX and synthesis crates.
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, tol: f64) -> bool {
    if a.n_qubits() != b.n_qubits() {
        return false;
    }
    let n = a.n_qubits();
    let dim = 1usize << n;
    // Basis probes (phases must agree pairwise, so compare via fidelity of
    // a fixed superposition as well to catch relative-phase errors).
    let mut reference_phase: Option<Complex64> = None;
    for idx in 0..dim.min(8) {
        let mut sa = StateVector::basis(n, idx);
        let mut sb = StateVector::basis(n, idx);
        sa.run(a);
        sb.run(b);
        let ip = sa.inner(&sb);
        if (ip.abs() - 1.0).abs() > tol {
            return false;
        }
        match reference_phase {
            None => reference_phase = Some(ip),
            Some(p) => {
                if (ip - p).abs() > 10.0 * tol {
                    return false;
                }
            }
        }
    }
    // Uniform superposition probe: sensitive to all relative phases at once.
    let amp = c64(1.0 / (dim as f64).sqrt(), 0.0);
    let mut sa = StateVector::from_amplitudes(vec![amp; dim]);
    let mut sb = sa.clone();
    sa.run(a);
    sb.run(b);
    (sa.inner(&sb).abs() - 1.0).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn zero_state_probabilities() {
        let s = StateVector::zero(3);
        assert_eq!(s.probability(0), 1.0);
        assert_eq!(s.probability(5), 0.0);
        assert!((s.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_flips_qubit() {
        let mut s = StateVector::zero(2);
        s.apply(&Gate::X, &[0]);
        // Big-endian: flipping qubit 0 gives |10> = index 2.
        assert!((s.probability(2) - 1.0).abs() < 1e-12);
        s.apply(&Gate::X, &[1]);
        assert!((s.probability(3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_from_circuit() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        let s = simulate(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
        assert!(s.probability(1) < 1e-12);
        assert!(s.probability(2) < 1e-12);
    }

    #[test]
    fn ghz_three_qubits() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::CX, &[1, 2]);
        let s = simulate(&c);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(7) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn statevector_matches_dense_unitary() {
        let mut c = Circuit::new(3);
        c.push(Gate::H, &[0])
            .push(Gate::T, &[1])
            .push(Gate::CX, &[0, 2])
            .push(Gate::RY(0.7), &[1])
            .push(Gate::CCX, &[0, 1, 2])
            .push(Gate::Sx, &[2]);
        let u = c.unitary();
        for idx in 0..8 {
            let mut s = StateVector::basis(3, idx);
            s.run(&c);
            for row in 0..8 {
                assert!(
                    s.amplitudes()[row].approx_eq(u[(row, idx)], 1e-10),
                    "mismatch at col {idx} row {row}"
                );
            }
        }
    }

    #[test]
    fn apply_matrix_on_nonadjacent_qubits() {
        let mut c = Circuit::new(3);
        c.push(Gate::CX, &[0, 2]);
        let mut s = StateVector::basis(3, 0b100);
        s.run(&c);
        // control q0=1 -> target q2 flips: |101>
        assert!((s.probability(0b101) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_and_fidelity() {
        let a = StateVector::basis(2, 1);
        let b = StateVector::basis(2, 1);
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
        let c = StateVector::basis(2, 2);
        assert!(a.fidelity(&c) < 1e-12);
    }

    #[test]
    fn circuits_equivalent_detects_equality() {
        let mut a = Circuit::new(2);
        a.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        // Same circuit with redundant Z·Z inserted.
        let mut b = Circuit::new(2);
        b.push(Gate::H, &[0])
            .push(Gate::Z, &[1])
            .push(Gate::Z, &[1])
            .push(Gate::CX, &[0, 1]);
        assert!(circuits_equivalent(&a, &b, 1e-9));
    }

    #[test]
    fn circuits_equivalent_detects_difference() {
        let mut a = Circuit::new(2);
        a.push(Gate::H, &[0]);
        let mut b = Circuit::new(2);
        b.push(Gate::H, &[1]);
        assert!(!circuits_equivalent(&a, &b, 1e-9));
        // Relative-phase difference: S vs Z on a superposed qubit.
        let mut p = Circuit::new(1);
        p.push(Gate::H, &[0]).push(Gate::S, &[0]);
        let mut q = Circuit::new(1);
        q.push(Gate::H, &[0]).push(Gate::Z, &[0]);
        assert!(!circuits_equivalent(&p, &q, 1e-9));
    }

    #[test]
    fn global_phase_is_ignored() {
        // RZ(θ) and Phase(θ) differ by a global phase only.
        let mut a = Circuit::new(1);
        a.push(Gate::RZ(0.9), &[0]);
        let mut b = Circuit::new(1);
        b.push(Gate::Phase(0.9), &[0]);
        assert!(circuits_equivalent(&a, &b, 1e-9));
    }

    #[test]
    fn norm_preserved_by_long_random_circuit() {
        let mut c = Circuit::new(4);
        for i in 0..40 {
            match i % 4 {
                0 => c.push(Gate::H, &[i % 4]),
                1 => c.push(Gate::RX(0.3 * i as f64), &[(i + 1) % 4]),
                2 => c.push(Gate::CX, &[i % 4, (i + 1) % 4]),
                _ => c.push(Gate::T, &[(i + 2) % 4]),
            };
        }
        let s = simulate(&c);
        assert!((s.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "not normalized")]
    fn from_amplitudes_checks_norm() {
        StateVector::from_amplitudes(vec![Complex64::ONE, Complex64::ONE]);
    }
}

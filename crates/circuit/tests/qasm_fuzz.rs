//! `parse_qasm` must never panic: arbitrary byte soup, mutated programs,
//! and token salad all either parse or return a `ParseQasmError`. This
//! backs the `epocc` contract of a clean nonzero-exit diagnostic on
//! malformed input — a parser panic would surface as a backtrace instead.

use epoc_circuit::parse_qasm;
use std::panic::{catch_unwind, AssertUnwindSafe};

const VALID: &str = "OPENQASM 2.0;\n\
                     include \"qelib1.inc\";\n\
                     qreg q[3];\n\
                     creg c[3];\n\
                     h q[0];\n\
                     cx q[0],q[1];\n\
                     rz(pi/4) q[2];\n\
                     barrier q;\n\
                     measure q -> c;\n";

fn assert_no_panic(source: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let _ = parse_qasm(source);
    }));
    assert!(outcome.is_ok(), "parse_qasm panicked on {source:?}");
}

#[test]
fn parse_qasm_never_panics_on_byte_soup() {
    epoc_rt::check::property("qasm_byte_soup").cases(128).run(|g| {
        let bytes = g.vec(0, 200, |g| g.u64_in(0, 256) as u8);
        assert_no_panic(&String::from_utf8_lossy(&bytes));
    });
}

#[test]
fn parse_qasm_never_panics_on_mutated_programs() {
    epoc_rt::check::property("qasm_mutations").cases(128).run(|g| {
        let mut bytes = VALID.as_bytes().to_vec();
        for _ in 0..g.usize_in(1, 9) {
            match g.usize_in(0, 4) {
                0 => {
                    let i = g.usize_in(0, bytes.len());
                    bytes[i] = g.u64_in(0, 256) as u8;
                }
                1 => {
                    bytes.truncate(g.usize_in(0, bytes.len() + 1));
                    if bytes.is_empty() {
                        bytes.push(b';');
                    }
                }
                2 => {
                    // Splice a random slice of the program over itself:
                    // duplicated headers, torn statements.
                    let a = g.usize_in(0, bytes.len());
                    let b = g.usize_in(0, bytes.len());
                    let (lo, hi) = (a.min(b), a.max(b));
                    let slice = bytes[lo..hi].to_vec();
                    let at = g.usize_in(0, bytes.len());
                    bytes.splice(at..at, slice);
                }
                _ => {
                    const NOISE: &[u8] = b"[](),;-9e.";
                    let i = g.usize_in(0, bytes.len());
                    bytes.insert(i, NOISE[g.usize_in(0, NOISE.len())]);
                }
            }
        }
        assert_no_panic(&String::from_utf8_lossy(&bytes));
    });
}

#[test]
fn parse_qasm_never_panics_on_token_salad() {
    const TOKENS: [&str; 16] = [
        "OPENQASM 2.0",
        "include \"qelib1.inc\"",
        "qreg q[2]",
        "qreg q[99999999999999999999]",
        "creg c[2]",
        "h q[0]",
        "cx q[0],q[1]",
        "cx q[0],q[0]",
        "rz(pi/0) q[0]",
        "u3(1e309,-pi,)",
        "measure q -> c",
        "barrier q",
        "if(c==1) x q[0]",
        "gate foo a { h a; }",
        "h q[17]",
        "x nope[0]",
    ];
    epoc_rt::check::property("qasm_token_salad").cases(128).run(|g| {
        let mut source = String::new();
        for _ in 0..g.usize_in(0, 12) {
            source.push_str(TOKENS[g.usize_in(0, TOKENS.len())]);
            source.push_str(if g.bool() { ";\n" } else { " " });
        }
        assert_no_panic(&source);
    });
}

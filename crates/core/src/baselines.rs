//! The two comparator flows of Table 1.
//!
//! * [`gate_based`] — the traditional workflow: one calibrated pulse per
//!   physical gate.
//! * [`PaqocCompiler`] — the PAQOC-like coarse-grained flow: gate-level
//!   two-qubit pattern blocks, QOC per block, phase-*sensitive* pulse
//!   cache, no ZX and no synthesis.

use crate::config::{Backend, EpocConfig};
use crate::pipeline::{schedule_partition, BackendImpl};
use crate::report::{CompilationReport, StageStats};
use epoc_circuit::Circuit;
use epoc_partition::{paqoc_partition, PaqocConfig};
use epoc_pulse::{gate_based_schedule, GatePulseTables};
use epoc_qoc::{DurationModel, KeyPolicy};
use std::time::Instant;

/// Compiles with the traditional gate-based flow.
pub fn gate_based(circuit: &Circuit) -> CompilationReport {
    gate_based_with(circuit, &GatePulseTables::default())
}

/// Gate-based flow with custom calibration tables.
///
/// The circuit is first transpiled to the hardware basis
/// ([`epoc_circuit::lower_to_basis`]) — exactly what a vendor toolchain
/// does before emitting calibrated pulses — so all flows price the same
/// physical gate stream.
pub fn gate_based_with(circuit: &Circuit, tables: &GatePulseTables) -> CompilationReport {
    let t0 = Instant::now();
    let basis = epoc_circuit::lower_to_basis(circuit);
    let schedule = gate_based_schedule(&basis, tables);
    let stages = StageStats {
        zx_depth_before: circuit.depth(),
        zx_depth_after: circuit.depth(),
        gates_after_zx: circuit.len(),
        pulses: schedule.len(),
        ..StageStats::default()
    };
    CompilationReport {
        flow: "gate-based".into(),
        n_qubits: circuit.n_qubits(),
        gates_in: circuit.len(),
        schedule,
        compile_time: t0.elapsed(),
        stages,
        verified: true, // identity transformation: trivially faithful
        verify_skipped: false,
        hardware: None,
        simulation: None,
    }
}

/// The PAQOC-like comparator.
pub struct PaqocCompiler {
    partition: PaqocConfig,
    backend: BackendImpl,
}

impl PaqocCompiler {
    /// Creates the comparator with the given pulse backend choice.
    ///
    /// The cache policy is forced to phase-sensitive: global-phase-aware
    /// matching is EPOC's contribution, absent from the baseline.
    pub fn new(backend: Backend, duration_model: DurationModel) -> Self {
        let cfg = EpocConfig {
            backend,
            key_policy: KeyPolicy::PhaseSensitive,
            duration_model,
            ..EpocConfig::default()
        };
        Self {
            partition: PaqocConfig::default(),
            backend: BackendImpl::new(&cfg),
        }
    }

    /// Compiles a circuit with the PAQOC-like flow.
    ///
    /// The input is first transpiled to the hardware basis, as the real
    /// PAQOC consumes basis-gate circuits.
    pub fn compile(&self, circuit: &Circuit) -> CompilationReport {
        let t0 = Instant::now();
        let (hits0, misses0) = self.backend.cache_counts();
        let basis = epoc_circuit::lower_to_basis(circuit);
        let circuit = &basis;
        let partition = paqoc_partition(circuit, self.partition);
        // The comparator stays single-threaded: its pulse cost is the
        // baseline number the paper's speedups are quoted against.
        let schedule = schedule_partition(
            &partition,
            &self.backend,
            1,
            None,
            &mut Vec::new(),
            &epoc_rt::cancel::CancelToken::default(),
        )
        .expect("modeled comparator backend cannot fail");
        let (hits1, misses1) = self.backend.cache_counts();
        let stages = StageStats {
            zx_depth_before: circuit.depth(),
            zx_depth_after: circuit.depth(),
            gates_after_zx: circuit.len(),
            synth_blocks: partition.len(),
            pulses: schedule.len(),
            cache_hits: hits1.saturating_sub(hits0),
            cache_misses: misses1.saturating_sub(misses0),
            ..StageStats::default()
        };
        CompilationReport {
            flow: "paqoc".into(),
            n_qubits: circuit.n_qubits(),
            gates_in: circuit.len(),
            schedule,
            compile_time: t0.elapsed(),
            stages,
            verified: true, // partition flattening is gate-identical
            verify_skipped: false,
            hardware: None,
            simulation: None,
        }
    }
}

impl Default for PaqocCompiler {
    fn default() -> Self {
        Self::new(Backend::Modeled, DurationModel::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EpocCompiler;
    use epoc_circuit::generators;

    #[test]
    fn gate_based_latency_matches_tables() {
        let r = gate_based(&generators::ghz(3));
        assert!((r.latency() - 635.5).abs() < 1e-9);
        assert_eq!(r.flow, "gate-based");
    }

    #[test]
    fn paqoc_beats_gate_based() {
        for b in generators::benchmark_suite().iter().take(6) {
            let gate = gate_based(&b.circuit);
            let paqoc = PaqocCompiler::default().compile(&b.circuit);
            assert!(
                paqoc.latency() <= gate.latency() + 1e-9,
                "{}: paqoc {} vs gate {}",
                b.name,
                paqoc.latency(),
                gate.latency()
            );
        }
    }

    #[test]
    fn epoc_beats_paqoc_on_average() {
        let mut epoc_total = 0.0;
        let mut paqoc_total = 0.0;
        let epoc = EpocCompiler::new(crate::EpocConfig::fast());
        let paqoc = PaqocCompiler::default();
        for b in generators::table1_suite() {
            let re = epoc.compile(&b.circuit).unwrap();
            let rp = paqoc.compile(&b.circuit);
            assert!(re.verified || re.verify_skipped, "{} failed verify", b.name);
            epoc_total += re.latency();
            paqoc_total += rp.latency();
        }
        assert!(
            epoc_total < paqoc_total,
            "EPOC {epoc_total} not faster than PAQOC {paqoc_total}"
        );
    }

    #[test]
    fn paqoc_reuses_cache() {
        let paqoc = PaqocCompiler::default();
        let c = generators::ghz(4);
        let r1 = paqoc.compile(&c);
        let r2 = paqoc.compile(&c);
        assert!(r1.stages.cache_misses > 0);
        assert_eq!(r2.stages.cache_misses, 0);
    }
}

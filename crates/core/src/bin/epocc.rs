//! `epocc` — the EPOC command-line compiler.
//!
//! Compiles an OpenQASM 2.0 file (or a named builtin benchmark) down to a
//! pulse schedule and prints the report.
//!
//! ```sh
//! epocc circuit.qasm                # EPOC pipeline (hybrid GRAPE backend)
//! epocc --flow gate-based bench:ghz_n8
//! epocc --flow paqoc --no-zx bench:qaoa_n6
//! epocc --no-regroup circuit.qasm   # the Figures-8/10 "no grouping" arm
//! epocc --timeline circuit.qasm     # print the human-readable pulse timeline
//! epocc --schedule s.json circuit.qasm  # dump the final schedule as JSON
//! epocc --simulate bench:wstate_n3  # pulse-level replay vs the circuit unitary
//! epocc --simulate --shots 8 bench:wstate_n3  # + noisy Monte-Carlo trajectories
//! epocc --grape 0 circuit.qasm      # modeled backend (no GRAPE)
//! epocc --trace t.json bench:ghz_n8 # Chrome trace of the compile
//! epocc --metrics bench:ghz_n8      # counter/histogram dump + stage times
//! epocc --metrics-file m.prom bench:ghz_n8  # Prometheus text exposition
//! ```

use epoc::baselines::{gate_based, PaqocCompiler};
use epoc::sim::{NoiseModel, SimOptions};
use epoc::{simulate_schedule, CompilationReport, EpocCompiler, EpocConfig};
use epoc_circuit::{generators, parse_qasm, Circuit};
use std::process::ExitCode;

/// GRAPE width cap of the default `epoc` flow (`--grape` overrides; 0
/// selects the calibrated duration model instead).
const DEFAULT_GRAPE_LIMIT: usize = 2;

struct Args {
    input: String,
    flow: String,
    zx: bool,
    regroup: bool,
    timeline: bool,
    schedule_out: Option<String>,
    simulate: bool,
    shots: usize,
    sim_check: Option<f64>,
    json: bool,
    trace: Option<String>,
    metrics: bool,
    metrics_file: Option<String>,
    grape_limit: usize,
    strict: bool,
    deadline_ms: Option<u64>,
    budget: Option<String>,
    faults: Option<String>,
    fault_seed: Option<u64>,
    library: Option<String>,
    library_budget: Option<u64>,
    hw: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: epocc [--flow epoc|gate-based|paqoc] [--no-zx] [--no-regroup] \
         [--grape N] [--timeline] [--schedule FILE] [--simulate] [--shots N] \
         [--sim-check F] [--json] [--trace FILE] [--metrics] [--metrics-file FILE] [--strict] \
         [--deadline-ms N] [--budget SPEC] [--faults SPEC] [--fault-seed N] \
         [--library FILE] [--library-budget BYTES] [--hw PROFILE] \
         <file.qasm | bench:NAME>\n\
         --grape N      GRAPE width cap for the epoc flow (default {DEFAULT_GRAPE_LIMIT}; 0 = modeled)\n\
         --timeline     print the human-readable pulse timeline\n\
         --schedule FILE dump the final pulse schedule as JSON to FILE\n\
         --simulate     replay the schedule at pulse level vs the circuit unitary\n\
         --shots N      add N noisy Monte-Carlo trajectories (implies --simulate)\n\
         --sim-check F  fail unless simulated process fidelity >= F (implies --simulate)\n\
         --trace FILE   write a Chrome trace-event JSON of the compile to FILE\n\
         --metrics      print telemetry counters, histograms, and stage times\n\
         --metrics-file FILE write the Prometheus text exposition to FILE\n\
         --strict       fail the compile when the recovery ladder is exhausted\n\
         --deadline-ms N fail typed unless the compile finishes within N ms (epoc flow only)\n\
         --budget SPEC  deterministic per-block work caps, e.g. 'grape_iters=100,qsearch_nodes=500';\n\
         \x20              exhaustion degrades via the recovery ladder, byte-identically at any worker count\n\
         --faults SPEC  arm fault injection, e.g. 'grape.converge=always,pulse_lib.miss=p0.5'\n\
         --fault-seed N seed for probabilistic fault triggers\n\
         --library FILE warm-start the pulse library from FILE and save it back after the compile\n\
         --library-budget BYTES cap the in-memory pulse library (LRU eviction; epoc flow only)\n\
         --hw PROFILE   compile under a control-electronics model (epoc flow only);\n\
         \x20              profiles: {}\n\
         builtin benchmarks: {}",
        epoc::hw::PROFILE_NAMES.join(", "),
        generators::benchmark_suite()
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

/// The value of a `--flag VALUE` pair, failing with a targeted message
/// (not the generic usage dump) when the value is missing.
fn flag_value(iter: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    match iter.next() {
        Some(v) if !v.starts_with('-') => v,
        _ => {
            eprintln!("error: {flag} requires {what}");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        flow: "epoc".into(),
        zx: true,
        regroup: true,
        timeline: false,
        schedule_out: None,
        simulate: false,
        shots: 0,
        sim_check: None,
        json: false,
        trace: None,
        metrics: false,
        metrics_file: None,
        grape_limit: DEFAULT_GRAPE_LIMIT,
        strict: false,
        deadline_ms: None,
        budget: None,
        faults: None,
        fault_seed: None,
        library: None,
        library_budget: None,
        hw: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--flow" => args.flow = flag_value(&mut iter, "--flow", "a flow name"),
            "--no-zx" => args.zx = false,
            "--no-regroup" => args.regroup = false,
            "--timeline" => args.timeline = true,
            "--schedule" => {
                args.schedule_out = Some(flag_value(&mut iter, "--schedule", "a path"))
            }
            "--simulate" => args.simulate = true,
            "--shots" => {
                let v = flag_value(&mut iter, "--shots", "a trajectory count");
                args.shots = match v.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("error: --shots expects a non-negative integer, got '{v}'");
                        std::process::exit(2);
                    }
                };
                args.simulate = true;
            }
            "--sim-check" => {
                let v = flag_value(&mut iter, "--sim-check", "a fidelity threshold");
                args.sim_check = match v.parse() {
                    Ok(f) => Some(f),
                    Err(_) => {
                        eprintln!("error: --sim-check expects a fidelity in [0, 1], got '{v}'");
                        std::process::exit(2);
                    }
                };
                args.simulate = true;
            }
            "--json" => args.json = true,
            "--trace" => args.trace = Some(flag_value(&mut iter, "--trace", "a path")),
            "--metrics" => args.metrics = true,
            "--metrics-file" => {
                args.metrics_file = Some(flag_value(&mut iter, "--metrics-file", "a path"))
            }
            "--grape" => {
                let v = flag_value(&mut iter, "--grape", "a qubit count");
                args.grape_limit = match v.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("error: --grape expects a non-negative integer, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--strict" => args.strict = true,
            "--deadline-ms" => {
                let v = flag_value(&mut iter, "--deadline-ms", "a millisecond count");
                args.deadline_ms = match v.parse() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("error: --deadline-ms expects a non-negative integer, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--budget" => args.budget = Some(flag_value(&mut iter, "--budget", "a budget spec")),
            "--library" => args.library = Some(flag_value(&mut iter, "--library", "a path")),
            "--library-budget" => {
                let v = flag_value(&mut iter, "--library-budget", "a byte count");
                args.library_budget = match v.parse() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("error: --library-budget expects a byte count, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--hw" => args.hw = Some(flag_value(&mut iter, "--hw", "a profile name")),
            "--faults" => args.faults = Some(flag_value(&mut iter, "--faults", "a fault spec")),
            "--fault-seed" => {
                let v = flag_value(&mut iter, "--fault-seed", "a seed");
                args.fault_seed = match v.parse() {
                    Ok(n) => Some(n),
                    Err(_) => {
                        eprintln!("error: --fault-seed expects a non-negative integer, got '{v}'");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => args.input = other.to_string(),
        }
    }
    if args.input.is_empty() {
        usage();
    }
    args
}

fn load_circuit(input: &str) -> Result<Circuit, String> {
    if let Some(name) = input.strip_prefix("bench:") {
        return generators::benchmark_suite()
            .into_iter()
            .find(|b| b.name == name)
            .map(|b| b.circuit)
            .ok_or_else(|| format!("unknown builtin benchmark '{name}'"));
    }
    let source =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    parse_qasm(&source).map_err(|e| e.to_string())
}

fn print_schedule(report: &CompilationReport) {
    println!("\npulse timeline ({} pulses):", report.schedule.len());
    for p in report.schedule.pulses() {
        println!(
            "  t={:>9.1}..{:>9.1} ns  q{:?}  {} (f={:.4})",
            p.start,
            p.end(),
            p.qubits,
            p.label,
            p.fidelity
        );
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    // Validate the flow before doing any work, so a typo'd --flow fails
    // fast with no partial output.
    if !matches!(args.flow.as_str(), "epoc" | "gate-based" | "paqoc") {
        eprintln!("error: unknown flow '{}'", args.flow);
        return ExitCode::FAILURE;
    }
    let circuit = match load_circuit(&args.input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.json {
        println!(
            "input: {} qubits, {} gates, depth {}",
            circuit.n_qubits(),
            circuit.len(),
            circuit.depth()
        );
    }
    if args.trace.is_some() || args.metrics || args.metrics_file.is_some() {
        epoc_rt::telemetry::enable();
    }
    if let Some(spec) = &args.faults {
        if let Some(seed) = args.fault_seed {
            epoc_rt::faults::set_seed(seed);
        }
        if let Err(e) = epoc_rt::faults::arm_from_spec(spec) {
            eprintln!("error: bad --faults spec: {e}");
            return ExitCode::from(2);
        }
    }
    let mut report = match args.flow.as_str() {
        "epoc" => {
            let base = if args.grape_limit == 0 {
                EpocConfig::default()
            } else {
                EpocConfig::with_grape(args.grape_limit)
            };
            let mut config = EpocConfig { zx: args.zx, ..base };
            config.recovery.strict = args.strict;
            if let Some(budget) = args.library_budget {
                config.store = epoc::StoreConfig { shards: 1, budget_bytes: Some(budget) };
            }
            if !args.regroup {
                config = config.without_regrouping();
            }
            if let Some(name) = &args.hw {
                match epoc::hw::HardwareProfile::by_name(name) {
                    Some(profile) => config = config.with_hw(profile),
                    None => {
                        eprintln!(
                            "error: unknown hardware profile '{name}' (profiles: {})",
                            epoc::hw::PROFILE_NAMES.join(", ")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            let compiler = EpocCompiler::new(config);
            if let Some(path) = &args.library {
                let path = std::path::Path::new(path);
                if path.exists() {
                    // A bad library never fails the compile — report the
                    // typed error and start cold (recomputing is safe).
                    match compiler.load_library(path) {
                        Ok(n) if !args.json => eprintln!("library: warm-started {n} pulses"),
                        Ok(_) => {}
                        Err(e) => eprintln!("warning: {e}; starting with a cold cache"),
                    }
                }
            }
            // Deadline and work budgets ride one cancellation token:
            // a blown deadline fails typed below; budget exhaustion
            // degrades deterministically via the recovery ladder.
            let mut cancel = epoc_rt::cancel::CancelToken::default();
            if let Some(spec) = &args.budget {
                match epoc_rt::cancel::Budget::parse_spec(spec) {
                    Ok(b) => cancel = cancel.with_budget(b),
                    Err(e) => {
                        eprintln!("error: bad --budget spec: {e}");
                        return ExitCode::from(2);
                    }
                }
            }
            if let Some(ms) = args.deadline_ms {
                cancel = cancel.with_deadline_ms(ms);
            }
            let r = match compiler.compile_with_cancel(&circuit, &cancel) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: compilation failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Some(path) = &args.library {
                if let Err(e) = compiler.save_library(std::path::Path::new(path)) {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
            r
        }
        "gate-based" => gate_based(&circuit),
        "paqoc" => PaqocCompiler::default().compile(&circuit),
        _ => unreachable!("flow validated at startup"),
    };
    if args.simulate {
        // Noiseless trajectories carry no information beyond the
        // propagator pass, so shots default to the standard noise model.
        let opts = SimOptions {
            shots: args.shots,
            noise: if args.shots > 0 {
                NoiseModel::standard()
            } else {
                NoiseModel::noiseless()
            },
            ..SimOptions::default()
        };
        match simulate_schedule(&circuit, &report.schedule, &opts) {
            Ok(stats) => report.simulation = Some(stats),
            Err(e) => {
                eprintln!("error: simulation failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &args.schedule_out {
        let dump = report.schedule.to_json_value().to_string_pretty();
        if let Err(e) = std::fs::write(path, dump) {
            eprintln!("error: cannot write schedule to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.json {
            println!("schedule written to {path}");
        }
    }
    if let Some(threshold) = args.sim_check {
        let fid = report
            .simulation
            .as_ref()
            .expect("--sim-check implies --simulate")
            .outcome
            .process_fidelity;
        if fid < threshold {
            eprintln!("error: simulated process fidelity {fid:.6} < required {threshold:.6}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.trace {
        let trace = epoc_rt::telemetry::chrome_trace().to_string_pretty();
        if let Err(e) = std::fs::write(path, trace) {
            eprintln!("error: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.json {
            println!("trace written to {path}");
        }
    }
    if args.metrics {
        eprintln!("{}", epoc_rt::telemetry::metrics_text());
        eprintln!("{}", report.stages.to_text());
    }
    if let Some(path) = &args.metrics_file {
        let text = epoc_rt::telemetry::prometheus_text();
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !args.json {
            println!("metrics written to {path}");
        }
    }
    if args.json {
        println!("{}", report.to_json());
        return if report.verified || report.verify_skipped {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!("{}", report.summary());
    if let Some(hw) = &report.hardware {
        println!(
            "hardware: {} ({} conditioned pulse{}{})",
            hw.profile,
            hw.conditioned_pulses,
            if hw.conditioned_pulses == 1 { "" } else { "s" },
            if hw.sfq { ", sfq bitstream drive" } else { "" },
        );
    }
    if let Some(sim) = &report.simulation {
        println!("{}", sim.summary());
    }
    if report.verify_skipped {
        println!("verification: skipped (register too wide)");
    } else if report.verified {
        println!("verification: PASSED");
    } else {
        println!("verification: FAILED");
        return ExitCode::FAILURE;
    }
    if args.timeline {
        print_schedule(&report);
    }
    ExitCode::SUCCESS
}

//! `epocc` — the EPOC command-line compiler.
//!
//! Compiles an OpenQASM 2.0 file (or a named builtin benchmark) down to a
//! pulse schedule and prints the report.
//!
//! ```sh
//! epocc circuit.qasm                # EPOC pipeline (default config)
//! epocc --flow gate-based bench:ghz_n8
//! epocc --flow paqoc --no-zx bench:qaoa_n6
//! epocc --no-regroup circuit.qasm   # the Figures-8/10 "no grouping" arm
//! epocc --schedule circuit.qasm     # dump the pulse timeline
//! ```

use epoc::baselines::{gate_based, PaqocCompiler};
use epoc::{CompilationReport, EpocCompiler, EpocConfig};
use epoc_circuit::{generators, parse_qasm, Circuit};
use std::process::ExitCode;

struct Args {
    input: String,
    flow: String,
    zx: bool,
    regroup: bool,
    show_schedule: bool,
    json: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: epocc [--flow epoc|gate-based|paqoc] [--no-zx] [--no-regroup] \
         [--schedule] [--json] <file.qasm | bench:NAME>\n\
         builtin benchmarks: {}",
        generators::benchmark_suite()
            .iter()
            .map(|b| b.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        input: String::new(),
        flow: "epoc".into(),
        zx: true,
        regroup: true,
        show_schedule: false,
        json: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--flow" => args.flow = iter.next().unwrap_or_else(|| usage()),
            "--no-zx" => args.zx = false,
            "--no-regroup" => args.regroup = false,
            "--schedule" => args.show_schedule = true,
            "--json" => args.json = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => args.input = other.to_string(),
        }
    }
    if args.input.is_empty() {
        usage();
    }
    args
}

fn load_circuit(input: &str) -> Result<Circuit, String> {
    if let Some(name) = input.strip_prefix("bench:") {
        return generators::benchmark_suite()
            .into_iter()
            .find(|b| b.name == name)
            .map(|b| b.circuit)
            .ok_or_else(|| format!("unknown builtin benchmark '{name}'"));
    }
    let source =
        std::fs::read_to_string(input).map_err(|e| format!("cannot read {input}: {e}"))?;
    parse_qasm(&source).map_err(|e| e.to_string())
}

fn print_schedule(report: &CompilationReport) {
    println!("\npulse timeline ({} pulses):", report.schedule.len());
    for p in report.schedule.pulses() {
        println!(
            "  t={:>9.1}..{:>9.1} ns  q{:?}  {} (f={:.4})",
            p.start,
            p.end(),
            p.qubits,
            p.label,
            p.fidelity
        );
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    // Validate the flow before doing any work, so a typo'd --flow fails
    // fast with no partial output.
    if !matches!(args.flow.as_str(), "epoc" | "gate-based" | "paqoc") {
        eprintln!("error: unknown flow '{}'", args.flow);
        return ExitCode::FAILURE;
    }
    let circuit = match load_circuit(&args.input) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !args.json {
        println!(
            "input: {} qubits, {} gates, depth {}",
            circuit.n_qubits(),
            circuit.len(),
            circuit.depth()
        );
    }
    let report = match args.flow.as_str() {
        "epoc" => {
            let mut config = EpocConfig {
                zx: args.zx,
                ..EpocConfig::default()
            };
            if !args.regroup {
                config = config.without_regrouping();
            }
            EpocCompiler::new(config).compile(&circuit)
        }
        "gate-based" => gate_based(&circuit),
        "paqoc" => PaqocCompiler::default().compile(&circuit),
        _ => unreachable!("flow validated at startup"),
    };
    if args.json {
        println!("{}", report.to_json());
        return if report.verified || report.verify_skipped {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    println!("{}", report.summary());
    if report.verify_skipped {
        println!("verification: skipped (register too wide)");
    } else if report.verified {
        println!("verification: PASSED");
    } else {
        println!("verification: FAILED");
        return ExitCode::FAILURE;
    }
    if args.show_schedule {
        print_schedule(&report);
    }
    ExitCode::SUCCESS
}

//! `epocd` — the persistent-pulse-library compilation service.
//!
//! A long-running server wrapping one [`EpocCompiler`]: compile jobs
//! arrive as line-delimited JSON (on stdin by default, or over a Unix
//! socket with `--socket`), and each answer is one compact line carrying
//! the full `CompilationReport`. The pulse library persists across jobs —
//! and, via `--library FILE`, across restarts — so recurring blocks cost
//! a cache lookup instead of a GRAPE run (the amortization EPOC's §3.4
//! phase-aware library is built for).
//!
//! ```sh
//! printf '%s\n' '{"id":1,"bench":"ghz_n4"}' '{"id":2,"bench":"ghz_n4"}' \
//!   | epocd --grape 1 --library pulses.json
//! ```
//!
//! ## Protocol
//!
//! Requests, one JSON object per line:
//!
//! * `{"id":1,"qasm":"OPENQASM 2.0; ..."}` — compile a QASM program
//!   (newlines escaped as `\n`);
//! * `{"id":2,"bench":"ghz_n4"}` — compile a builtin benchmark;
//! * `{"cmd":"checkpoint"}` — persist the library now;
//! * `{"cmd":"stats"}` — report service counters, gauges, latency
//!   percentiles, and per-job counter summaries;
//! * `{"cmd":"metrics"}` — return the full Prometheus text exposition
//!   (as one JSON string field, since the protocol is line-delimited);
//! * `{"cmd":"shutdown"}` — checkpoint and exit.
//!
//! Responses, one compact JSON line each:
//!
//! * `{"id":1,"ok":true,"report":{...}}` on success;
//! * `{"id":1,"ok":false,"error":"..."}` on failure (the service keeps
//!   running — one bad job never takes the library down);
//! * `{"ok":true,"stats":{...}}` / `{"ok":true,"checkpoint":{...}}` /
//!   `{"ok":true,"metrics":"..."}` for commands.
//!
//! ## Observability
//!
//! The daemon runs with telemetry *enabled* but span capture *off*:
//! counters, gauges, and histograms are cheap and bounded, while the
//! per-span event list would grow without limit in a long-lived process.
//! Each accepted compile job gets a monotone job id (1, 2, …) carried by
//! a [`epoc_rt::telemetry::TelemetryScope`] through the worker pool, so
//! per-job counters and the structured log stay attributable. `--log
//! FILE` appends JSONL events (job admission/completion, batch
//! boundaries, recovery-rung climbs, evictions, checkpoint outcomes) —
//! one JSON object per line with `ts_ns`, `level`, `event`, and `job`
//! fields. None of this touches the report path: reports stay
//! byte-identical with telemetry on or off, at any worker count.
//!
//! ## Queueing and determinism
//!
//! A reader thread queues incoming lines on a channel; the compile loop
//! drains them in arrival batches. Jobs *compile* strictly in arrival
//! order — each compile fans its blocks out across the `epoc_rt` worker
//! pool internally, and the pipeline's peek/claim/compute/replay scheme
//! already guarantees byte-identical reports at any worker count — so a
//! fixed job sequence produces a byte-identical response stream (modulo
//! wall-clock timings) whatever `--workers` says. Checkpoints are
//! amortized per batch, not per job.

use epoc::{CompilationReport, EpocCompiler, EpocConfig, StoreConfig};
use epoc_circuit::{generators, parse_qasm, Circuit};
use epoc_rt::json::Json;
use epoc_rt::telemetry::{self, LogLevel, TelemetryScope};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;

/// Default GRAPE width cap (same as `epocc`).
const DEFAULT_GRAPE_LIMIT: usize = 2;
/// Default shard count for the service's pulse library: enough to keep
/// callers off one lock without fragmenting a byte budget.
const DEFAULT_SHARDS: usize = 8;

struct Args {
    library: Option<PathBuf>,
    library_budget: Option<u64>,
    shards: usize,
    grape_limit: usize,
    workers: Option<usize>,
    regroup: bool,
    checkpoint_every: usize,
    socket: Option<PathBuf>,
    log: Option<PathBuf>,
    faults: Option<String>,
    fault_seed: Option<u64>,
    hw: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: epocd [--library FILE] [--library-budget BYTES] [--shards N] \
         [--grape N] [--workers N] [--no-regroup] [--checkpoint-every N] \
         [--socket PATH] [--log FILE] [--faults SPEC] [--fault-seed N] [--hw PROFILE]\n\
         --library FILE     load the pulse library from FILE on start, save on checkpoint/shutdown\n\
         --library-budget BYTES cap the in-memory library (LRU eviction)\n\
         --shards N         library shard count (default {DEFAULT_SHARDS})\n\
         --grape N          GRAPE width cap (default {DEFAULT_GRAPE_LIMIT}; 0 = modeled backend)\n\
         --workers N        worker-pool size for each compile\n\
         --no-regroup       disable regrouping (per-gate pulses)\n\
         --checkpoint-every N also persist the library every N completed jobs\n\
         --socket PATH      serve a Unix socket instead of stdin/stdout\n\
         --log FILE         write a structured JSONL event log to FILE\n\
         --faults SPEC      arm fault injection (e.g. 'pulse_lib.persist=always')\n\
         --fault-seed N     seed for probabilistic fault triggers\n\
         --hw PROFILE       compile every job under a control-electronics model\n\
         \x20                  (profiles: {}); jobs may pin the same profile with an\n\
         \x20                  'hw' field — a mismatch fails that job, not the daemon",
        epoc::hw::PROFILE_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn flag_value(iter: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    match iter.next() {
        Some(v) if !v.starts_with('-') => v,
        _ => {
            eprintln!("error: {flag} requires {what}");
            std::process::exit(2);
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        library: None,
        library_budget: None,
        shards: DEFAULT_SHARDS,
        grape_limit: DEFAULT_GRAPE_LIMIT,
        workers: None,
        regroup: true,
        checkpoint_every: 0,
        socket: None,
        log: None,
        faults: None,
        fault_seed: None,
        hw: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--library" => {
                args.library = Some(flag_value(&mut iter, "--library", "a path").into())
            }
            "--library-budget" => {
                let v = flag_value(&mut iter, "--library-budget", "a byte count");
                args.library_budget = Some(parse_num("--library-budget", &v));
            }
            "--shards" => {
                let v = flag_value(&mut iter, "--shards", "a shard count");
                args.shards = parse_num("--shards", &v);
            }
            "--grape" => {
                let v = flag_value(&mut iter, "--grape", "a qubit count");
                args.grape_limit = parse_num("--grape", &v);
            }
            "--workers" => {
                let v = flag_value(&mut iter, "--workers", "a worker count");
                args.workers = Some(parse_num("--workers", &v));
            }
            "--no-regroup" => args.regroup = false,
            "--checkpoint-every" => {
                let v = flag_value(&mut iter, "--checkpoint-every", "a job count");
                args.checkpoint_every = parse_num("--checkpoint-every", &v);
            }
            "--socket" => {
                args.socket = Some(flag_value(&mut iter, "--socket", "a path").into())
            }
            "--log" => args.log = Some(flag_value(&mut iter, "--log", "a path").into()),
            "--hw" => args.hw = Some(flag_value(&mut iter, "--hw", "a profile name")),
            "--faults" => args.faults = Some(flag_value(&mut iter, "--faults", "a fault spec")),
            "--fault-seed" => {
                let v = flag_value(&mut iter, "--fault-seed", "a seed");
                args.fault_seed = Some(parse_num("--fault-seed", &v));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// The service state: the (cache-bearing) compiler plus checkpoint
/// bookkeeping.
struct Service {
    compiler: EpocCompiler,
    library: Option<PathBuf>,
    checkpoint_every: usize,
    jobs_done: usize,
    jobs_failed: usize,
    batches: usize,
    jobs_since_checkpoint: usize,
    /// Monotone correlation id handed to each accepted compile job (1,
    /// 2, …) — deterministic for a fixed request sequence, unlike the
    /// caller-chosen `id` field (which is echoed in responses and logged
    /// as `request_id`).
    job_seq: u64,
}

impl Service {
    fn new(args: &Args) -> Self {
        let base = if args.grape_limit == 0 {
            EpocConfig::default()
        } else {
            EpocConfig::with_grape(args.grape_limit)
        };
        let mut config = base.with_store(StoreConfig {
            shards: args.shards,
            budget_bytes: args.library_budget,
        });
        if let Some(w) = args.workers {
            config = config.with_workers(w);
        }
        if !args.regroup {
            config = config.without_regrouping();
        }
        if let Some(name) = &args.hw {
            match epoc::hw::HardwareProfile::by_name(name) {
                Some(profile) => config = config.with_hw(profile),
                None => {
                    eprintln!(
                        "error: unknown hardware profile '{name}' (profiles: {})",
                        epoc::hw::PROFILE_NAMES.join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        let compiler = EpocCompiler::new(config);
        if let Some(path) = &args.library {
            if path.exists() {
                match compiler.load_library(path) {
                    Ok(n) => eprintln!("epocd: warm-started {n} pulses from {}", path.display()),
                    // A torn or corrupt library is recoverable: report the
                    // typed error, compile cold, and overwrite it at the
                    // next checkpoint.
                    Err(e) => eprintln!("epocd: warning: {e}; starting with a cold cache"),
                }
            }
        }
        Self {
            compiler,
            library: args.library.clone(),
            checkpoint_every: args.checkpoint_every,
            jobs_done: 0,
            jobs_failed: 0,
            batches: 0,
            jobs_since_checkpoint: 0,
            job_seq: 0,
        }
    }

    fn load_circuit(&self, req: &Json) -> Result<Circuit, String> {
        if let Some(name) = req.get("bench").and_then(Json::as_str) {
            return generators::benchmark_suite()
                .into_iter()
                .find(|b| b.name == name)
                .map(|b| b.circuit)
                .ok_or_else(|| format!("unknown builtin benchmark '{name}'"));
        }
        if let Some(src) = req.get("qasm").and_then(Json::as_str) {
            return parse_qasm(src).map_err(|e| e.to_string());
        }
        Err("job needs a 'qasm' or 'bench' field".into())
    }

    fn compile(&mut self, req: &Json) -> Result<CompilationReport, String> {
        // A job may pin the hardware profile it expects. The daemon runs
        // one compiler with one profile-scoped library, so a mismatch
        // fails that job (the client should target a matching daemon)
        // rather than silently compiling under different electronics.
        if let Some(want) = req.get("hw").and_then(Json::as_str) {
            let have = self.compiler.config().hw.as_ref().map_or("ideal", |p| p.name.as_str());
            if want != have {
                return Err(format!(
                    "job pins hardware profile '{want}' but this daemon compiles under '{have}'"
                ));
            }
        }
        let circuit = self.load_circuit(req)?;
        self.compiler.compile(&circuit).map_err(|e| e.to_string())
    }

    /// Persists the library (when one is configured), returning the
    /// response line.
    fn checkpoint(&mut self) -> Json {
        let Some(path) = &self.library else {
            return Json::obj()
                .push("ok", false)
                .push("error", "no --library configured");
        };
        match self.compiler.save_library(path) {
            Ok(()) => {
                self.jobs_since_checkpoint = 0;
                telemetry::counter_add("epocd.checkpoints", 1);
                telemetry::log_event(
                    LogLevel::Info,
                    "checkpoint.saved",
                    Json::obj()
                        .push("path", path.display().to_string())
                        .push("entries", self.compiler.library_len()),
                );
                Json::obj().push("ok", true).push(
                    "checkpoint",
                    Json::obj()
                        .push("path", path.display().to_string())
                        .push("entries", self.compiler.library_len()),
                )
            }
            Err(e) => {
                telemetry::log_event(
                    LogLevel::Error,
                    "checkpoint.failed",
                    Json::obj().push("error", e.to_string()),
                );
                Json::obj().push("ok", false).push("error", e.to_string())
            }
        }
    }

    fn stats(&self) -> Json {
        let mut gauges = Json::obj();
        for (name, value) in telemetry::gauges_snapshot() {
            gauges = gauges.push(&name, value);
        }
        let mut percentiles = Json::obj();
        for (name, h) in telemetry::histograms_snapshot() {
            percentiles = percentiles.push(
                &name,
                Json::obj()
                    .push("p50", h.percentile(0.50))
                    .push("p95", h.percentile(0.95))
                    .push("p99", h.percentile(0.99))
                    .push("count", h.count),
            );
        }
        // Per-job counter summaries: the snapshot is sorted by (job,
        // name), so one forward pass groups it.
        let mut jobs_by_id = Json::obj();
        let mut it = telemetry::job_counters_snapshot().into_iter().peekable();
        while let Some((job, name, value)) = it.next() {
            let mut obj = Json::obj().push(&name, value);
            while it.peek().is_some_and(|(j, _, _)| *j == job) {
                let (_, n, v) = it.next().expect("peeked");
                obj = obj.push(&n, v);
            }
            jobs_by_id = jobs_by_id.push(&job.to_string(), obj);
        }
        Json::obj().push("ok", true).push(
            "stats",
            Json::obj()
                .push("jobs", self.jobs_done)
                .push("failed", self.jobs_failed)
                .push("batches", self.batches)
                .push("cache_hits", self.compiler.cache_hits())
                .push("cache_misses", self.compiler.cache_misses())
                .push("library_entries", self.compiler.library_len())
                .push("library_evictions", self.compiler.library_evictions())
                .push("library_bytes", self.compiler.library_bytes())
                .push("gauges", gauges)
                .push("percentiles", percentiles)
                .push("jobs_by_id", jobs_by_id),
        )
    }

    /// Handles one request line, returning `(response, shutdown)`.
    fn handle(&mut self, line: &str) -> (Json, bool) {
        let req = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => {
                return (
                    Json::obj()
                        .push("ok", false)
                        .push("error", format!("unparseable request: {e}")),
                    false,
                )
            }
        };
        if let Some(cmd) = req.get("cmd").and_then(Json::as_str) {
            return match cmd {
                "checkpoint" => (self.checkpoint(), false),
                "stats" => (self.stats(), false),
                "metrics" => (
                    Json::obj()
                        .push("ok", true)
                        .push("metrics", telemetry::prometheus_text()),
                    false,
                ),
                "shutdown" => {
                    let resp = if self.library.is_some() {
                        self.checkpoint()
                    } else {
                        Json::obj().push("ok", true)
                    };
                    (resp, true)
                }
                other => (
                    Json::obj()
                        .push("ok", false)
                        .push("error", format!("unknown command '{other}'")),
                    false,
                ),
            };
        }
        let mut resp = Json::obj();
        if let Some(id) = req.get("id") {
            resp = resp.push("id", id.clone());
        }
        // Every compile job gets a fresh monotone correlation id; the
        // scope carries it into counters, spans, log lines, and (via the
        // worker pool) every thread the compile fans out to.
        self.job_seq += 1;
        let job = self.job_seq;
        let _scope = TelemetryScope::enter(job);
        let source = if req.get("bench").is_some() {
            "bench"
        } else if req.get("qasm").is_some() {
            "qasm"
        } else {
            "invalid"
        };
        let mut admitted = Json::obj().push("source", source);
        if let Some(id) = req.get("id") {
            admitted = admitted.push("request_id", id.clone());
        }
        telemetry::log_event(LogLevel::Info, "job.admitted", admitted);
        telemetry::gauge_add("epocd.inflight_jobs", 1);
        let evictions_before = self.compiler.library_evictions();
        let started = std::time::Instant::now();
        let outcome = self.compile(&req);
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry::gauge_add("epocd.inflight_jobs", -1);
        telemetry::counter_add("epocd.jobs", 1);
        telemetry::counter_add("epocd.job_ns", elapsed_ns);
        telemetry::histogram_record("epocd.job_latency_ns", elapsed_ns);
        let evicted = self
            .compiler
            .library_evictions()
            .saturating_sub(evictions_before);
        if evicted > 0 {
            telemetry::log_event(
                LogLevel::Warn,
                "library.evicted",
                Json::obj().push("entries", evicted),
            );
        }
        match outcome {
            Ok(report) => {
                for rec in &report.stages.recoveries {
                    telemetry::log_event(LogLevel::Warn, "recovery.rung", rec.to_json_value());
                }
                telemetry::log_event(
                    LogLevel::Info,
                    "job.done",
                    report.log_summary().push("elapsed_ns", elapsed_ns),
                );
                self.jobs_done += 1;
                self.jobs_since_checkpoint += 1;
                (
                    resp.push("ok", report.verified || report.verify_skipped)
                        .push("report", report.to_json_value()),
                    false,
                )
            }
            Err(e) => {
                telemetry::counter_add("epocd.jobs_failed", 1);
                telemetry::log_event(
                    LogLevel::Error,
                    "job.failed",
                    Json::obj().push("error", e.as_str()),
                );
                self.jobs_failed += 1;
                (resp.push("ok", false).push("error", e), false)
            }
        }
    }

    /// End-of-batch hook: persist when the per-batch job quota is met.
    fn maybe_checkpoint(&mut self) {
        if self.library.is_some()
            && self.checkpoint_every > 0
            && self.jobs_since_checkpoint >= self.checkpoint_every
        {
            self.checkpoint();
        }
    }

    /// Final checkpoint on EOF/shutdown.
    fn finish(&mut self) {
        if self.library.is_some() && self.jobs_since_checkpoint > 0 {
            self.checkpoint();
        }
    }
}

/// Serves line-delimited requests from stdin, answering on stdout.
fn serve_stdin(mut service: Service) -> ExitCode {
    // The reader thread queues lines as they arrive; the compile loop
    // drains whatever is pending into one batch, so checkpointing (and
    // any other per-batch cost) amortizes over bursts.
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in std::io::stdin().lock().lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let stdout = std::io::stdout();
    'outer: while let Ok(first) = rx.recv() {
        let mut batch = vec![first];
        while let Ok(next) = rx.try_recv() {
            batch.push(next);
        }
        service.batches += 1;
        telemetry::counter_add("epocd.batches", 1);
        telemetry::log_event(
            LogLevel::Info,
            "batch.begin",
            Json::obj().push("size", batch.len()),
        );
        for (i, line) in batch.iter().enumerate() {
            // Requests already queued behind this one.
            telemetry::gauge_set("epocd.queue_depth", (batch.len() - i - 1) as i64);
            if line.trim().is_empty() {
                continue;
            }
            let (resp, shutdown) = service.handle(line);
            let mut out = stdout.lock();
            let _ = writeln!(out, "{}", resp.to_string_compact());
            let _ = out.flush();
            if shutdown {
                break 'outer;
            }
        }
        telemetry::log_event(
            LogLevel::Info,
            "batch.end",
            Json::obj().push("size", batch.len()),
        );
        service.maybe_checkpoint();
    }
    service.finish();
    ExitCode::SUCCESS
}

/// Serves line-delimited requests over a Unix socket, one connection at a
/// time (responses go back on the same connection).
#[cfg(unix)]
fn serve_socket(mut service: Service, path: &std::path::Path) -> ExitCode {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("epocd: listening on {}", path.display());
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let reader = std::io::BufReader::new(stream);
        let mut shutdown = false;
        let mut jobs_in_connection = 0usize;
        telemetry::log_event(LogLevel::Info, "connection.accepted", Json::obj());
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if line.trim().is_empty() {
                continue;
            }
            let (resp, stop) = service.handle(&line);
            jobs_in_connection += 1;
            if writeln!(writer, "{}", resp.to_string_compact()).is_err() {
                break;
            }
            let _ = writer.flush();
            if stop {
                shutdown = true;
                break;
            }
        }
        // A connection is a natural batch boundary.
        if jobs_in_connection > 0 {
            service.batches += 1;
            telemetry::counter_add("epocd.batches", 1);
            telemetry::log_event(
                LogLevel::Info,
                "batch.end",
                Json::obj().push("size", jobs_in_connection),
            );
            service.maybe_checkpoint();
        }
        if shutdown {
            break;
        }
    }
    service.finish();
    let _ = std::fs::remove_file(path);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(spec) = &args.faults {
        if let Some(seed) = args.fault_seed {
            epoc_rt::faults::set_seed(seed);
        }
        if let Err(e) = epoc_rt::faults::arm_from_spec(spec) {
            eprintln!("error: bad --faults spec: {e}");
            return ExitCode::from(2);
        }
    }
    // Metrics stay live for the whole daemon lifetime, but span events
    // are a bounded-run tool: capture is off so memory stays flat.
    telemetry::enable();
    telemetry::set_span_capture(false);
    if let Some(path) = &args.log {
        if let Err(e) = telemetry::log_open(path) {
            eprintln!("error: cannot open --log {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let service = Service::new(&args);
    let code = match &args.socket {
        #[cfg(unix)]
        Some(path) => serve_socket(service, path),
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("error: --socket is only supported on Unix platforms");
            ExitCode::from(2)
        }
        None => serve_stdin(service),
    };
    telemetry::log_close();
    code
}

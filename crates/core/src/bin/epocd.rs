//! `epocd` — the persistent-pulse-library compilation service.
//!
//! A long-running server wrapping one [`EpocCompiler`]: compile jobs
//! arrive as line-delimited JSON (on stdin by default, or over a Unix
//! socket with `--socket`), and each answer is one compact line carrying
//! the full `CompilationReport`. The pulse library persists across jobs —
//! and, via `--library FILE`, across restarts — so recurring blocks cost
//! a cache lookup instead of a GRAPE run (the amortization EPOC's §3.4
//! phase-aware library is built for).
//!
//! ```sh
//! printf '%s\n' '{"id":1,"bench":"ghz_n4"}' '{"id":2,"bench":"ghz_n4"}' \
//!   | epocd --grape 1 --library pulses.json
//! ```
//!
//! ## Protocol
//!
//! Requests, one JSON object per line:
//!
//! * `{"id":1,"qasm":"OPENQASM 2.0; ..."}` — compile a QASM program
//!   (newlines escaped as `\n`);
//! * `{"id":2,"bench":"ghz_n4"}` — compile a builtin benchmark;
//! * either job form may add `"deadline_ms":N` (wall-clock deadline —
//!   a blown deadline fails that job typed, never a degraded schedule)
//!   and/or `"budget":"grape_iters=N,qsearch_nodes=M"` (deterministic
//!   per-block work caps — exhaustion degrades via the recovery ladder,
//!   byte-identically at any worker count);
//! * `{"cmd":"checkpoint"}` — persist the library now;
//! * `{"cmd":"stats"}` — report service counters, gauges, latency
//!   percentiles, and per-job counter summaries;
//! * `{"cmd":"metrics"}` — return the full Prometheus text exposition
//!   (as one JSON string field, since the protocol is line-delimited);
//! * `{"cmd":"shutdown"}` — checkpoint and exit.
//!
//! Responses, one compact JSON line each:
//!
//! * `{"id":1,"ok":true,"report":{...}}` on success;
//! * `{"id":1,"ok":false,"error":"..."}` on failure (the service keeps
//!   running — one bad job never takes the library down);
//! * `{"id":1,"ok":false,"rejected":"queue_full"|"oversized"|"shutting_down",
//!   "error":"..."}` when a job is shed before compilation: the queue is
//!   at `--queue-limit`, the request line exceeds `--line-limit` bytes,
//!   or the line was queued behind a `shutdown`;
//! * `{"ok":true,"stats":{...}}` / `{"ok":true,"checkpoint":{...}}` /
//!   `{"ok":true,"metrics":"..."}` for commands.
//!
//! ## Resilience
//!
//! Commands are exempt from load-shedding (`stats` must answer precisely
//! when the service is saturated). Each compile runs under a panic guard:
//! a panicking job answers `ok:false` and the daemon keeps serving. A
//! `shutdown` drains gracefully — in-flight work finishes, queued lines
//! get typed `shutting_down` rejections, the library checkpoints, and
//! the process exits.
//!
//! With `--journal FILE`, every live library insert is appended to a
//! checksummed write-ahead journal between checkpoints (fsync'd per
//! batch) and the journal is compacted on every successful checkpoint.
//! On start the journal replays after the library load, tolerating a
//! torn final record — `kill -9` mid-batch loses no completed insert.
//!
//! ## Observability
//!
//! The daemon runs with telemetry *enabled* but span capture *off*:
//! counters, gauges, and histograms are cheap and bounded, while the
//! per-span event list would grow without limit in a long-lived process.
//! Each accepted compile job gets a monotone job id (1, 2, …) carried by
//! a [`epoc_rt::telemetry::TelemetryScope`] through the worker pool, so
//! per-job counters and the structured log stay attributable. `--log
//! FILE` appends JSONL events (job admission/rejection/completion, batch
//! boundaries, recovery-rung climbs, evictions, checkpoint outcomes) —
//! one JSON object per line with `ts_ns`, `level`, `event`, and `job`
//! fields. None of this touches the report path: reports stay
//! byte-identical with telemetry on or off, at any worker count.
//!
//! ## Queueing and determinism
//!
//! A reader thread queues incoming lines on a channel; the compile loop
//! drains them in arrival batches. Jobs *compile* strictly in arrival
//! order — each compile fans its blocks out across the `epoc_rt` worker
//! pool internally, and the pipeline's peek/claim/compute/replay scheme
//! already guarantees byte-identical reports at any worker count — so a
//! fixed job sequence produces a byte-identical response stream (modulo
//! wall-clock timings) whatever `--workers` says. Checkpoints are
//! amortized per batch, not per job.

use epoc::{CompilationReport, EpocCompiler, EpocConfig, StoreConfig};
use epoc_circuit::{generators, parse_qasm, Circuit};
use epoc_qoc::{replay_journal, JournalWriter};
use epoc_rt::cancel::{Budget, CancelToken};
use epoc_rt::json::Json;
use epoc_rt::telemetry::{self, LogLevel, TelemetryScope};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Default GRAPE width cap (same as `epocc`).
const DEFAULT_GRAPE_LIMIT: usize = 2;
/// Default shard count for the service's pulse library: enough to keep
/// callers off one lock without fragmenting a byte budget.
const DEFAULT_SHARDS: usize = 8;
/// Default request-line bound: far above any realistic QASM job, far
/// below what could wedge the reader's memory.
const DEFAULT_LINE_LIMIT: usize = 1 << 20;

struct Args {
    library: Option<PathBuf>,
    library_budget: Option<u64>,
    shards: usize,
    grape_limit: usize,
    workers: Option<usize>,
    regroup: bool,
    checkpoint_every: usize,
    queue_limit: usize,
    line_limit: usize,
    journal: Option<PathBuf>,
    socket: Option<PathBuf>,
    log: Option<PathBuf>,
    faults: Option<String>,
    fault_seed: Option<u64>,
    hw: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: epocd [--library FILE] [--library-budget BYTES] [--shards N] \
         [--grape N] [--workers N] [--no-regroup] [--checkpoint-every N] \
         [--queue-limit N] [--line-limit BYTES] [--journal FILE] \
         [--socket PATH] [--log FILE] [--faults SPEC] [--fault-seed N] [--hw PROFILE]\n\
         --library FILE     load the pulse library from FILE on start, save on checkpoint/shutdown\n\
         --library-budget BYTES cap the in-memory library (LRU eviction)\n\
         --shards N         library shard count (default {DEFAULT_SHARDS})\n\
         --grape N          GRAPE width cap (default {DEFAULT_GRAPE_LIMIT}; 0 = modeled backend)\n\
         --workers N        worker-pool size for each compile\n\
         --no-regroup       disable regrouping (per-gate pulses)\n\
         --checkpoint-every N also persist the library every N completed jobs\n\
         --queue-limit N    shed jobs (typed 'queue_full' rejection) past N queued; 0 = unlimited\n\
         --line-limit BYTES reject request lines longer than BYTES (default {DEFAULT_LINE_LIMIT})\n\
         --journal FILE     write-ahead journal for library inserts between checkpoints\n\
         --socket PATH      serve a Unix socket instead of stdin/stdout\n\
         --log FILE         write a structured JSONL event log to FILE\n\
         --faults SPEC      arm fault injection (e.g. 'pulse_lib.persist=always')\n\
         --fault-seed N     seed for probabilistic fault triggers\n\
         --hw PROFILE       compile every job under a control-electronics model\n\
         \x20                  (profiles: {}); jobs may pin the same profile with an\n\
         \x20                  'hw' field — a mismatch fails that job, not the daemon",
        epoc::hw::PROFILE_NAMES.join(", ")
    );
    std::process::exit(2);
}

fn flag_value(iter: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    match iter.next() {
        Some(v) if !v.starts_with('-') => v,
        _ => {
            eprintln!("error: {flag} requires {what}");
            std::process::exit(2);
        }
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> T {
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag} expects a non-negative integer, got '{v}'");
        std::process::exit(2);
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        library: None,
        library_budget: None,
        shards: DEFAULT_SHARDS,
        grape_limit: DEFAULT_GRAPE_LIMIT,
        workers: None,
        regroup: true,
        checkpoint_every: 0,
        queue_limit: 0,
        line_limit: DEFAULT_LINE_LIMIT,
        journal: None,
        socket: None,
        log: None,
        faults: None,
        fault_seed: None,
        hw: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--library" => {
                args.library = Some(flag_value(&mut iter, "--library", "a path").into())
            }
            "--library-budget" => {
                let v = flag_value(&mut iter, "--library-budget", "a byte count");
                args.library_budget = Some(parse_num("--library-budget", &v));
            }
            "--shards" => {
                let v = flag_value(&mut iter, "--shards", "a shard count");
                args.shards = parse_num("--shards", &v);
            }
            "--grape" => {
                let v = flag_value(&mut iter, "--grape", "a qubit count");
                args.grape_limit = parse_num("--grape", &v);
            }
            "--workers" => {
                let v = flag_value(&mut iter, "--workers", "a worker count");
                args.workers = Some(parse_num("--workers", &v));
            }
            "--no-regroup" => args.regroup = false,
            "--checkpoint-every" => {
                let v = flag_value(&mut iter, "--checkpoint-every", "a job count");
                args.checkpoint_every = parse_num("--checkpoint-every", &v);
            }
            "--queue-limit" => {
                let v = flag_value(&mut iter, "--queue-limit", "a job count");
                args.queue_limit = parse_num("--queue-limit", &v);
            }
            "--line-limit" => {
                let v = flag_value(&mut iter, "--line-limit", "a byte count");
                args.line_limit = parse_num("--line-limit", &v);
            }
            "--journal" => {
                args.journal = Some(flag_value(&mut iter, "--journal", "a path").into())
            }
            "--socket" => {
                args.socket = Some(flag_value(&mut iter, "--socket", "a path").into())
            }
            "--log" => args.log = Some(flag_value(&mut iter, "--log", "a path").into()),
            "--hw" => args.hw = Some(flag_value(&mut iter, "--hw", "a profile name")),
            "--faults" => args.faults = Some(flag_value(&mut iter, "--faults", "a fault spec")),
            "--fault-seed" => {
                let v = flag_value(&mut iter, "--fault-seed", "a seed");
                args.fault_seed = Some(parse_num("--fault-seed", &v));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// One bounded read from the request stream.
enum ReadLine {
    /// A complete line within the byte limit (newline stripped).
    Line(String),
    /// A line that exceeded the limit; its bytes were discarded up to
    /// (and including) the next newline. Carries the observed length.
    Oversized(usize),
    /// Clean end of stream.
    Eof,
}

/// Reads one `\n`-terminated line without ever buffering more than
/// `limit` bytes of it: past the limit the rest of the line is consumed
/// and discarded, so a hostile or corrupt client cannot wedge the
/// reader's memory. A final unterminated line is returned as a line
/// (matching `BufRead::lines`).
fn next_line(reader: &mut impl BufRead, limit: usize) -> std::io::Result<ReadLine> {
    let mut buf: Vec<u8> = Vec::new();
    let mut seen = 0usize;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if seen > limit {
                ReadLine::Oversized(seen)
            } else if buf.is_empty() && seen == 0 {
                ReadLine::Eof
            } else {
                ReadLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        let nl = chunk.iter().position(|&b| b == b'\n');
        let take = nl.unwrap_or(chunk.len());
        seen += take;
        if seen > limit {
            buf.clear();
        } else {
            buf.extend_from_slice(&chunk[..take]);
        }
        let consumed = nl.map_or(chunk.len(), |i| i + 1);
        reader.consume(consumed);
        if nl.is_some() {
            return Ok(if seen > limit {
                ReadLine::Oversized(seen)
            } else {
                ReadLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
    }
}

/// `true` when the line is a service command — commands bypass admission
/// control (`stats` must answer precisely when the queue is full). The
/// reader and the drain loop must agree on this classification, so it is
/// a pure function of the line text.
fn is_command(line: &str) -> bool {
    Json::parse(line).is_ok_and(|req| req.get("cmd").is_some())
}

/// What the reader thread queues for the serving loop.
enum Incoming {
    /// An admitted request line (job or command).
    Request(String),
    /// A request shed at admission; the serving loop emits the typed
    /// rejection in arrival order.
    Reject {
        id: Option<Json>,
        reason: &'static str,
        error: String,
    },
}

/// The service state: the (cache-bearing) compiler plus checkpoint
/// bookkeeping.
struct Service {
    compiler: EpocCompiler,
    library: Option<PathBuf>,
    journal: Option<Arc<JournalWriter>>,
    checkpoint_every: usize,
    jobs_done: usize,
    jobs_failed: usize,
    jobs_rejected: usize,
    batches: usize,
    jobs_since_checkpoint: usize,
    /// Monotone correlation id handed to each accepted compile job (1,
    /// 2, …) — deterministic for a fixed request sequence, unlike the
    /// caller-chosen `id` field (which is echoed in responses and logged
    /// as `request_id`).
    job_seq: u64,
}

impl Service {
    fn new(args: &Args) -> Self {
        let base = if args.grape_limit == 0 {
            EpocConfig::default()
        } else {
            EpocConfig::with_grape(args.grape_limit)
        };
        let mut config = base.with_store(StoreConfig {
            shards: args.shards,
            budget_bytes: args.library_budget,
        });
        if let Some(w) = args.workers {
            config = config.with_workers(w);
        }
        if !args.regroup {
            config = config.without_regrouping();
        }
        if let Some(name) = &args.hw {
            match epoc::hw::HardwareProfile::by_name(name) {
                Some(profile) => config = config.with_hw(profile),
                None => {
                    eprintln!(
                        "error: unknown hardware profile '{name}' (profiles: {})",
                        epoc::hw::PROFILE_NAMES.join(", ")
                    );
                    std::process::exit(2);
                }
            }
        }
        let compiler = EpocCompiler::new(config);
        if let Some(path) = &args.library {
            if path.exists() {
                match compiler.load_library(path) {
                    Ok(n) => eprintln!("epocd: warm-started {n} pulses from {}", path.display()),
                    // A torn or corrupt library is recoverable: report the
                    // typed error, compile cold, and overwrite it at the
                    // next checkpoint.
                    Err(e) => eprintln!("epocd: warning: {e}; starting with a cold cache"),
                }
            }
        }
        let journal = args.journal.as_ref().and_then(|jpath| {
            // Replay before attaching observers: replayed inserts go
            // straight to the store and must not re-journal themselves.
            match replay_journal(jpath, &compiler.library_sections()) {
                Ok(0) => {}
                Ok(n) => {
                    eprintln!("epocd: replayed {n} journaled pulses from {}", jpath.display())
                }
                Err(e) => {
                    // A corrupt journal fails closed (nothing applied).
                    // Move it aside — recomputing lost pulses is always
                    // safe; trusting a lying journal is not.
                    let aside = jpath.with_extension("journal.corrupt");
                    let moved = std::fs::rename(jpath, &aside).is_ok();
                    eprintln!(
                        "epocd: warning: {e}; {}",
                        if moved {
                            format!("moved the journal aside to {}", aside.display())
                        } else {
                            "and the journal could not be moved aside".to_string()
                        }
                    );
                }
            }
            match JournalWriter::open_append(jpath) {
                Ok(writer) => {
                    let writer = Arc::new(writer);
                    for (section, lib) in compiler.library_sections() {
                        let sink = Arc::clone(&writer);
                        lib.set_insert_observer(Some(Arc::new(move |key, entry| {
                            // Journal loss must not fail the insert: the
                            // entry is still correct in memory and the
                            // next checkpoint persists it anyway.
                            if sink.append(section, key, entry).is_err() {
                                telemetry::counter_add("epocd.journal_errors", 1);
                            }
                        })));
                    }
                    Some(writer)
                }
                Err(e) => {
                    eprintln!("epocd: warning: cannot open --journal: {e}; journaling disabled");
                    None
                }
            }
        });
        Self {
            compiler,
            library: args.library.clone(),
            journal,
            checkpoint_every: args.checkpoint_every,
            jobs_done: 0,
            jobs_failed: 0,
            jobs_rejected: 0,
            batches: 0,
            jobs_since_checkpoint: 0,
            job_seq: 0,
        }
    }

    fn load_circuit(&self, req: &Json) -> Result<Circuit, String> {
        if let Some(name) = req.get("bench").and_then(Json::as_str) {
            return generators::benchmark_suite()
                .into_iter()
                .find(|b| b.name == name)
                .map(|b| b.circuit)
                .ok_or_else(|| format!("unknown builtin benchmark '{name}'"));
        }
        if let Some(src) = req.get("qasm").and_then(Json::as_str) {
            return parse_qasm(src).map_err(|e| e.to_string());
        }
        Err("job needs a 'qasm' or 'bench' field".into())
    }

    /// Builds the job's cancellation token from its optional
    /// `deadline_ms` / `budget` fields.
    fn cancel_token(req: &Json) -> Result<CancelToken, String> {
        let mut token = CancelToken::default();
        if let Some(v) = req.get("budget") {
            let spec = v
                .as_str()
                .ok_or("'budget' must be a spec string like 'grape_iters=100'")?;
            token = token.with_budget(Budget::parse_spec(spec)?);
        }
        if let Some(v) = req.get("deadline_ms") {
            let ms = v
                .as_f64()
                .filter(|m| m.is_finite() && *m >= 0.0)
                .ok_or("'deadline_ms' must be a non-negative number")?;
            token = token.with_deadline_ms(ms as u64);
        }
        Ok(token)
    }

    fn compile(&self, req: &Json) -> Result<CompilationReport, String> {
        // A job may pin the hardware profile it expects. The daemon runs
        // one compiler with one profile-scoped library, so a mismatch
        // fails that job (the client should target a matching daemon)
        // rather than silently compiling under different electronics.
        if let Some(want) = req.get("hw").and_then(Json::as_str) {
            let have = self.compiler.config().hw.as_ref().map_or("ideal", |p| p.name.as_str());
            if want != have {
                return Err(format!(
                    "job pins hardware profile '{want}' but this daemon compiles under '{have}'"
                ));
            }
        }
        let cancel = Self::cancel_token(req)?;
        let circuit = self.load_circuit(req)?;
        self.compiler
            .compile_with_cancel(&circuit, &cancel)
            .map_err(|e| e.to_string())
    }

    /// Persists the library (when one is configured), returning the
    /// response line. A successful checkpoint compacts the journal: the
    /// just-renamed library file now covers every journaled insert.
    fn checkpoint(&mut self) -> Json {
        let Some(path) = &self.library else {
            return Json::obj()
                .push("ok", false)
                .push("error", "no --library configured");
        };
        match self.compiler.save_library(path) {
            Ok(()) => {
                self.jobs_since_checkpoint = 0;
                telemetry::counter_add("epocd.checkpoints", 1);
                telemetry::log_event(
                    LogLevel::Info,
                    "checkpoint.saved",
                    Json::obj()
                        .push("path", path.display().to_string())
                        .push("entries", self.compiler.library_len()),
                );
                if let Some(journal) = &self.journal {
                    // Compaction failure is benign: replaying records the
                    // checkpoint already covers is idempotent.
                    if let Err(e) = journal.compact() {
                        telemetry::log_event(
                            LogLevel::Warn,
                            "journal.compact_failed",
                            Json::obj().push("error", e.to_string()),
                        );
                    }
                }
                Json::obj().push("ok", true).push(
                    "checkpoint",
                    Json::obj()
                        .push("path", path.display().to_string())
                        .push("entries", self.compiler.library_len()),
                )
            }
            Err(e) => {
                telemetry::log_event(
                    LogLevel::Error,
                    "checkpoint.failed",
                    Json::obj().push("error", e.to_string()),
                );
                Json::obj().push("ok", false).push("error", e.to_string())
            }
        }
    }

    fn stats(&self) -> Json {
        let mut gauges = Json::obj();
        for (name, value) in telemetry::gauges_snapshot() {
            gauges = gauges.push(&name, value);
        }
        let mut percentiles = Json::obj();
        for (name, h) in telemetry::histograms_snapshot() {
            percentiles = percentiles.push(
                &name,
                Json::obj()
                    .push("p50", h.percentile(0.50))
                    .push("p95", h.percentile(0.95))
                    .push("p99", h.percentile(0.99))
                    .push("count", h.count),
            );
        }
        // Per-job counter summaries: the snapshot is sorted by (job,
        // name), so one forward pass groups it.
        let mut jobs_by_id = Json::obj();
        let mut it = telemetry::job_counters_snapshot().into_iter().peekable();
        while let Some((job, name, value)) = it.next() {
            let mut obj = Json::obj().push(&name, value);
            while it.peek().is_some_and(|(j, _, _)| *j == job) {
                let (_, n, v) = it.next().expect("peeked");
                obj = obj.push(&n, v);
            }
            jobs_by_id = jobs_by_id.push(&job.to_string(), obj);
        }
        Json::obj().push("ok", true).push(
            "stats",
            Json::obj()
                .push("jobs", self.jobs_done)
                .push("failed", self.jobs_failed)
                .push("rejected", self.jobs_rejected)
                .push("batches", self.batches)
                .push("cache_hits", self.compiler.cache_hits())
                .push("cache_misses", self.compiler.cache_misses())
                .push("library_entries", self.compiler.library_len())
                .push("library_evictions", self.compiler.library_evictions())
                .push("library_bytes", self.compiler.library_bytes())
                .push("gauges", gauges)
                .push("percentiles", percentiles)
                .push("jobs_by_id", jobs_by_id),
        )
    }

    /// Records a shed job and builds its typed rejection line.
    fn reject(&mut self, id: Option<Json>, reason: &str, error: String) -> Json {
        self.jobs_rejected += 1;
        telemetry::counter_add("epocd.jobs_rejected", 1);
        let mut detail = Json::obj().push("reason", reason);
        if let Some(id) = &id {
            detail = detail.push("request_id", id.clone());
        }
        telemetry::log_event(LogLevel::Warn, "job.rejected", detail);
        let mut resp = Json::obj();
        if let Some(id) = id {
            resp = resp.push("id", id);
        }
        resp.push("ok", false)
            .push("rejected", reason)
            .push("error", error)
    }

    /// Sheds a still-queued request line during shutdown drain.
    fn reject_line(&mut self, line: &str, reason: &'static str, error: &str) -> Json {
        let id = Json::parse(line).ok().and_then(|req| req.get("id").cloned());
        self.reject(id, reason, error.to_string())
    }

    /// Handles one request line, returning `(response, shutdown)`.
    fn handle(&mut self, line: &str) -> (Json, bool) {
        let req = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => {
                return (
                    Json::obj()
                        .push("ok", false)
                        .push("error", format!("unparseable request: {e}")),
                    false,
                )
            }
        };
        if let Some(cmd) = req.get("cmd").and_then(Json::as_str) {
            return match cmd {
                "checkpoint" => (self.checkpoint(), false),
                "stats" => (self.stats(), false),
                "metrics" => (
                    Json::obj()
                        .push("ok", true)
                        .push("metrics", telemetry::prometheus_text()),
                    false,
                ),
                "shutdown" => {
                    let resp = if self.library.is_some() {
                        self.checkpoint()
                    } else {
                        Json::obj().push("ok", true)
                    };
                    (resp, true)
                }
                other => (
                    Json::obj()
                        .push("ok", false)
                        .push("error", format!("unknown command '{other}'")),
                    false,
                ),
            };
        }
        let mut resp = Json::obj();
        if let Some(id) = req.get("id") {
            resp = resp.push("id", id.clone());
        }
        // Every compile job gets a fresh monotone correlation id; the
        // scope carries it into counters, spans, log lines, and (via the
        // worker pool) every thread the compile fans out to.
        self.job_seq += 1;
        let job = self.job_seq;
        let _scope = TelemetryScope::enter(job);
        let source = if req.get("bench").is_some() {
            "bench"
        } else if req.get("qasm").is_some() {
            "qasm"
        } else {
            "invalid"
        };
        let mut admitted = Json::obj().push("source", source);
        if let Some(id) = req.get("id") {
            admitted = admitted.push("request_id", id.clone());
        }
        telemetry::log_event(LogLevel::Info, "job.admitted", admitted);
        telemetry::gauge_add("epocd.inflight_jobs", 1);
        let evictions_before = self.compiler.library_evictions();
        let started = std::time::Instant::now();
        // Panic isolation: a panicking compile (a pipeline bug, a poisoned
        // pool) answers as a typed job failure and the daemon — and its
        // library — keeps serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if epoc_rt::faults::fail_point("epocd.panic") {
                panic!("injected fault: epocd.panic");
            }
            self.compile(&req)
        }))
        .unwrap_or_else(|payload| {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string());
            telemetry::counter_add("epocd.jobs_panicked", 1);
            Err(format!("job panicked: {msg}"))
        });
        let elapsed_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        telemetry::gauge_add("epocd.inflight_jobs", -1);
        telemetry::counter_add("epocd.jobs", 1);
        telemetry::counter_add("epocd.job_ns", elapsed_ns);
        telemetry::histogram_record("epocd.job_latency_ns", elapsed_ns);
        let evicted = self
            .compiler
            .library_evictions()
            .saturating_sub(evictions_before);
        if evicted > 0 {
            telemetry::log_event(
                LogLevel::Warn,
                "library.evicted",
                Json::obj().push("entries", evicted),
            );
        }
        match outcome {
            Ok(report) => {
                for rec in &report.stages.recoveries {
                    telemetry::log_event(LogLevel::Warn, "recovery.rung", rec.to_json_value());
                }
                telemetry::log_event(
                    LogLevel::Info,
                    "job.done",
                    report.log_summary().push("elapsed_ns", elapsed_ns),
                );
                self.jobs_done += 1;
                self.jobs_since_checkpoint += 1;
                (
                    resp.push("ok", report.verified || report.verify_skipped)
                        .push("report", report.to_json_value()),
                    false,
                )
            }
            Err(e) => {
                telemetry::counter_add("epocd.jobs_failed", 1);
                telemetry::log_event(
                    LogLevel::Error,
                    "job.failed",
                    Json::obj().push("error", e.as_str()),
                );
                self.jobs_failed += 1;
                (resp.push("ok", false).push("error", e), false)
            }
        }
    }

    /// End-of-batch hook: make journaled inserts durable, then persist
    /// when the per-batch job quota is met.
    fn end_batch(&mut self) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.sync() {
                telemetry::log_event(
                    LogLevel::Warn,
                    "journal.sync_failed",
                    Json::obj().push("error", e.to_string()),
                );
            }
        }
        if self.library.is_some()
            && self.checkpoint_every > 0
            && self.jobs_since_checkpoint >= self.checkpoint_every
        {
            self.checkpoint();
        }
    }

    /// Final checkpoint on EOF/shutdown.
    fn finish(&mut self) {
        if self.library.is_some() && self.jobs_since_checkpoint > 0 {
            self.checkpoint();
        }
        if let Some(journal) = &self.journal {
            let _ = journal.sync();
        }
    }
}

/// Serves line-delimited requests from stdin, answering on stdout.
fn serve_stdin(mut service: Service, queue_limit: usize, line_limit: usize) -> ExitCode {
    // The reader thread queues lines as they arrive; the compile loop
    // drains whatever is pending into one batch, so checkpointing (and
    // any other per-batch cost) amortizes over bursts. Admission control
    // lives in the reader — the side that sees the queue growing — and
    // rejections flow through the same channel so responses keep arrival
    // order.
    let (tx, rx) = mpsc::channel::<Incoming>();
    let depth = Arc::new(AtomicUsize::new(0));
    let reader_depth = Arc::clone(&depth);
    std::thread::spawn(move || {
        let mut stdin = std::io::stdin().lock();
        loop {
            match next_line(&mut stdin, line_limit) {
                Err(_) | Ok(ReadLine::Eof) => break,
                Ok(ReadLine::Oversized(n)) => {
                    let rejected = Incoming::Reject {
                        id: None,
                        reason: "oversized",
                        error: format!(
                            "request line of {n} bytes exceeds the {line_limit}-byte limit"
                        ),
                    };
                    if tx.send(rejected).is_err() {
                        break;
                    }
                }
                Ok(ReadLine::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let job = !is_command(&line);
                    if job
                        && queue_limit > 0
                        && reader_depth.load(Ordering::Acquire) >= queue_limit
                    {
                        let id = Json::parse(&line).ok().and_then(|r| r.get("id").cloned());
                        let rejected = Incoming::Reject {
                            id,
                            reason: "queue_full",
                            error: format!("service queue is at its limit of {queue_limit} jobs"),
                        };
                        if tx.send(rejected).is_err() {
                            break;
                        }
                        continue;
                    }
                    if job {
                        reader_depth.fetch_add(1, Ordering::AcqRel);
                    }
                    if tx.send(Incoming::Request(line)).is_err() {
                        break;
                    }
                }
            }
        }
    });
    let stdout = std::io::stdout();
    let mut shutdown = false;
    while let Ok(first) = rx.recv() {
        let mut queue: VecDeque<Incoming> = VecDeque::new();
        queue.push_back(first);
        while let Ok(next) = rx.try_recv() {
            queue.push_back(next);
        }
        service.batches += 1;
        telemetry::counter_add("epocd.batches", 1);
        telemetry::log_event(
            LogLevel::Info,
            "batch.begin",
            Json::obj().push("size", queue.len()),
        );
        let batch_size = queue.len();
        while let Some(item) = queue.pop_front() {
            // Requests already queued behind this one.
            telemetry::gauge_set("epocd.queue_depth", queue.len() as i64);
            let resp = match item {
                Incoming::Reject { id, reason, error } => service.reject(id, reason, error),
                Incoming::Request(line) => {
                    let job = !is_command(&line);
                    let (resp, stop) = service.handle(&line);
                    if job {
                        depth.fetch_sub(1, Ordering::AcqRel);
                    }
                    if stop {
                        shutdown = true;
                    }
                    resp
                }
            };
            let mut out = stdout.lock();
            let _ = writeln!(out, "{}", resp.to_string_compact());
            let _ = out.flush();
            if shutdown {
                // Graceful drain: everything still queued — in this
                // batch or on the channel — is shed with a typed
                // rejection, then the final checkpoint runs.
                while let Ok(next) = rx.try_recv() {
                    queue.push_back(next);
                }
                for left in queue.drain(..) {
                    let resp = match left {
                        Incoming::Reject { id, reason, error } => {
                            service.reject(id, reason, error)
                        }
                        Incoming::Request(line) => {
                            if !is_command(&line) {
                                depth.fetch_sub(1, Ordering::AcqRel);
                            }
                            service.reject_line(
                                &line,
                                "shutting_down",
                                "service is shutting down",
                            )
                        }
                    };
                    let _ = writeln!(out, "{}", resp.to_string_compact());
                }
                let _ = out.flush();
                break;
            }
        }
        telemetry::log_event(
            LogLevel::Info,
            "batch.end",
            Json::obj().push("size", batch_size),
        );
        service.end_batch();
        if shutdown {
            break;
        }
    }
    service.finish();
    ExitCode::SUCCESS
}

/// Serves line-delimited requests over a Unix socket, one connection at a
/// time (responses go back on the same connection). The socket loop is
/// synchronous — each job is answered before the next line is read — so
/// queue-based shedding never applies; the line bound still does.
#[cfg(unix)]
fn serve_socket(mut service: Service, path: &std::path::Path, line_limit: usize) -> ExitCode {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = match UnixListener::bind(path) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("epocd: listening on {}", path.display());
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => continue,
        };
        let mut reader = std::io::BufReader::new(stream);
        let mut shutdown = false;
        let mut jobs_in_connection = 0usize;
        telemetry::log_event(LogLevel::Info, "connection.accepted", Json::obj());
        loop {
            let resp = match next_line(&mut reader, line_limit) {
                Err(_) | Ok(ReadLine::Eof) => break,
                Ok(ReadLine::Oversized(n)) => service.reject(
                    None,
                    "oversized",
                    format!("request line of {n} bytes exceeds the {line_limit}-byte limit"),
                ),
                Ok(ReadLine::Line(line)) => {
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (resp, stop) = service.handle(&line);
                    jobs_in_connection += 1;
                    shutdown = stop;
                    resp
                }
            };
            if writeln!(writer, "{}", resp.to_string_compact()).is_err() {
                break;
            }
            let _ = writer.flush();
            if shutdown {
                break;
            }
        }
        // A connection is a natural batch boundary.
        if jobs_in_connection > 0 {
            service.batches += 1;
            telemetry::counter_add("epocd.batches", 1);
            telemetry::log_event(
                LogLevel::Info,
                "batch.end",
                Json::obj().push("size", jobs_in_connection),
            );
            service.end_batch();
        }
        if shutdown {
            break;
        }
    }
    service.finish();
    let _ = std::fs::remove_file(path);
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(spec) = &args.faults {
        if let Some(seed) = args.fault_seed {
            epoc_rt::faults::set_seed(seed);
        }
        if let Err(e) = epoc_rt::faults::arm_from_spec(spec) {
            eprintln!("error: bad --faults spec: {e}");
            return ExitCode::from(2);
        }
    }
    // Metrics stay live for the whole daemon lifetime, but span events
    // are a bounded-run tool: capture is off so memory stays flat.
    telemetry::enable();
    telemetry::set_span_capture(false);
    if let Some(path) = &args.log {
        if let Err(e) = telemetry::log_open(path) {
            eprintln!("error: cannot open --log {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let service = Service::new(&args);
    let code = match &args.socket {
        #[cfg(unix)]
        Some(path) => serve_socket(service, path, args.line_limit),
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("error: --socket is only supported on Unix platforms");
            ExitCode::from(2)
        }
        None => serve_stdin(service, args.queue_limit, args.line_limit),
    };
    telemetry::log_close();
    code
}

//! `schedule_check` — structural validator for `epocc --schedule` output.
//!
//! Parses a dumped `PulseSchedule` JSON file and asserts the invariants
//! the scheduler promises: well-formed pulses with in-range qubits,
//! non-negative times, fidelities in `[0, 1]`, known payload kinds, no
//! overlap between pulses sharing a qubit line, and well-formed frame
//! updates. The CI `sim-smoke` step runs it against a fresh
//! `epocc --schedule` dump so a malformed schedule fails the build.
//!
//! ```sh
//! schedule_check schedule.json
//! schedule_check --require-payloads schedule.json  # forbid opaque pulses
//! ```

use epoc_rt::json::Json;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("schedule_check: FAIL: {msg}");
    ExitCode::FAILURE
}

/// A pulse's qubit list as indices, or an error message.
fn qubits_of(obj: &Json, what: &str, i: usize, n_qubits: usize) -> Result<Vec<usize>, String> {
    let Some(Json::Arr(qs)) = obj.get("qubits") else {
        return Err(format!("{what} {i}: missing \"qubits\" array"));
    };
    if qs.is_empty() {
        return Err(format!("{what} {i}: empty qubit list"));
    }
    let mut out = Vec::with_capacity(qs.len());
    for q in qs {
        let Some(f) = q.as_f64() else {
            return Err(format!("{what} {i}: non-numeric qubit"));
        };
        let q = f as usize;
        if f != q as f64 || q >= n_qubits {
            return Err(format!("{what} {i}: qubit {f} out of range 0..{n_qubits}"));
        }
        if out.contains(&q) {
            return Err(format!("{what} {i}: duplicate qubit {q}"));
        }
        out.push(q);
    }
    Ok(out)
}

fn main() -> ExitCode {
    let mut require_payloads = false;
    let mut path = String::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--require-payloads" => require_payloads = true,
            other if other.starts_with('-') => {
                eprintln!("usage: schedule_check [--require-payloads] <schedule.json>");
                return ExitCode::from(2);
            }
            other => path = other.to_string(),
        }
    }
    if path.is_empty() {
        eprintln!("usage: schedule_check [--require-payloads] <schedule.json>");
        return ExitCode::from(2);
    }

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&source) {
        Ok(j) => j,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };

    let Some(n_qubits) = doc.get("n_qubits").and_then(Json::as_f64) else {
        return fail("missing numeric \"n_qubits\"");
    };
    if n_qubits < 1.0 || n_qubits != (n_qubits as usize) as f64 {
        return fail(&format!("\"n_qubits\" must be a positive integer, got {n_qubits}"));
    }
    let n_qubits = n_qubits as usize;

    let Some(Json::Arr(pulses)) = doc.get("pulses") else {
        return fail("missing \"pulses\" array");
    };

    // Per-pulse structure, collecting (qubits, start, end) for overlap.
    let mut placed: Vec<(Vec<usize>, f64, f64)> = Vec::with_capacity(pulses.len());
    for (i, p) in pulses.iter().enumerate() {
        let qubits = match qubits_of(p, "pulse", i, n_qubits) {
            Ok(q) => q,
            Err(e) => return fail(&e),
        };
        let Some(start) = p.get("start").and_then(Json::as_f64) else {
            return fail(&format!("pulse {i}: missing numeric \"start\""));
        };
        let Some(duration) = p.get("duration").and_then(Json::as_f64) else {
            return fail(&format!("pulse {i}: missing numeric \"duration\""));
        };
        let Some(fidelity) = p.get("fidelity").and_then(Json::as_f64) else {
            return fail(&format!("pulse {i}: missing numeric \"fidelity\""));
        };
        if p.get("label").and_then(Json::as_str).is_none() {
            return fail(&format!("pulse {i}: missing string \"label\""));
        }
        let payload = match p.get("payload").and_then(Json::as_str) {
            Some(k) => k,
            None => return fail(&format!("pulse {i}: missing string \"payload\"")),
        };
        if !matches!(payload, "opaque" | "waveform" | "unitary") {
            return fail(&format!("pulse {i}: unknown payload kind \"{payload}\""));
        }
        if require_payloads && payload == "opaque" {
            return fail(&format!("pulse {i}: opaque payload (schedule not simulatable)"));
        }
        if start < 0.0 || !start.is_finite() {
            return fail(&format!("pulse {i}: negative or non-finite start {start}"));
        }
        if duration <= 0.0 || !duration.is_finite() {
            return fail(&format!("pulse {i}: non-positive duration {duration}"));
        }
        if !(0.0..=1.0).contains(&fidelity) {
            return fail(&format!("pulse {i}: fidelity {fidelity} outside [0, 1]"));
        }
        placed.push((qubits, start, start + duration));
    }

    // No overlap on any shared qubit line (mirrors PulseSchedule::is_valid).
    for (i, (qa, sa, ea)) in placed.iter().enumerate() {
        for (j, (qb, sb, eb)) in placed.iter().enumerate().skip(i + 1) {
            if qa.iter().any(|q| qb.contains(q)) {
                let disjoint = *ea <= sb + 1e-9 || *eb <= sa + 1e-9;
                if !disjoint {
                    return fail(&format!("pulses {i} and {j} overlap on a shared qubit line"));
                }
            }
        }
    }

    let Some(Json::Arr(frames)) = doc.get("frames") else {
        return fail("missing \"frames\" array");
    };
    for (i, f) in frames.iter().enumerate() {
        if let Err(e) = qubits_of(f, "frame", i, n_qubits) {
            return fail(&e);
        }
        let Some(time) = f.get("time").and_then(Json::as_f64) else {
            return fail(&format!("frame {i}: missing numeric \"time\""));
        };
        if time < 0.0 || !time.is_finite() {
            return fail(&format!("frame {i}: negative or non-finite time {time}"));
        }
        if f.get("label").and_then(Json::as_str).is_none() {
            return fail(&format!("frame {i}: missing string \"label\""));
        }
        if !matches!(f.get("unitary"), Some(Json::Bool(_))) {
            return fail(&format!("frame {i}: missing boolean \"unitary\""));
        }
    }

    println!(
        "schedule_check: OK — {} pulses, {} frames on {n_qubits} qubits",
        pulses.len(),
        frames.len()
    );
    ExitCode::SUCCESS
}

//! `trace_check` — structural validator for the observability artifacts.
//!
//! Validates the three export formats the telemetry layer promises, so CI
//! smoke steps fail on malformed output instead of silently shipping:
//!
//! * Chrome trace-event JSON (`epocc --trace`): a non-empty `traceEvents`
//!   array of well-formed `"X"` events and one span per pipeline stage;
//! * the structured JSONL event log (`epocd --log`): one JSON object per
//!   line, each carrying `ts_ns`, a known `level`, and an `event` name;
//! * the Prometheus text exposition (`epocc --metrics-file`, or the
//!   `metrics` field of epocd's `metrics` command written to a file):
//!   `# TYPE` headers and `name{labels} value` sample lines only.
//!
//! ```sh
//! trace_check trace.json                # stage spans only
//! trace_check --require-qoc trace.json  # also demand GRAPE/QSearch spans
//! trace_check --require-recovery trace.json  # demand recovery.* counters
//! trace_check --log epocd.jsonl         # JSONL log schema
//! trace_check --metrics m.prom          # Prometheus exposition grammar
//! trace_check --require-jobs --log epocd.jsonl --metrics m.prom
//! trace_check --require-event job.rejected --log epocd.jsonl
//! ```
//!
//! `--require-recovery` backs the CI `chaos-smoke` step: a compile with
//! fault injection armed must surface its recovery ladder in the
//! `epocCounters` section, or degradation happened silently.
//! `--require-jobs` backs the `obs-smoke` step: the log must attribute
//! events to per-service job ids (admission and completion for at least
//! one job >= 1), and the exposition must carry `job="N"` labels and
//! summary quantiles — the whole point of job-scoped telemetry.
//! `--require-event NAME` (repeatable) backs the `resilience-smoke`
//! step: the log must contain at least one line whose `event` is NAME —
//! e.g. a flood test asserting `job.rejected` actually got logged.

use epoc_rt::json::Json;
use std::process::ExitCode;

/// Stage spans every EPOC compile must emit (cat `"stage"`).
const STAGES: [&str; 5] = ["zx", "partition", "synth", "regroup", "pulse"];

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_check [--require-qoc] [--require-recovery] [--require-jobs] \
         [--require-event NAME]... [--log FILE] [--metrics FILE] [<trace.json>]"
    );
    ExitCode::from(2)
}

/// Validates a Chrome trace file; returns a one-line summary on success.
fn check_trace(
    path: &str,
    require_qoc: bool,
    require_recovery: bool,
) -> Result<String, String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = Json::parse(&source).map_err(|e| format!("{path} is not valid JSON: {e}"))?;

    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("top-level \"traceEvents\" array missing".into());
    };
    if events.is_empty() {
        return Err("traceEvents is empty — was telemetry enabled?".into());
    }

    // Every event must be a complete ("X") event with the full field set
    // and lossless integer timestamps in args.
    let mut spans: Vec<(String, String)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = match e.get("name").and_then(Json::as_str) {
            Some(n) => n.to_string(),
            None => return Err(format!("event {i}: missing \"name\"")),
        };
        let cat = match e.get("cat").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => return Err(format!("event {i} ({name}): missing \"cat\"")),
        };
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(format!("event {i} ({name}): ph is not \"X\""));
        }
        for field in ["ts", "dur", "pid", "tid"] {
            if e.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("event {i} ({name}): missing numeric \"{field}\""));
            }
        }
        let Some(args) = e.get("args") else {
            return Err(format!("event {i} ({name}): missing \"args\""));
        };
        for field in ["ts_ns", "dur_ns", "depth", "job"] {
            if args.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("event {i} ({name}): missing args.{field}"));
            }
        }
        spans.push((cat, name));
    }

    for stage in STAGES {
        if !spans.iter().any(|(c, n)| c == "stage" && n == stage) {
            return Err(format!("no \"stage\" span named \"{stage}\""));
        }
    }
    if require_qoc {
        for (cat, name) in [("qoc", "grape"), ("synth", "qsearch")] {
            if !spans.iter().any(|(c, n)| c == cat && n == name) {
                return Err(format!("no \"{cat}\" span named \"{name}\""));
            }
        }
    }
    if require_recovery {
        let Some(Json::Obj(counters)) = doc.get("epocCounters") else {
            return Err("top-level \"epocCounters\" object missing".into());
        };
        if !counters.iter().any(|(k, _)| k.starts_with("recovery.")) {
            return Err(
                "no recovery.* counter — did the armed faults trigger any ladder rung?".into(),
            );
        }
    }

    Ok(format!(
        "{path}: {} events, all {} stage spans present{}{}",
        events.len(),
        STAGES.len(),
        if require_qoc { ", grape + qsearch present" } else { "" },
        if require_recovery { ", recovery counters present" } else { "" }
    ))
}

/// Validates a structured JSONL event log; returns a summary on success.
fn check_log(
    path: &str,
    require_jobs: bool,
    require_events: &[String],
) -> Result<String, String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut lines = 0usize;
    let mut attributed = 0usize;
    let mut admitted = false;
    let mut done = false;
    let mut missing: Vec<&str> = require_events.iter().map(String::as_str).collect();
    for (i, line) in source.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry = Json::parse(line)
            .map_err(|e| format!("{path}:{}: not valid JSON: {e}", i + 1))?;
        if entry.get("ts_ns").and_then(Json::as_f64).is_none() {
            return Err(format!("{path}:{}: missing numeric \"ts_ns\"", i + 1));
        }
        match entry.get("level").and_then(Json::as_str) {
            Some("info" | "warn" | "error") => {}
            Some(other) => {
                return Err(format!("{path}:{}: unknown level \"{other}\"", i + 1))
            }
            None => return Err(format!("{path}:{}: missing \"level\"", i + 1)),
        }
        let Some(event) = entry.get("event").and_then(Json::as_str) else {
            return Err(format!("{path}:{}: missing \"event\"", i + 1));
        };
        missing.retain(|name| *name != event);
        let job = entry.get("job").and_then(Json::as_f64).unwrap_or(0.0);
        if job >= 1.0 {
            attributed += 1;
            if event == "job.admitted" {
                admitted = true;
            }
            if event == "job.done" {
                done = true;
            }
        }
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{path}: log is empty — was --log passed to epocd?"));
    }
    if require_jobs {
        if attributed == 0 {
            return Err(format!("{path}: no log line carries a job id >= 1"));
        }
        if !admitted || !done {
            return Err(format!(
                "{path}: job lifecycle incomplete (admitted: {admitted}, done: {done})"
            ));
        }
    }
    if !missing.is_empty() {
        return Err(format!(
            "{path}: required event(s) never logged: {}",
            missing.join(", ")
        ));
    }
    Ok(format!(
        "{path}: {lines} log lines valid{}{}",
        if require_jobs {
            format!(", {attributed} attributed to jobs")
        } else {
            String::new()
        },
        if require_events.is_empty() {
            String::new()
        } else {
            format!(", {} required event(s) present", require_events.len())
        }
    ))
}

/// Validates a Prometheus text exposition; returns a summary on success.
///
/// Accepts either the raw text (from `epocc --metrics-file`) or one
/// epocd `metrics` response line (`{"ok":true,"metrics":"..."}`) — the
/// line protocol JSON-escapes the multi-line exposition, so this is how
/// CI validates the live socket exposition without an unescaping shim.
fn check_metrics(path: &str, require_jobs: bool) -> Result<String, String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let source = if source.trim_start().starts_with('{') {
        let doc = Json::parse(source.trim())
            .map_err(|e| format!("{path} looks like JSON but does not parse: {e}"))?;
        match doc.get("metrics").and_then(Json::as_str) {
            Some(text) => text.to_string(),
            None => return Err(format!("{path}: JSON input has no \"metrics\" string field")),
        }
    } else {
        source
    };
    let mut samples = 0usize;
    let mut types = 0usize;
    let mut job_labels = false;
    let mut quantiles = false;
    for (i, line) in source.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            if !rest.trim_start().starts_with("TYPE ") {
                return Err(format!("{path}:{}: comment is not a # TYPE line", i + 1));
            }
            types += 1;
            continue;
        }
        // Sample line: `name{labels} value` or `name value`.
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("{path}:{}: no value on sample line", i + 1))?;
        value
            .parse::<f64>()
            .map_err(|_| format!("{path}:{}: non-numeric value '{value}'", i + 1))?;
        let name = series.split('{').next().unwrap_or(series);
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("{path}:{}: malformed metric name '{name}'", i + 1));
        }
        if !name.starts_with("epoc_") {
            return Err(format!("{path}:{}: name '{name}' lacks the epoc_ prefix", i + 1));
        }
        if series.contains("{job=\"") {
            job_labels = true;
        }
        if series.contains("quantile=\"") {
            quantiles = true;
        }
        samples += 1;
    }
    if samples == 0 {
        return Err(format!("{path}: no samples — was telemetry enabled?"));
    }
    if types == 0 {
        return Err(format!("{path}: no # TYPE headers"));
    }
    if require_jobs {
        if !job_labels {
            return Err(format!("{path}: no job=\"N\" labels in the exposition"));
        }
        if !quantiles {
            return Err(format!("{path}: no summary quantile samples"));
        }
    }
    Ok(format!(
        "{path}: {samples} samples, {types} type headers{}",
        if require_jobs { ", job labels + quantiles present" } else { "" }
    ))
}

fn main() -> ExitCode {
    let mut require_qoc = false;
    let mut require_recovery = false;
    let mut require_jobs = false;
    let mut require_events: Vec<String> = Vec::new();
    let mut log_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut path = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--require-qoc" => require_qoc = true,
            "--require-recovery" => require_recovery = true,
            "--require-jobs" => require_jobs = true,
            "--require-event" => match args.next() {
                Some(name) => require_events.push(name),
                None => return usage(),
            },
            "--log" => match args.next() {
                Some(p) => log_path = Some(p),
                None => return usage(),
            },
            "--metrics" => match args.next() {
                Some(p) => metrics_path = Some(p),
                None => return usage(),
            },
            other if other.starts_with('-') => return usage(),
            other => path = other.to_string(),
        }
    }
    if path.is_empty() && log_path.is_none() && metrics_path.is_none() {
        return usage();
    }

    let mut summaries = Vec::new();
    if !path.is_empty() {
        match check_trace(&path, require_qoc, require_recovery) {
            Ok(s) => summaries.push(s),
            Err(e) => return fail(&e),
        }
    }
    if !require_events.is_empty() && log_path.is_none() {
        eprintln!("trace_check: --require-event needs --log FILE");
        return usage();
    }
    if let Some(p) = &log_path {
        match check_log(p, require_jobs, &require_events) {
            Ok(s) => summaries.push(s),
            Err(e) => return fail(&e),
        }
    }
    if let Some(p) = &metrics_path {
        match check_metrics(p, require_jobs) {
            Ok(s) => summaries.push(s),
            Err(e) => return fail(&e),
        }
    }
    for s in summaries {
        println!("trace_check: OK: {s}");
    }
    ExitCode::SUCCESS
}

//! `trace_check` — structural validator for `epocc --trace` output.
//!
//! Parses a Chrome trace-event JSON file and asserts the invariants the
//! telemetry layer promises: a non-empty `traceEvents` array of well-formed
//! `"X"` events and one span per pipeline stage. The CI `trace-smoke` step
//! runs it against a fresh `epocc --trace` compile so a malformed or empty
//! trace fails the build instead of silently shipping.
//!
//! ```sh
//! trace_check trace.json                # stage spans only
//! trace_check --require-qoc trace.json  # also demand GRAPE/QSearch spans
//! trace_check --require-recovery trace.json  # demand recovery.* counters
//! ```
//!
//! `--require-recovery` backs the CI `chaos-smoke` step: a compile with
//! fault injection armed must surface its recovery ladder in the
//! `epocCounters` section, or degradation happened silently.

use epoc_rt::json::Json;
use std::process::ExitCode;

/// Stage spans every EPOC compile must emit (cat `"stage"`).
const STAGES: [&str; 5] = ["zx", "partition", "synth", "regroup", "pulse"];

fn fail(msg: &str) -> ExitCode {
    eprintln!("trace_check: FAIL: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut require_qoc = false;
    let mut require_recovery = false;
    let mut path = String::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--require-qoc" => require_qoc = true,
            "--require-recovery" => require_recovery = true,
            other if other.starts_with('-') => {
                eprintln!("usage: trace_check [--require-qoc] [--require-recovery] <trace.json>");
                return ExitCode::from(2);
            }
            other => path = other.to_string(),
        }
    }
    if path.is_empty() {
        eprintln!("usage: trace_check [--require-qoc] [--require-recovery] <trace.json>");
        return ExitCode::from(2);
    }

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match Json::parse(&source) {
        Ok(j) => j,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };

    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return fail("top-level \"traceEvents\" array missing");
    };
    if events.is_empty() {
        return fail("traceEvents is empty — was telemetry enabled?");
    }

    // Every event must be a complete ("X") event with the full field set
    // and lossless integer timestamps in args.
    let mut spans: Vec<(String, String)> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let name = match e.get("name").and_then(Json::as_str) {
            Some(n) => n.to_string(),
            None => return fail(&format!("event {i}: missing \"name\"")),
        };
        let cat = match e.get("cat").and_then(Json::as_str) {
            Some(c) => c.to_string(),
            None => return fail(&format!("event {i} ({name}): missing \"cat\"")),
        };
        if e.get("ph").and_then(Json::as_str) != Some("X") {
            return fail(&format!("event {i} ({name}): ph is not \"X\""));
        }
        for field in ["ts", "dur", "pid", "tid"] {
            if e.get(field).and_then(Json::as_f64).is_none() {
                return fail(&format!("event {i} ({name}): missing numeric \"{field}\""));
            }
        }
        let Some(args) = e.get("args") else {
            return fail(&format!("event {i} ({name}): missing \"args\""));
        };
        for field in ["ts_ns", "dur_ns", "depth"] {
            if args.get(field).and_then(Json::as_f64).is_none() {
                return fail(&format!("event {i} ({name}): missing args.{field}"));
            }
        }
        spans.push((cat, name));
    }

    for stage in STAGES {
        if !spans.iter().any(|(c, n)| c == "stage" && n == stage) {
            return fail(&format!("no \"stage\" span named \"{stage}\""));
        }
    }
    if require_qoc {
        for (cat, name) in [("qoc", "grape"), ("synth", "qsearch")] {
            if !spans.iter().any(|(c, n)| c == cat && n == name) {
                return fail(&format!("no \"{cat}\" span named \"{name}\""));
            }
        }
    }
    if require_recovery {
        let Some(Json::Obj(counters)) = doc.get("epocCounters") else {
            return fail("top-level \"epocCounters\" object missing");
        };
        if !counters.iter().any(|(k, _)| k.starts_with("recovery.")) {
            return fail("no recovery.* counter — did the armed faults trigger any ladder rung?");
        }
    }

    println!(
        "trace_check: OK: {} events, all {} stage spans present{}{}",
        events.len(),
        STAGES.len(),
        if require_qoc { ", grape + qsearch present" } else { "" },
        if require_recovery { ", recovery counters present" } else { "" }
    );
    ExitCode::SUCCESS
}

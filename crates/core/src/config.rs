//! EPOC pipeline configuration.

use epoc_partition::{PartitionConfig, RegroupConfig};
use epoc_qoc::{DurationModel, KeyPolicy, StoreConfig};
use epoc_synth::SynthConfig;

/// Which pulse backend the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Backend {
    /// Real GRAPE for blocks up to the given width, calibrated model
    /// beyond (slow but fully simulated).
    Hybrid {
        /// GRAPE width limit (1–4 practical).
        grape_limit: usize,
    },
    /// Calibrated duration model only (fast; used by the figure benches).
    Modeled,
}

/// Per-block recovery ladder: how the pipeline escalates when a stage
/// misses its target instead of failing the compile. Every climbed rung
/// is recorded in [`crate::StageStats::recoveries`] and counted under a
/// `recovery.*` telemetry counter; the records are byte-identical at any
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// QSearch non-convergence: how many times to retry the block with an
    /// escalated node budget before falling back to the structural
    /// lowering.
    pub synth_budget_escalations: usize,
    /// Node-budget multiplier per synthesis escalation.
    pub synth_budget_factor: usize,
    /// GRAPE below-threshold fidelity: restart-escalation rungs (doubled
    /// restarts, perturbed seed) before the slot rungs.
    pub grape_restart_escalations: usize,
    /// GRAPE slot-escalation rungs (doubled slot cap) before the digital
    /// fallback.
    pub grape_slot_escalations: usize,
    /// Fail the compile with a typed error instead of taking the digital
    /// fallback when the GRAPE ladder is exhausted.
    pub strict: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            synth_budget_escalations: 1,
            synth_budget_factor: 4,
            grape_restart_escalations: 1,
            grape_slot_escalations: 1,
            strict: false,
        }
    }
}

/// Full EPOC pipeline configuration.
#[derive(Debug, Clone)]
pub struct EpocConfig {
    /// Run the ZX graph-based depth optimization (§3.1).
    pub zx: bool,
    /// Skip the (whole-circuit) ZX pass beyond this gate count — graph
    /// rewriting on very large diagrams costs seconds and, on wide
    /// hardware-native programs, usually falls back anyway.
    pub zx_gate_limit: usize,
    /// Partitioning limits for the synthesis stage (§3.2).
    pub partition: PartitionConfig,
    /// Synthesis settings (§3.3); blocks wider than
    /// `synth_qubit_limit` are lowered structurally instead of searched.
    pub synth: SynthConfig,
    /// Width cap for numerical synthesis (2 keeps QSearch fast).
    pub synth_qubit_limit: usize,
    /// Regrouping (§3.3); `None` reproduces the "no grouping" arm of
    /// Figures 8–10.
    pub regroup: Option<RegroupConfig>,
    /// Pulse backend.
    pub backend: Backend,
    /// Pulse-cache key policy (§3.4 — EPOC uses phase-aware).
    pub key_policy: KeyPolicy,
    /// Calibrated duration model for the modeled/hybrid backend.
    pub duration_model: DurationModel,
    /// Verify the optimized circuit against the input by statevector
    /// probing when the register is small enough.
    pub verify: bool,
    /// Worker count for the parallel synthesis stage; `None` uses the
    /// machine's available parallelism. Reports are identical at any
    /// worker count (synthesis is deterministic per block and results
    /// merge in block order).
    pub workers: Option<usize>,
    /// Per-block recovery ladder for soft stage failures.
    pub recovery: RecoveryPolicy,
    /// Pulse-library storage tier (shard count and optional byte budget).
    /// The default single-lock unbounded map suits one-shot `epocc` runs;
    /// `epocd` shards and budgets the library for long-running service
    /// use.
    pub store: StoreConfig,
    /// Control-electronics model (`None` = ideal electronics). When set,
    /// GRAPE optimizes *under* the profile's constraints, emitted
    /// waveforms are conditioned (slew-clip → quantize → filter →
    /// crosstalk) at schedule emission, the simulator replays the
    /// conditioned pulse, and the pulse-library cache keys are scoped to
    /// the profile.
    pub hw: Option<epoc_hw::HardwareProfile>,
}

impl Default for EpocConfig {
    fn default() -> Self {
        Self {
            zx: true,
            zx_gate_limit: 4000,
            partition: PartitionConfig {
                max_qubits: 3,
                max_gates: 24,
            },
            synth: SynthConfig::default(),
            synth_qubit_limit: 2,
            // Two-qubit regrouped blocks: wide blocks occupy all their
            // qubit lines for the whole pulse, losing cross-block
            // parallelism under the (sub)linear duration model, so 2
            // qubits with a moderate gate budget is the sweet spot.
            regroup: Some(RegroupConfig {
                max_qubits: 2,
                max_gates: 8,
            }),
            backend: Backend::Modeled,
            key_policy: KeyPolicy::PhaseAware,
            duration_model: DurationModel::default(),
            verify: true,
            workers: None,
            recovery: RecoveryPolicy::default(),
            store: StoreConfig::default(),
            hw: None,
        }
    }
}

impl EpocConfig {
    /// A fast configuration for tests and interactive use: modeled
    /// backend, small search budgets.
    pub fn fast() -> Self {
        Self {
            synth: SynthConfig {
                max_nodes: 40,
                max_cnots: 6,
                ..SynthConfig::default()
            },
            ..Self::default()
        }
    }

    /// The paper-faithful configuration with real GRAPE on narrow blocks.
    pub fn with_grape(grape_limit: usize) -> Self {
        Self {
            backend: Backend::Hybrid { grape_limit },
            ..Self::default()
        }
    }

    /// Disables regrouping (the "without grouping" arm of Figures 8–10).
    pub fn without_regrouping(mut self) -> Self {
        self.regroup = None;
        self
    }

    /// Pins the synthesis worker count (1 = fully sequential).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Strict mode: an exhausted GRAPE recovery ladder fails the compile
    /// with [`crate::EpocError`] instead of degrading to the digital
    /// fallback.
    pub fn strict(mut self) -> Self {
        self.recovery.strict = true;
        self
    }

    /// Selects the pulse-library storage tier (see [`StoreConfig`]).
    pub fn with_store(mut self, store: StoreConfig) -> Self {
        self.store = store;
        self
    }

    /// Compiles under a control-electronics model (see
    /// [`epoc_hw::HardwareProfile`]).
    pub fn with_hw(mut self, profile: epoc_hw::HardwareProfile) -> Self {
        self.hw = Some(profile);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_regrouping_and_zx() {
        let c = EpocConfig::default();
        assert!(c.zx);
        assert!(c.regroup.is_some());
        assert_eq!(c.key_policy, KeyPolicy::PhaseAware);
    }

    #[test]
    fn without_regrouping_clears_it() {
        let c = EpocConfig::default().without_regrouping();
        assert!(c.regroup.is_none());
    }

    #[test]
    fn strict_builder_sets_recovery_flag() {
        assert!(!EpocConfig::default().recovery.strict);
        assert!(EpocConfig::default().strict().recovery.strict);
    }

    #[test]
    fn with_grape_selects_hybrid() {
        match EpocConfig::with_grape(2).backend {
            Backend::Hybrid { grape_limit } => assert_eq!(grape_limit, 2),
            b => panic!("unexpected backend {b:?}"),
        }
    }
}

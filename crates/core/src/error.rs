//! Typed pipeline errors.
//!
//! [`EpocError`] is the single error type [`crate::EpocCompiler::compile`]
//! returns. Every variant wraps the typed error of the stage that failed,
//! so callers can distinguish malformed inputs ([`EpocError::Synth`]) from
//! numerical breakdown ([`EpocError::Grape`]) from scheduling failures
//! ([`EpocError::Schedule`], which includes strict-mode fidelity misses).
//!
//! Soft failures — QSearch running out of node budget, GRAPE missing the
//! fidelity target — are *not* errors: the pipeline climbs the
//! [recovery ladder](crate::RecoveryPolicy) and records the rungs in
//! [`crate::StageStats::recoveries`]. Only strict mode promotes an
//! exhausted ladder to an error.

use epoc_qoc::{GrapeError, LibraryError, PulseError};
use epoc_rt::cancel::CancelReason;
use epoc_synth::SynthError;

/// A pulse-generation failure during schedule assembly, tagged with the
/// block it happened on.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleError {
    /// Index of the failing block in the pulse-stage partition.
    pub block: usize,
    /// The underlying pulse failure.
    pub source: PulseError,
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "block {}: {}", self.block, self.source)
    }
}

impl std::error::Error for ScheduleError {}

/// A compilation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EpocError {
    /// Block synthesis failed (malformed block unitary or a lowering
    /// defect).
    Synth(SynthError),
    /// A GRAPE run failed outright (bad inputs or numerical breakdown).
    Grape(GrapeError),
    /// Pulse scheduling failed on a specific block (device build,
    /// missing unitary, or a strict-mode fidelity miss).
    Schedule(ScheduleError),
    /// Persisting or restoring the pulse library failed (I/O, a torn or
    /// corrupted file, or a key-policy mismatch). Load failures are
    /// recoverable: the caller reports the error and compiles with a cold
    /// cache.
    Library(LibraryError),
    /// The job was cancelled (an explicit cancel, e.g. a service drain).
    /// Hard: the partial result is discarded, never scheduled.
    Canceled,
    /// The job's wall-clock deadline passed. Hard and typed rather than
    /// degraded: a deadline check is time-dependent, so letting it bend
    /// the output would break byte-determinism across machines.
    DeadlineExceeded,
}

impl EpocError {
    /// Wraps a pulse failure from scheduling `block`, routing GRAPE
    /// failures to [`EpocError::Grape`] and hard cancellations to the
    /// top-level [`EpocError::Canceled`]/[`EpocError::DeadlineExceeded`].
    pub(crate) fn from_pulse(block: usize, source: PulseError) -> Self {
        match source {
            PulseError::Grape(g) => Self::from(g),
            source => Self::Schedule(ScheduleError { block, source }),
        }
    }

    /// The top-level variant for a hard cancellation reason.
    pub fn from_cancel(reason: CancelReason) -> Self {
        match reason {
            CancelReason::Canceled => Self::Canceled,
            CancelReason::DeadlineExceeded => Self::DeadlineExceeded,
        }
    }
}

impl std::fmt::Display for EpocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Synth(e) => write!(f, "synthesis: {e}"),
            Self::Grape(e) => write!(f, "grape: {e}"),
            Self::Schedule(e) => write!(f, "schedule: {e}"),
            Self::Library(e) => write!(f, "library: {e}"),
            Self::Canceled => write!(f, "job canceled"),
            Self::DeadlineExceeded => write!(f, "job deadline exceeded"),
        }
    }
}

impl std::error::Error for EpocError {}

impl From<SynthError> for EpocError {
    fn from(e: SynthError) -> Self {
        match e {
            SynthError::Canceled(reason) => Self::from_cancel(reason),
            e => Self::Synth(e),
        }
    }
}

impl From<GrapeError> for EpocError {
    fn from(e: GrapeError) -> Self {
        match e {
            GrapeError::Canceled(reason) => Self::from_cancel(reason),
            e => Self::Grape(e),
        }
    }
}

impl From<LibraryError> for EpocError {
    fn from(e: LibraryError) -> Self {
        Self::Library(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stage_and_block() {
        let e = EpocError::Synth(SynthError::NotSquare);
        assert!(e.to_string().starts_with("synthesis:"));
        let e = EpocError::from_pulse(3, PulseError::MissingUnitary);
        assert!(e.to_string().contains("block 3"), "{e}");
    }

    #[test]
    fn grape_pulse_errors_route_to_grape_variant() {
        let g = GrapeError::NoSlots;
        let e = EpocError::from_pulse(0, PulseError::Grape(g.clone()));
        assert_eq!(e, EpocError::Grape(g));
    }

    #[test]
    fn hard_cancellations_surface_as_top_level_variants() {
        let e = EpocError::from(SynthError::Canceled(CancelReason::DeadlineExceeded));
        assert_eq!(e, EpocError::DeadlineExceeded);
        let e = EpocError::from(GrapeError::Canceled(CancelReason::Canceled));
        assert_eq!(e, EpocError::Canceled);
        let e = EpocError::from_pulse(
            2,
            PulseError::Grape(GrapeError::Canceled(CancelReason::DeadlineExceeded)),
        );
        assert_eq!(e, EpocError::DeadlineExceeded);
        assert!(e.to_string().contains("deadline"));
    }
}

//! # epoc — an Efficient Pulse generation framework with advanced
//! synthesis for quantum Circuits
//!
//! A from-scratch Rust reproduction of the EPOC pipeline (DAC 2025):
//! ZX-calculus depth optimization → greedy circuit partitioning →
//! QSearch-style VUG synthesis → regrouping → GRAPE-based quantum optimal
//! control with a global-phase-aware pulse library → ASAP pulse schedule.
//!
//! ## Quickstart
//!
//! ```
//! use epoc::{EpocCompiler, EpocConfig};
//! use epoc_circuit::generators;
//!
//! let compiler = EpocCompiler::new(EpocConfig::fast());
//! let report = compiler.compile(&generators::ghz(3)).unwrap();
//! assert!(report.verified);
//! println!("{}", report.summary());
//! ```
//!
//! Comparator flows for the paper's Table 1 live in [`baselines`]; the
//! subsystem crates (`epoc-zx`, `epoc-synth`, `epoc-qoc`, …) are
//! re-exported for convenience.

#![warn(missing_docs)]

pub mod baselines;
mod config;
mod error;
mod pipeline;
mod report;
mod simulate;

pub use config::{Backend, EpocConfig, RecoveryPolicy};
pub use error::{EpocError, ScheduleError};
pub use pipeline::{compile_default, is_compilable, EpocCompiler};
pub use report::{
    CompilationReport, HardwareStats, RecoveryRecord, StageStats, StageTimings, RUNG_HW_DIGITAL,
    RUNG_SCHEDULE_RECOMPUTE, RUNG_SYNTH_BUDGET, RUNG_SYNTH_FALLBACK,
};
pub use simulate::{simulate_schedule, SimulationStats};

// Pulse-library storage/persistence types, re-exported so service code
// can configure the tiers without importing `epoc_qoc` directly.
pub use epoc_qoc::{LibraryError, StoreConfig, StoreTier};

pub use epoc_circuit as circuit;
pub use epoc_hw as hw;
pub use epoc_linalg as linalg;
pub use epoc_partition as partition;
pub use epoc_pulse as pulse;
pub use epoc_qoc as qoc;
pub use epoc_sim as sim;
pub use epoc_synth as synth;
pub use epoc_zx as zx;

//! The EPOC compilation pipeline (Figure 3, right column).
//!
//! ```text
//! circuit ──ZX──▶ optimized ──partition──▶ blocks ──synthesize──▶ VUG
//! stream ──regroup──▶ QOC-sized blocks ──pulse backend──▶ schedule
//! ```
//!
//! Synthesis fans blocks out over a fixed worker pool (the paper's "local
//! entanglement and unitary calculations … executed in parallel").

use crate::config::{Backend, EpocConfig};
use crate::error::EpocError;
use crate::report::{
    CompilationReport, HardwareStats, RecoveryRecord, StageStats, RUNG_HW_DIGITAL,
    RUNG_SCHEDULE_RECOMPUTE, RUNG_SYNTH_BUDGET, RUNG_SYNTH_FALLBACK,
};
use epoc_circuit::{circuits_equivalent, Circuit, Gate};
use epoc_linalg::Matrix;
use epoc_partition::{greedy_partition, regroup, Partition, PartitionConfig};
use epoc_pulse::{FrameUpdate, PulsePayload, PulseSchedule, ScheduledPulse};
use std::sync::Arc;
use epoc_qoc::{
    GrapeSynthesizer, HybridSynthesizer, ModeledSynthesizer, PulseError, PulseRequest,
    PulseSynthesizer, RecoveredPulse,
};
use epoc_rt::cancel::CancelToken;
use epoc_synth::{lower_to_vug_form, synthesize_with_cancel, SynthError};
use epoc_zx::zx_optimize;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Instant;

/// Register width above which semantic verification is skipped.
const VERIFY_LIMIT: usize = 10;
/// Block width above which the dense unitary is not materialized.
const DENSE_LIMIT: usize = 8;

pub(crate) enum BackendImpl {
    Hybrid(Box<HybridSynthesizer>),
    Modeled(Box<ModeledSynthesizer>),
}

impl BackendImpl {
    pub(crate) fn new(config: &EpocConfig) -> Self {
        match config.backend {
            Backend::Hybrid { grape_limit } => {
                // Plumb the pipeline worker count down into GRAPE itself:
                // its per-timeslot parallelism is bit-deterministic at any
                // worker count, so this only changes speed, never output.
                let mut search = epoc_qoc::DurationSearchConfig::default();
                search.grape.workers = config
                    .workers
                    .unwrap_or_else(epoc_rt::pool::default_workers);
                // Constrained compilation: GRAPE optimizes *under* the
                // control-electronics model so the kept fidelity is the
                // conditioned one (see `epoc_qoc::GrapeConfig::hw`).
                search.grape.hw = config.hw.clone();
                search.recovery = epoc_qoc::GrapeRecoveryPolicy {
                    restart_escalations: config.recovery.grape_restart_escalations,
                    slot_escalations: config.recovery.grape_slot_escalations,
                    strict: config.recovery.strict,
                };
                BackendImpl::Hybrid(Box::new(HybridSynthesizer::with_search_store(
                    config.key_policy,
                    search,
                    grape_limit,
                    config.duration_model,
                    &config.store,
                )))
            }
            Backend::Modeled => {
                BackendImpl::Modeled(Box::new(ModeledSynthesizer::with_store_config(
                    config.duration_model,
                    config.key_policy,
                    &config.store,
                )))
            }
        }
    }

    /// The backend's pulse libraries as named persistence sections
    /// (hybrid backends have two caches, modeled backends one).
    pub(crate) fn library_sections(&self) -> Vec<(&'static str, &epoc_qoc::PulseLibrary)> {
        match self {
            BackendImpl::Hybrid(h) => {
                vec![("grape", h.grape().library()), ("model", h.modeled().library())]
            }
            BackendImpl::Modeled(m) => vec![("model", m.library())],
        }
    }

    /// The GRAPE sub-backend, when this backend has one.
    fn grape_backend(&self) -> Option<&GrapeSynthesizer> {
        match self {
            BackendImpl::Hybrid(h) => Some(h.grape()),
            BackendImpl::Modeled(_) => None,
        }
    }

    pub(crate) fn pulse(
        &self,
        req: &PulseRequest<'_>,
    ) -> Result<epoc_qoc::PulseEntry, PulseError> {
        match self {
            BackendImpl::Hybrid(h) => h.pulse(req),
            BackendImpl::Modeled(m) => m.pulse(req),
        }
    }

    pub(crate) fn cache_counts(&self) -> (usize, usize) {
        match self {
            BackendImpl::Hybrid(h) => (h.cache_hits(), h.cache_misses()),
            BackendImpl::Modeled(m) => (m.library().hits(), m.library().misses()),
        }
    }

    /// `(iterations, probes)` spent by the GRAPE sub-backend so far
    /// (`(0, 0)` for the modeled backend).
    pub(crate) fn grape_stats(&self) -> (usize, usize) {
        match self.grape_backend() {
            Some(g) => (g.total_iterations(), g.total_probes()),
            None => (0, 0),
        }
    }
}

/// Generates the ASAP pulse schedule for a partition, one pulse per block.
///
/// The expensive work — dense block unitaries and GRAPE duration searches
/// for cache-missing blocks — fans out over `workers` threads; everything
/// that is observable (the schedule and the library's hit/miss counters)
/// is replayed serially in block order afterwards, so the output is
/// byte-identical to the sequential pipeline at any worker count:
///
/// 1. **materialize** every dense block unitary in parallel (pure);
/// 2. **classify** serially with counter-free peeks: the first occurrence
///    of each GRAPE-routed cache key not already in the library becomes a
///    compute job (later duplicates will hit once the first is inserted);
/// 3. **compute** the jobs in parallel (each is deterministic and touches
///    no shared state);
/// 4. **replay** serially: every block performs the same lookup/insert
///    sequence the serial pipeline would, taking precomputed entries at
///    first-miss positions.
pub(crate) fn schedule_partition(
    partition: &Partition,
    backend: &BackendImpl,
    workers: usize,
    hw: Option<&epoc_hw::HardwareProfile>,
    recoveries: &mut Vec<RecoveryRecord>,
    cancel: &CancelToken,
) -> Result<PulseSchedule, EpocError> {
    let blocks = partition.blocks();
    // Conditioning state for stage 4 (serial, so a single reusable
    // workspace and a fixed fault-counter draw order keep the schedule
    // byte-identical at any worker count). The amplitude bound matches
    // the GRAPE device model the waveforms were optimized against.
    let a_max = epoc_qoc::DeviceModel::transmon_line(1)
        .expect("single-qubit transmon line is always well-formed")
        .max_amplitude();
    let mut hw_ws = epoc_hw::ConditionWorkspace::new();

    // Stage 1: dense unitaries (pure function of each block).
    let unitaries: Vec<Option<Matrix>> =
        epoc_rt::pool::parallel_map(blocks, workers, |_, block| {
            (!block.is_empty() && block.n_qubits() <= DENSE_LIMIT).then(|| block.unitary())
        });

    // A block goes to GRAPE when the hybrid backend exists, its width is
    // within the GRAPE cap, and its dense unitary was materialized —
    // mirroring `HybridSynthesizer::pulse` routing.
    let grape_route = |i: usize| -> Option<(&GrapeSynthesizer, &Matrix)> {
        let grape = backend.grape_backend()?;
        let u = unitaries[i].as_ref()?;
        (blocks[i].n_qubits() <= grape.max_qubits()).then_some((grape, u))
    };

    // Stage 2: serial classification with counter-free peeks.
    let mut claimed = std::collections::HashSet::new();
    let jobs: Vec<usize> = (0..blocks.len())
        .filter(|&i| {
            !blocks[i].is_empty()
                && grape_route(i).is_some_and(|(grape, u)| {
                    grape.library().peek(u).is_none()
                        && claimed.insert(grape.library().cache_key(u))
                })
        })
        .collect();

    // Stage 3: parallel GRAPE on the deduplicated misses. Each job's
    // route was established during classification; a `None` here would
    // mean the invariant broke, and stage 4's recompute path absorbs it
    // instead of panicking.
    // Each block charges a fresh per-block scope, so budget accounting is
    // independent of how jobs are distributed across workers.
    let computed = epoc_rt::pool::parallel_map(&jobs, workers, |_, &i| {
        grape_route(i).map(|(grape, u)| {
            grape.compute_uncached_with_cancel(blocks[i].n_qubits(), u, &cancel.scope())
        })
    });
    let mut precomputed: HashMap<usize, Result<RecoveredPulse, PulseError>> = jobs
        .into_iter()
        .zip(computed)
        .filter_map(|(i, r)| r.map(|r| (i, r)))
        .collect();

    // Stage 4: serial replay in block order.
    let mut schedule = PulseSchedule::new(partition.n_qubits());
    let mut line_free = vec![0.0f64; partition.n_qubits()];
    for (i, block) in blocks.iter().enumerate() {
        if block.is_empty() {
            continue;
        }
        let entry = match grape_route(i) {
            Some((grape, u)) => match grape.library().lookup(u) {
                Some(entry) => entry,
                None => {
                    // A miss normally finds its precomputed pulse here.
                    // When it doesn't — a deduplicated twin whose insert
                    // was lost, or a forced cache miss — recompute in
                    // place rather than fail the compile.
                    let recovered = match precomputed.remove(&i) {
                        Some(r) => r,
                        None => {
                            recoveries.push(RecoveryRecord {
                                stage: "schedule",
                                subject: format!("blk{i}"),
                                rung: RUNG_SCHEDULE_RECOMPUTE,
                            });
                            epoc_rt::telemetry::counter_add(RUNG_SCHEDULE_RECOMPUTE, 1);
                            grape.compute_uncached_with_cancel(
                                block.n_qubits(),
                                u,
                                &cancel.scope(),
                            )
                        }
                    }
                    .map_err(|e| EpocError::from_pulse(i, e))?;
                    for &rung in &recovered.rungs {
                        recoveries.push(RecoveryRecord {
                            stage: "pulse",
                            subject: format!("blk{i}"),
                            rung,
                        });
                        epoc_rt::telemetry::counter_add(rung, 1);
                    }
                    // A digital fallback produced under an active work
                    // budget may exist only because the budget ran out —
                    // keep it out of the (persistent) library so a later
                    // unbudgeted job is not poisoned by it. Deterministic:
                    // the condition depends only on the entry and the
                    // job's token, never on timing or worker count.
                    if recovered.entry.waveform.is_some() || !cancel.has_budget() {
                        grape.library().insert(u, recovered.entry.clone());
                    }
                    recovered.entry
                }
            },
            None => backend
                .pulse(&PulseRequest {
                    n_qubits: block.n_qubits(),
                    unitary: unitaries[i].as_ref(),
                    local_circuit: Some(block.circuit()),
                })
                .map_err(|e| EpocError::from_pulse(i, e))?,
        };
        let start = block
            .qubits()
            .iter()
            .map(|&q| line_free[q])
            .fold(0.0f64, f64::max);
        if entry.duration <= 0.0 {
            // Purely virtual block: no physical pulse, no time — but the
            // simulator still needs its unitary to compose the evolution.
            schedule.push_frame(FrameUpdate {
                qubits: block.qubits().to_vec(),
                time: start,
                unitary: unitaries[i].as_ref().map(|u| Arc::new(u.clone())),
                label: format!("blk{i}"),
            });
            continue;
        }
        for &q in block.qubits() {
            line_free[q] = start + entry.duration;
        }
        // Replay information for epoc-sim: the GRAPE waveform when one was
        // synthesized, else the dense block unitary as an exact step. Under
        // a hardware profile the *conditioned* waveform is emitted — the
        // library keeps raw controls (conditioning is not idempotent), so
        // the distortion is applied exactly once, here.
        let payload = match (&entry.waveform, unitaries[i].as_ref()) {
            (Some(w), u) => match hw {
                Some(profile) => {
                    if epoc_rt::faults::fail_point("hw.condition") {
                        recoveries.push(RecoveryRecord {
                            stage: "hw",
                            subject: format!("blk{i}"),
                            rung: RUNG_HW_DIGITAL,
                        });
                        epoc_rt::telemetry::counter_add(RUNG_HW_DIGITAL, 1);
                        match u {
                            Some(u) => PulsePayload::Unitary(Arc::new(u.clone())),
                            None => PulsePayload::Opaque,
                        }
                    } else {
                        let mut controls = w.controls().to_vec();
                        profile.condition_controls(w.dt(), a_max, &mut controls, &mut hw_ws);
                        PulsePayload::Waveform(Arc::new(epoc_qoc::PulseWaveform::new(
                            w.dt(),
                            controls,
                        )))
                    }
                }
                None => PulsePayload::Waveform(Arc::clone(w)),
            },
            (None, Some(u)) => PulsePayload::Unitary(Arc::new(u.clone())),
            (None, None) => PulsePayload::Opaque,
        };
        schedule.push(ScheduledPulse {
            qubits: block.qubits().to_vec(),
            start,
            duration: entry.duration,
            fidelity: entry.fidelity,
            label: format!("blk{i}"),
            payload,
        });
    }
    Ok(schedule)
}

/// The EPOC compiler: holds the configuration and the (cache-bearing)
/// pulse backend, which persists across [`EpocCompiler::compile`] calls —
/// the paper's pulse library grows over a workload.
pub struct EpocCompiler {
    config: EpocConfig,
    backend: BackendImpl,
    /// Synthesis memo: identical block unitaries (up to global phase)
    /// reuse the previously synthesized local circuit. The node count and
    /// recovery rungs of the first computation ride along; cache hits
    /// replay them so `StageStats::qsearch_nodes` and
    /// `StageStats::recoveries` are independent of which worker computed
    /// a block first.
    synth_cache: Mutex<HashMap<epoc_linalg::UnitaryKey, SynthOutcome>>,
}

/// Per-block synthesis outcome: the kept local circuit, whether QSearch
/// converged, the nodes spent, and the recovery rungs climbed.
type SynthOutcome = (Circuit, bool, usize, Vec<&'static str>);

impl EpocCompiler {
    /// Creates a compiler from a configuration.
    pub fn new(config: EpocConfig) -> Self {
        let backend = BackendImpl::new(&config);
        Self {
            config,
            backend,
            synth_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EpocConfig {
        &self.config
    }

    /// Compiles a circuit to a pulse schedule, returning the full report.
    ///
    /// Soft stage failures (QSearch budget exhaustion, GRAPE fidelity
    /// misses, lost cache entries) are recovered through the configured
    /// [`crate::RecoveryPolicy`] ladder and recorded in
    /// [`StageStats::recoveries`]; only malformed inputs, numerical
    /// breakdown, or a strict-mode ladder exhaustion return an error.
    ///
    /// # Errors
    ///
    /// Returns [`EpocError`] naming the failing stage and block.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompilationReport, EpocError> {
        self.compile_with_cancel(circuit, &CancelToken::default())
    }

    /// [`EpocCompiler::compile`] under a cooperative-cancellation token.
    ///
    /// The token's hard conditions (cancel flag, wall-clock deadline) are
    /// polled at stage boundaries and inside the optimizer hot loops; a
    /// trip surfaces as [`EpocError::Canceled`] /
    /// [`EpocError::DeadlineExceeded`] and discards the partial compile.
    /// The token's work budgets are charged *per block* through fresh
    /// [`epoc_rt::cancel::CancelScope`]s: exhaustion degrades a block
    /// through the normal recovery ladder (QSearch falls back to the
    /// block's own gates, GRAPE to the digital model), so a budgeted
    /// compile either fails typed or produces a report that is
    /// byte-identical at any worker count.
    ///
    /// # Errors
    ///
    /// All of [`EpocCompiler::compile`]'s errors, plus the two
    /// cancellation variants.
    pub fn compile_with_cancel(
        &self,
        circuit: &Circuit,
        cancel: &CancelToken,
    ) -> Result<CompilationReport, EpocError> {
        let t0 = Instant::now();
        let mut stages = StageStats::default();
        let (hits0, misses0) = self.backend.cache_counts();
        let (grape_iters0, grape_probes0) = self.backend.grape_stats();
        // Stage-boundary poll: cheap serial stages (zx, partition,
        // regroup) are not internally cancellable, so the hard conditions
        // are re-checked between stages.
        let checkpoint = || match cancel.hard_reason() {
            Some(reason) => Err(EpocError::from_cancel(reason)),
            None => Ok(()),
        };
        checkpoint()?;

        // Transpile to the hardware basis first — every flow prices the
        // same physical gate stream (see `epoc_circuit::lower_to_basis`).
        let basis = epoc_circuit::lower_to_basis(circuit);

        // §3.1 — graph-based depth optimization.
        let stage_span = epoc_rt::telemetry::span("stage", "zx");
        let stage_t = Instant::now();
        stages.zx_depth_before = basis.depth();
        let optimized = if self.config.zx && basis.len() <= self.config.zx_gate_limit {
            let r = zx_optimize(&basis);
            stages.zx_depth_after = r.depth_after;
            stages.zx_rewrites = r.rewrites;
            r.circuit
        } else {
            stages.zx_depth_after = stages.zx_depth_before;
            basis.clone()
        };
        stages.gates_after_zx = optimized.len();
        stages.timings.zx = stage_t.elapsed();
        drop(stage_span);

        // §3.2 — greedy partitioning for synthesis.
        let stage_span = epoc_rt::telemetry::span("stage", "partition");
        let stage_t = Instant::now();
        let partition = greedy_partition(&optimized, self.config.partition);
        stages.synth_blocks = partition.len();
        stages.timings.partition = stage_t.elapsed();
        drop(stage_span);

        // §3.3 — VUG-based synthesis across the worker pool.
        checkpoint()?;
        let stage_span = epoc_rt::telemetry::span("stage", "synth");
        let stage_t = Instant::now();
        let synth_cfg = &self.config.synth;
        let limit = self.config.synth_qubit_limit;
        let blocks = partition.blocks();
        let gate_table = self.config.duration_model.gate_table;
        let recovery = self.config.recovery;
        let cache = &self.synth_cache;
        let synthesize_block =
            |block: &epoc_partition::Block| -> Result<SynthOutcome, SynthError> {
                if block.n_qubits() > limit {
                    return Ok((lower_to_vug_form(block.circuit())?, false, 0, Vec::new()));
                }
                let unitary = block.unitary();
                let key = epoc_linalg::UnitaryKey::new(&unitary);
                // Bind the lookup before the branch: an inline `cache.lock()`
                // in the `if let` scrutinee would hold the guard through the
                // `else` and self-deadlock. The lock recovers from poison:
                // the memo only ever holds fully-formed entries, so state
                // left by a panicked worker is still valid.
                let cached = cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get(&key)
                    .cloned();
                if let Some(hit) = cached {
                    return Ok(hit);
                }
                // Base attempt, then the budget-escalation rungs: QSearch
                // non-convergence is soft, so retry with a multiplied node
                // budget before settling for the structural fallback. The
                // raw `synthesize` (not `synthesize_or_fallback`, which
                // reports its own fallback as converged) keeps the true
                // convergence state visible to the ladder. One cancel
                // scope spans every attempt for the block: once its node
                // budget is spent, each escalation returns immediately
                // and the ladder falls through to the fallback.
                let scope = cancel.scope();
                let mut cfg = synth_cfg.clone();
                let mut rungs: Vec<&'static str> = Vec::new();
                let mut r = synthesize_with_cancel(&unitary, &cfg, &scope)?;
                let mut nodes = r.nodes_evaluated;
                for _ in 0..recovery.synth_budget_escalations {
                    if r.converged {
                        break;
                    }
                    cfg.max_nodes = cfg.max_nodes.saturating_mul(recovery.synth_budget_factor);
                    rungs.push(RUNG_SYNTH_BUDGET);
                    r = synthesize_with_cancel(&unitary, &cfg, &scope)?;
                    nodes += r.nodes_evaluated;
                }
                // Synthesis is only worth keeping when its VUG/CNOT structure
                // is actually cheaper in pulse time than the block's own gates
                // (QSearch minimizes CNOTs, not the physical single-qubit
                // pulses it sprinkles around).
                let original = lower_to_vug_form(block.circuit())?;
                let entry = if r.converged
                    && gate_table.critical_path(&r.circuit) <= gate_table.critical_path(&original)
                {
                    (r.circuit, true, nodes, rungs)
                } else {
                    if !r.converged && !rungs.is_empty() {
                        rungs.push(RUNG_SYNTH_FALLBACK);
                    }
                    (original, false, nodes, rungs)
                };
                cache
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(key, entry.clone());
                Ok(entry)
            };
        // Fan the blocks out over a fixed worker crew (not a thread per
        // block, which would spawn thousands of OS threads on large
        // circuits). Per-block synthesis is deterministic under the
        // configured seed and results merge in block order, so the output
        // is identical at any worker count.
        let n_workers = self
            .config
            .workers
            .unwrap_or_else(epoc_rt::pool::default_workers);
        let results = epoc_rt::pool::parallel_map(blocks, n_workers, |_, block| {
            synthesize_block(block)
        });
        let mut vug_stream = Circuit::new(optimized.n_qubits());
        for (i, (block, result)) in blocks.iter().zip(results).enumerate() {
            let (local, converged, nodes, rungs) = result?;
            if converged {
                stages.synth_converged += 1;
            }
            stages.qsearch_nodes += nodes;
            for rung in rungs {
                stages.recoveries.push(RecoveryRecord {
                    stage: "synth",
                    subject: format!("blk{i}"),
                    rung,
                });
                epoc_rt::telemetry::counter_add(rung, 1);
            }
            vug_stream.extend_mapped(&local, block.qubits());
        }
        stages.vug_stream_gates = vug_stream.len();
        stages.timings.synth = stage_t.elapsed();
        drop(stage_span);

        // §3.3 — regrouping (or per-gate pulses when disabled).
        let stage_span = epoc_rt::telemetry::span("stage", "regroup");
        let stage_t = Instant::now();
        let final_partition = match self.config.regroup {
            Some(cfg) => regroup(&vug_stream, cfg),
            None => greedy_partition(
                &vug_stream,
                PartitionConfig {
                    max_qubits: 2,
                    max_gates: 1,
                },
            ),
        };
        stages.timings.regroup = stage_t.elapsed();
        drop(stage_span);

        // §3.4 — pulse generation through the backend + cache, fanned out
        // over the same worker crew as synthesis.
        checkpoint()?;
        let stage_span = epoc_rt::telemetry::span("stage", "pulse");
        let stage_t = Instant::now();
        let mut pulse_recoveries = Vec::new();
        // The identity (`ideal`) profile conditions nothing and hashes to
        // 0, so compiling under it is byte-identical to no profile at all.
        let hw_active = self.config.hw.as_ref().filter(|p| !p.is_identity());
        let schedule = schedule_partition(
            &final_partition,
            &self.backend,
            n_workers,
            hw_active,
            &mut pulse_recoveries,
            cancel,
        )?;
        stages.recoveries.append(&mut pulse_recoveries);
        stages.pulses = schedule.len();
        let (hits1, misses1) = self.backend.cache_counts();
        stages.cache_hits = hits1.saturating_sub(hits0);
        stages.cache_misses = misses1.saturating_sub(misses0);
        let (grape_iters1, grape_probes1) = self.backend.grape_stats();
        stages.grape_iterations = grape_iters1.saturating_sub(grape_iters0);
        stages.grape_probes = grape_probes1.saturating_sub(grape_probes0);
        stages.timings.pulse = stage_t.elapsed();
        drop(stage_span);

        // Verification: the synthesized stream must implement the input.
        let (verified, verify_skipped) = if !self.config.verify {
            (false, true)
        } else if circuit.n_qubits() <= VERIFY_LIMIT {
            (circuits_equivalent(circuit, &vug_stream, 1e-3), false)
        } else {
            (false, true)
        };

        // Control-electronics summary: the conditioned-pulse count reads
        // the schedule (fault-degraded blocks carry no waveform, so they
        // are not counted), and the hash is the cache-key scope.
        let hardware = self.config.hw.as_ref().map(|p| HardwareStats {
            profile: p.name.clone(),
            profile_hash: epoc_hw::profile_hash(Some(p)),
            conditioned_pulses: if p.is_identity() { 0 } else { schedule.waveform_count() },
            sfq: p.sfq.is_some(),
        });

        Ok(CompilationReport {
            flow: "epoc".into(),
            n_qubits: circuit.n_qubits(),
            gates_in: circuit.len(),
            schedule,
            compile_time: t0.elapsed(),
            stages,
            verified,
            verify_skipped,
            hardware,
            simulation: None,
        })
    }

    /// The backend's pulse libraries as named persistence sections — the
    /// same names [`EpocCompiler::save_library`] writes ("grape" and
    /// "model" for hybrid backends, "model" alone for modeled ones).
    /// Services use this to wire write-ahead journaling and replay
    /// around the checkpoint cycle.
    pub fn library_sections(&self) -> Vec<(&'static str, &epoc_qoc::PulseLibrary)> {
        self.backend.library_sections()
    }

    /// Combined pulse-cache hit count since construction.
    pub fn cache_hits(&self) -> usize {
        self.backend.cache_counts().0
    }

    /// Combined pulse-cache miss count since construction.
    pub fn cache_misses(&self) -> usize {
        self.backend.cache_counts().1
    }

    /// Total entries across the backend's pulse libraries.
    pub fn library_len(&self) -> usize {
        self.backend
            .library_sections()
            .iter()
            .map(|(_, lib)| lib.len())
            .sum()
    }

    /// Entries evicted by the pulse libraries' storage tier so far (0
    /// unless a byte budget is configured).
    pub fn library_evictions(&self) -> u64 {
        self.backend
            .library_sections()
            .iter()
            .map(|(_, lib)| lib.evictions())
            .sum()
    }

    /// Estimated resident bytes across the backend's pulse libraries —
    /// the same estimate the budgeted tier evicts against, exposed so
    /// services can report live memory pressure.
    pub fn library_bytes(&self) -> u64 {
        self.backend
            .library_sections()
            .iter()
            .map(|(_, lib)| lib.store().approx_bytes())
            .sum()
    }

    /// Persists the pulse libraries to `path` (checksummed JSON, written
    /// atomically via temp-file + rename). The file is byte-deterministic
    /// for a given library content.
    ///
    /// # Errors
    ///
    /// Returns [`EpocError::Library`] when the file cannot be written.
    pub fn save_library(&self, path: &std::path::Path) -> Result<(), EpocError> {
        epoc_qoc::save_library_file(path, &self.backend.library_sections())?;
        Ok(())
    }

    /// Warm-starts the pulse libraries from a file written by
    /// [`EpocCompiler::save_library`], returning the number of entries
    /// restored.
    ///
    /// # Errors
    ///
    /// Returns [`EpocError::Library`] when the file is unreadable, torn,
    /// corrupt, or keyed under a different policy. The error is
    /// recoverable: the caller reports it and compiles with a cold cache
    /// (recomputing is always safe).
    pub fn load_library(&self, path: &std::path::Path) -> Result<usize, EpocError> {
        Ok(epoc_qoc::load_library_file(path, &self.backend.library_sections())?)
    }
}

/// Convenience: compile with the default (modeled-backend) configuration.
///
/// Infallible wrapper: the default configuration is non-strict, so the
/// recovery ladder absorbs every soft failure, and well-formed circuits
/// (see [`is_compilable`]) cannot produce typed errors.
pub fn compile_default(circuit: &Circuit) -> CompilationReport {
    EpocCompiler::new(EpocConfig::default())
        .compile(circuit)
        .expect("default non-strict configuration recovers every soft failure")
}

/// Returns `true` when a circuit contains only gates the pipeline accepts
/// (anything except opaque blocks, which must come out of synthesis, not
/// go into it).
pub fn is_compilable(circuit: &Circuit) -> bool {
    circuit
        .ops()
        .iter()
        .all(|op| !matches!(op.gate, Gate::Unitary { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::generators;

    #[test]
    fn compile_ghz_verified() {
        let r = compile_default(&generators::ghz(3));
        assert!(r.verified, "pipeline output not equivalent");
        assert!(r.latency() > 0.0);
        assert!(r.esp() > 0.9);
        assert!(r.schedule.is_valid());
    }

    #[test]
    fn compile_bell_prep() {
        let r = compile_default(&generators::bell_pair_prep());
        assert!(r.verified);
        assert!(r.stages.zx_depth_after <= r.stages.zx_depth_before);
    }

    #[test]
    fn compile_random_circuits_verified() {
        let compiler = EpocCompiler::new(EpocConfig::fast());
        for seed in 0..4u64 {
            let c = generators::random_circuit(3, 12, seed);
            let r = compiler.compile(&c).unwrap();
            assert!(r.verified, "seed {seed} failed verification");
            assert!(r.schedule.is_valid());
        }
    }

    #[test]
    fn regrouping_reduces_latency() {
        let c = generators::qaoa(4, 2, 5);
        let grouped = EpocCompiler::new(EpocConfig::fast()).compile(&c).unwrap();
        let ungrouped =
            EpocCompiler::new(EpocConfig::fast().without_regrouping()).compile(&c).unwrap();
        assert!(grouped.verified && ungrouped.verified);
        assert!(
            grouped.latency() <= ungrouped.latency(),
            "grouping did not help: {} vs {}",
            grouped.latency(),
            ungrouped.latency()
        );
        // Grouping also raises ESP (fewer pulses).
        assert!(grouped.esp() >= ungrouped.esp());
    }

    #[test]
    fn cache_reuse_across_compiles() {
        let compiler = EpocCompiler::new(EpocConfig::fast());
        let c = generators::ghz(3);
        let r1 = compiler.compile(&c).unwrap();
        let r2 = compiler.compile(&c).unwrap();
        assert!(r2.stages.cache_hits >= r1.stages.cache_hits);
        assert!(r2.stages.cache_misses == 0, "second compile should fully hit");
    }

    #[test]
    fn is_compilable_rejects_opaque() {
        let mut c = Circuit::new(1);
        assert!(is_compilable(&c));
        c.push(Gate::unitary("v", Gate::H.unitary_matrix()), &[0]);
        assert!(!is_compilable(&c));
    }

    #[test]
    fn stage_stats_populated() {
        let r = compile_default(&generators::ghz(4));
        assert!(r.stages.synth_blocks > 0);
        assert!(r.stages.vug_stream_gates > 0);
        assert!(r.stages.pulses > 0);
        assert_eq!(r.gates_in, 4);
        assert_eq!(r.n_qubits, 4);
    }
}

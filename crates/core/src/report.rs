//! Compilation reports: everything the evaluation section measures.

use epoc_pulse::PulseSchedule;
use serde::Serialize;
use std::time::Duration;

/// Per-stage statistics of one EPOC compilation.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StageStats {
    /// Circuit depth before / after the ZX pass.
    pub zx_depth_before: usize,
    /// Depth after ZX (equals before when the pass is disabled/fell back).
    pub zx_depth_after: usize,
    /// Gate count entering partitioning.
    pub gates_after_zx: usize,
    /// Synthesis blocks processed.
    pub synth_blocks: usize,
    /// Blocks where QSearch converged (vs structural fallback).
    pub synth_converged: usize,
    /// Gates in the synthesized VUG/CNOT stream.
    pub vug_stream_gates: usize,
    /// Pulses in the final schedule.
    pub pulses: usize,
    /// Pulse-cache hits during pulse generation.
    pub cache_hits: usize,
    /// Pulse-cache misses.
    pub cache_misses: usize,
}

/// The result of compiling one circuit down to pulses.
#[derive(Debug, Clone, Serialize)]
pub struct CompilationReport {
    /// Which flow produced it (`"epoc"`, `"gate-based"`, `"paqoc"`, …).
    pub flow: String,
    /// Register size.
    pub n_qubits: usize,
    /// Input gate count.
    pub gates_in: usize,
    /// The pulse schedule.
    pub schedule: PulseSchedule,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Stage statistics.
    pub stages: StageStats,
    /// `true` when semantic verification ran and passed (or was skipped
    /// because the register is too large — see `verified_skipped`).
    pub verified: bool,
    /// `true` when verification was skipped (register too wide).
    pub verify_skipped: bool,
}

impl CompilationReport {
    /// Total pulse latency (ns).
    pub fn latency(&self) -> f64 {
        self.schedule.latency()
    }

    /// Estimated success probability (the paper's Eq. 3).
    pub fn esp(&self) -> f64 {
        self.schedule.esp()
    }

    /// The report as pretty-printed JSON (schedule included), for tooling.
    ///
    /// # Panics
    ///
    /// Never panics in practice: all fields are plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} latency {:>9.1} ns  esp {:.4}  pulses {:>4}  compile {:>8.2?}",
            self.flow,
            self.latency(),
            self.esp(),
            self.schedule.len(),
            self.compile_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_fields() {
        let r = CompilationReport {
            flow: "epoc".into(),
            n_qubits: 2,
            gates_in: 5,
            schedule: PulseSchedule::new(2),
            compile_time: Duration::from_millis(12),
            stages: StageStats::default(),
            verified: true,
            verify_skipped: false,
        };
        let s = r.summary();
        assert!(s.contains("epoc"));
        assert!(s.contains("latency"));
        assert_eq!(r.latency(), 0.0);
        assert_eq!(r.esp(), 1.0);
    }
}

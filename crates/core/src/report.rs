//! Compilation reports: everything the evaluation section measures.

use crate::simulate::SimulationStats;
use epoc_pulse::PulseSchedule;
use epoc_rt::json::Json;
use std::time::Duration;

/// Wall-clock durations of the five pipeline stages.
///
/// Timings are observability data, not part of the deterministic report
/// surface: the byte-determinism tests zero this struct (exactly as they
/// zero `compile_time`) before comparing serialized reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// §3.1 ZX depth optimization.
    pub zx: Duration,
    /// §3.2 greedy partitioning.
    pub partition: Duration,
    /// §3.3 VUG synthesis fan-out.
    pub synth: Duration,
    /// §3.3 regrouping (or the per-gate fallback partition).
    pub regroup: Duration,
    /// §3.4 pulse generation.
    pub pulse: Duration,
}

impl StageTimings {
    /// The timings as a JSON value, one `<stage>_ns` integer per stage.
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push("zx_ns", self.zx.as_nanos() as u64)
            .push("partition_ns", self.partition.as_nanos() as u64)
            .push("synth_ns", self.synth.as_nanos() as u64)
            .push("regroup_ns", self.regroup.as_nanos() as u64)
            .push("pulse_ns", self.pulse.as_nanos() as u64)
    }
}

/// Recovery-ladder rung label: escalated QSearch node budget.
pub const RUNG_SYNTH_BUDGET: &str = "recovery.synth.budget";
/// Recovery-ladder rung label: structural fallback after the synthesis
/// budget escalations were exhausted without convergence.
pub const RUNG_SYNTH_FALLBACK: &str = "recovery.synth.fallback";
/// Recovery-ladder rung label: a precomputed pulse went missing during
/// schedule replay (lost cache insert or forced miss) and the block was
/// recomputed in place.
pub const RUNG_SCHEDULE_RECOMPUTE: &str = "recovery.schedule.recompute";
/// Recovery-ladder rung label: waveform conditioning failed at schedule
/// emission (injected `hw.condition` fault) and the block degraded to the
/// digital (exact-unitary) payload instead of failing the compile.
pub const RUNG_HW_DIGITAL: &str = "recovery.hw.digital";

/// One climbed rung of the per-block recovery ladder. The `rung` label
/// doubles as the `recovery.*` telemetry counter the pipeline bumps when
/// it takes the rung.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// Pipeline stage that recovered (`"synth"`, `"pulse"`, `"schedule"`).
    pub stage: &'static str,
    /// What was recovered (e.g. `"blk3"`).
    pub subject: String,
    /// The ladder rung taken (e.g. [`RUNG_SYNTH_BUDGET`],
    /// `epoc_qoc::RUNG_GRAPE_RESTARTS`).
    pub rung: &'static str,
}

impl RecoveryRecord {
    /// The record as a JSON value.
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push("stage", self.stage)
            .push("subject", self.subject.as_str())
            .push("rung", self.rung)
    }
}

/// Per-stage statistics of one EPOC compilation.
#[derive(Debug, Clone, Default)]
pub struct StageStats {
    /// Circuit depth before / after the ZX pass.
    pub zx_depth_before: usize,
    /// Depth after ZX (equals before when the pass is disabled/fell back).
    pub zx_depth_after: usize,
    /// ZX rewrite rules applied to produce the kept circuit (0 when the
    /// pass was skipped or fell back).
    pub zx_rewrites: usize,
    /// Gate count entering partitioning.
    pub gates_after_zx: usize,
    /// Synthesis blocks processed.
    pub synth_blocks: usize,
    /// Blocks where QSearch converged (vs structural fallback).
    pub synth_converged: usize,
    /// QSearch nodes instantiated across all synthesis blocks. Cache-hit
    /// blocks replay the node count of the first computation, so the total
    /// is identical at any worker count.
    pub qsearch_nodes: usize,
    /// Gates in the synthesized VUG/CNOT stream.
    pub vug_stream_gates: usize,
    /// Pulses in the final schedule.
    pub pulses: usize,
    /// Pulse-cache hits during pulse generation.
    pub cache_hits: usize,
    /// Pulse-cache misses.
    pub cache_misses: usize,
    /// GRAPE Adam iterations spent during this compile (0 for the modeled
    /// backend).
    pub grape_iterations: usize,
    /// GRAPE duration-search probes spent during this compile.
    pub grape_probes: usize,
    /// Recovery-ladder rungs climbed, in deterministic block order (the
    /// same at any worker count; empty when every stage succeeded on its
    /// base attempt).
    pub recoveries: Vec<RecoveryRecord>,
    /// Per-stage wall-clock durations (zeroed by determinism checks).
    pub timings: StageTimings,
}

impl StageStats {
    /// The stats as a JSON value (field order matches the struct).
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push("zx_depth_before", self.zx_depth_before)
            .push("zx_depth_after", self.zx_depth_after)
            .push("zx_rewrites", self.zx_rewrites)
            .push("gates_after_zx", self.gates_after_zx)
            .push("synth_blocks", self.synth_blocks)
            .push("synth_converged", self.synth_converged)
            .push("qsearch_nodes", self.qsearch_nodes)
            .push("vug_stream_gates", self.vug_stream_gates)
            .push("pulses", self.pulses)
            .push("cache_hits", self.cache_hits)
            .push("cache_misses", self.cache_misses)
            .push("grape_iterations", self.grape_iterations)
            .push("grape_probes", self.grape_probes)
            .push(
                "recoveries",
                Json::Arr(self.recoveries.iter().map(RecoveryRecord::to_json_value).collect()),
            )
            .push("timings", self.timings.to_json_value())
    }

    /// Multi-line human-readable stage breakdown (work metrics plus the
    /// per-stage wall clock).
    pub fn to_text(&self) -> String {
        let t = &self.timings;
        let mut text = format!(
            "stages:\n\
             \x20 zx         {:>10.2?}  depth {} -> {}, {} rewrites\n\
             \x20 partition  {:>10.2?}  {} blocks from {} gates\n\
             \x20 synth      {:>10.2?}  {}/{} converged, {} qsearch nodes, {} vug gates\n\
             \x20 regroup    {:>10.2?}\n\
             \x20 pulse      {:>10.2?}  {} pulses, cache {}/{} hit, grape {} iters / {} probes",
            t.zx,
            self.zx_depth_before,
            self.zx_depth_after,
            self.zx_rewrites,
            t.partition,
            self.synth_blocks,
            self.gates_after_zx,
            t.synth,
            self.synth_converged,
            self.synth_blocks,
            self.qsearch_nodes,
            self.vug_stream_gates,
            t.regroup,
            t.pulse,
            self.pulses,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.grape_iterations,
            self.grape_probes,
        );
        for r in &self.recoveries {
            text.push_str(&format!("\n  recovery: {} {} -> {}", r.stage, r.subject, r.rung));
        }
        text
    }
}

/// Control-electronics summary of one compilation under a hardware
/// profile (see [`epoc_hw::HardwareProfile`]).
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareStats {
    /// Profile name (`"transmon_awg_8bit"`, …).
    pub profile: String,
    /// Stable profile hash — the same value scoping the pulse-library
    /// cache keys (0 for the identity/`ideal` profile).
    pub profile_hash: u64,
    /// Waveform pulses conditioned (slew-clip → quantize → filter →
    /// crosstalk) at schedule emission.
    pub conditioned_pulses: usize,
    /// `true` when the profile lowers drives to SFQ bitstreams.
    pub sfq: bool,
}

impl HardwareStats {
    /// The stats as a JSON value. The hash serializes as a 16-hex-digit
    /// string (a raw u64 does not survive a JSON f64 round-trip).
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push("profile", self.profile.as_str())
            .push("profile_hash", format!("{:016x}", self.profile_hash).as_str())
            .push("conditioned_pulses", self.conditioned_pulses)
            .push("sfq", self.sfq)
    }
}

/// The result of compiling one circuit down to pulses.
#[derive(Debug, Clone)]
pub struct CompilationReport {
    /// Which flow produced it (`"epoc"`, `"gate-based"`, `"paqoc"`, …).
    pub flow: String,
    /// Register size.
    pub n_qubits: usize,
    /// Input gate count.
    pub gates_in: usize,
    /// The pulse schedule.
    pub schedule: PulseSchedule,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Stage statistics.
    pub stages: StageStats,
    /// `true` when semantic verification ran and passed (or was skipped
    /// because the register is too large — see `verified_skipped`).
    pub verified: bool,
    /// `true` when verification was skipped (register too wide).
    pub verify_skipped: bool,
    /// Control-electronics summary (`None` when compiling with ideal
    /// electronics). Like `simulation`, the key is omitted from the JSON
    /// entirely when absent, so existing report consumers are unaffected.
    pub hardware: Option<HardwareStats>,
    /// Pulse-level simulation outcome (`None` unless `--simulate` /
    /// [`crate::simulate_schedule`] ran). The key is omitted from the
    /// JSON entirely when absent, so existing report consumers are
    /// unaffected.
    pub simulation: Option<SimulationStats>,
}

impl CompilationReport {
    /// Total pulse latency (ns).
    pub fn latency(&self) -> f64 {
        self.schedule.latency()
    }

    /// Estimated success probability (the paper's Eq. 3).
    pub fn esp(&self) -> f64 {
        self.schedule.esp()
    }

    /// The report as a JSON value. `compile_time` serializes as
    /// `{secs, nanos}`, the same shape the previous serde-based output
    /// used for `Duration`.
    pub fn to_json_value(&self) -> Json {
        let mut obj = Json::obj()
            .push("flow", self.flow.as_str())
            .push("n_qubits", self.n_qubits)
            .push("gates_in", self.gates_in)
            .push("schedule", self.schedule.to_json_value())
            .push(
                "compile_time",
                Json::obj()
                    .push("secs", self.compile_time.as_secs())
                    .push("nanos", self.compile_time.subsec_nanos()),
            )
            .push("stages", self.stages.to_json_value())
            .push("verified", self.verified)
            .push("verify_skipped", self.verify_skipped);
        if let Some(hw) = &self.hardware {
            obj = obj.push("hardware", hw.to_json_value());
        }
        if let Some(sim) = &self.simulation {
            obj = obj.push("simulation", sim.to_json_value());
        }
        obj
    }

    /// The report as pretty-printed JSON (schedule included), for tooling.
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// Compact JSON fields for the structured observability log: the
    /// counters an operator correlates per job (cache traffic, GRAPE
    /// spend, recovery count) without the full schedule payload. This is
    /// a *log* shape, free to evolve — the report JSON contract lives in
    /// [`CompilationReport::to_json_value`].
    pub fn log_summary(&self) -> Json {
        Json::obj()
            .push("flow", self.flow.as_str())
            .push("n_qubits", self.n_qubits)
            .push("gates_in", self.gates_in)
            .push("pulses", self.stages.pulses)
            .push("cache_hits", self.stages.cache_hits)
            .push("cache_misses", self.stages.cache_misses)
            .push("grape_iterations", self.stages.grape_iterations)
            .push("recoveries", self.stages.recoveries.len())
            .push("verified", self.verified)
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<12} latency {:>9.1} ns  esp {:.4}  pulses {:>4}  compile {:>8.2?}",
            self.flow,
            self.latency(),
            self.esp(),
            self.schedule.len(),
            self.compile_time,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_fields() {
        let r = CompilationReport {
            flow: "epoc".into(),
            n_qubits: 2,
            gates_in: 5,
            schedule: PulseSchedule::new(2),
            compile_time: Duration::from_millis(12),
            stages: StageStats::default(),
            verified: true,
            verify_skipped: false,
            hardware: None,
            simulation: None,
        };
        let s = r.summary();
        assert!(s.contains("epoc"));
        assert!(s.contains("latency"));
        assert_eq!(r.latency(), 0.0);
        assert_eq!(r.esp(), 1.0);
    }

    #[test]
    fn report_json_matches_expected_bytes() {
        let mut schedule = PulseSchedule::new(1);
        schedule.push(epoc_pulse::ScheduledPulse {
            qubits: vec![0],
            start: 0.0,
            duration: 26.5,
            fidelity: 0.9995,
            label: "blk\"0\"".into(),
            payload: epoc_pulse::PulsePayload::Opaque,
        });
        let r = CompilationReport {
            flow: "epoc".into(),
            n_qubits: 1,
            gates_in: 2,
            schedule,
            compile_time: Duration::new(1, 500),
            stages: StageStats {
                zx_depth_before: 3,
                zx_depth_after: 2,
                zx_rewrites: 4,
                gates_after_zx: 2,
                synth_blocks: 1,
                synth_converged: 1,
                qsearch_nodes: 9,
                vug_stream_gates: 2,
                pulses: 1,
                cache_hits: 0,
                cache_misses: 1,
                grape_iterations: 120,
                grape_probes: 3,
                recoveries: vec![RecoveryRecord {
                    stage: "pulse",
                    subject: "blk0".into(),
                    rung: "recovery.grape.restarts",
                }],
                timings: StageTimings {
                    zx: Duration::from_nanos(10),
                    partition: Duration::from_nanos(20),
                    synth: Duration::from_nanos(30),
                    regroup: Duration::from_nanos(40),
                    pulse: Duration::from_nanos(50),
                },
            },
            verified: true,
            verify_skipped: false,
            hardware: None,
            simulation: None,
        };
        let expected = concat!(
            "{\n",
            "  \"flow\": \"epoc\",\n",
            "  \"n_qubits\": 1,\n",
            "  \"gates_in\": 2,\n",
            "  \"schedule\": {\n",
            "    \"n_qubits\": 1,\n",
            "    \"pulses\": [\n",
            "      {\n",
            "        \"qubits\": [\n",
            "          0\n",
            "        ],\n",
            "        \"start\": 0.0,\n",
            "        \"duration\": 26.5,\n",
            "        \"fidelity\": 0.9995,\n",
            "        \"label\": \"blk\\\"0\\\"\",\n",
            "        \"payload\": \"opaque\"\n",
            "      }\n",
            "    ],\n",
            "    \"frames\": []\n",
            "  },\n",
            "  \"compile_time\": {\n",
            "    \"secs\": 1,\n",
            "    \"nanos\": 500\n",
            "  },\n",
            "  \"stages\": {\n",
            "    \"zx_depth_before\": 3,\n",
            "    \"zx_depth_after\": 2,\n",
            "    \"zx_rewrites\": 4,\n",
            "    \"gates_after_zx\": 2,\n",
            "    \"synth_blocks\": 1,\n",
            "    \"synth_converged\": 1,\n",
            "    \"qsearch_nodes\": 9,\n",
            "    \"vug_stream_gates\": 2,\n",
            "    \"pulses\": 1,\n",
            "    \"cache_hits\": 0,\n",
            "    \"cache_misses\": 1,\n",
            "    \"grape_iterations\": 120,\n",
            "    \"grape_probes\": 3,\n",
            "    \"recoveries\": [\n",
            "      {\n",
            "        \"stage\": \"pulse\",\n",
            "        \"subject\": \"blk0\",\n",
            "        \"rung\": \"recovery.grape.restarts\"\n",
            "      }\n",
            "    ],\n",
            "    \"timings\": {\n",
            "      \"zx_ns\": 10,\n",
            "      \"partition_ns\": 20,\n",
            "      \"synth_ns\": 30,\n",
            "      \"regroup_ns\": 40,\n",
            "      \"pulse_ns\": 50\n",
            "    }\n",
            "  },\n",
            "  \"verified\": true,\n",
            "  \"verify_skipped\": false\n",
            "}",
        );
        assert_eq!(r.to_json(), expected);
    }
}

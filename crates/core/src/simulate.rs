//! Pulse-level verification of compiled schedules.
//!
//! Bridges the compiler's output to `epoc-sim`: the source circuit's
//! unitary (the same ground truth the gate-level verifier uses) becomes
//! the target, the emitted schedule is replayed through the device
//! Hamiltonian, and the outcome lands in the report's `simulation` block.
//! This closes the loop the paper (and AccQOC) validates with: the
//! fidelity here is *independent* of GRAPE's per-block training
//! objective, so scheduling bugs, wrong embeddings, and bad cache reuse
//! show up as lost fidelity even when every block reports 0.999+.

use epoc_circuit::Circuit;
use epoc_pulse::PulseSchedule;
use epoc_rt::json::Json;
use epoc_sim::{simulate, NoiseModel, SimError, SimOptions, SimOutcome};

/// The `simulation` block of a compilation report: the simulator outcome
/// plus an echo of the knobs that produced it, so a report is
/// self-describing and reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationStats {
    /// The simulator outcome.
    pub outcome: SimOutcome,
    /// Trajectories requested.
    pub shots: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Noise model the trajectories sampled.
    pub noise: NoiseModel,
}

impl SimulationStats {
    /// The stats as a JSON value. Trajectory fields appear only when
    /// shots ran, keeping noiseless reports compact.
    pub fn to_json_value(&self) -> Json {
        let o = &self.outcome;
        let mut obj = Json::obj()
            .push("process_fidelity", o.process_fidelity)
            .push("avg_gate_fidelity", o.avg_gate_fidelity)
            .push("steps", o.steps)
            .push("waveform_pulses", o.waveform_pulses)
            .push("digital_pulses", o.digital_pulses)
            .push("frames", o.frames)
            .push("shots", self.shots)
            .push("seed", self.seed)
            .push(
                "noise",
                Json::obj()
                    .push("detuning_sigma", self.noise.detuning_sigma)
                    .push("amplitude_sigma", self.noise.amplitude_sigma)
                    .push("t1", self.noise.t1)
                    .push("t2", self.noise.t2),
            );
        if !o.trajectories.is_empty() {
            obj = obj
                .push(
                    "trajectories",
                    Json::Arr(o.trajectories.iter().map(|&f| Json::from(f)).collect()),
                )
                .push("shot_mean", o.shot_mean().expect("non-empty trajectories"))
                .push(
                    "shot_min",
                    o.trajectories.iter().copied().fold(f64::INFINITY, f64::min),
                );
        }
        obj
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        match self.outcome.shot_mean() {
            Some(mean) => format!(
                "simulated     process fid {:.6}  avg gate fid {:.6}  shots {} (mean {:.6})",
                self.outcome.process_fidelity, self.outcome.avg_gate_fidelity, self.shots, mean,
            ),
            None => format!(
                "simulated     process fid {:.6}  avg gate fid {:.6}  ({} waveform / {} digital pulses, {} frames)",
                self.outcome.process_fidelity,
                self.outcome.avg_gate_fidelity,
                self.outcome.waveform_pulses,
                self.outcome.digital_pulses,
                self.outcome.frames,
            ),
        }
    }
}

/// Replays `schedule` against `circuit`'s unitary and packages the
/// outcome for the report.
///
/// # Errors
///
/// Returns [`SimError`] when the schedule cannot be lowered (too wide for
/// the dense ceiling, opaque payloads) or propagation fails.
pub fn simulate_schedule(
    circuit: &Circuit,
    schedule: &PulseSchedule,
    opts: &SimOptions,
) -> Result<SimulationStats, SimError> {
    let target = circuit.unitary();
    let outcome = simulate(schedule, &target, opts)?;
    Ok(SimulationStats {
        outcome,
        shots: opts.shots,
        seed: opts.seed,
        noise: opts.noise,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;
    use epoc_pulse::{schedule_circuit, PulseCost};

    fn bell() -> (Circuit, PulseSchedule) {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        let s = schedule_circuit(&c, |_| PulseCost {
            duration: 20.0,
            fidelity: 0.999,
        });
        (c, s)
    }

    #[test]
    fn noiseless_stats_json_shape() {
        let (c, s) = bell();
        let stats = simulate_schedule(&c, &s, &SimOptions::default()).unwrap();
        assert!((stats.outcome.process_fidelity - 1.0).abs() < 1e-12);
        let json = stats.to_json_value().to_string_pretty();
        assert!(json.contains("\"process_fidelity\""));
        assert!(json.contains("\"noise\""));
        assert!(!json.contains("\"trajectories\""), "no shots -> no array");
        assert!(stats.summary().contains("process fid"));
    }

    #[test]
    fn shot_stats_appear_with_shots() {
        let (c, s) = bell();
        let opts = SimOptions {
            shots: 3,
            ..SimOptions::default()
        };
        let stats = simulate_schedule(&c, &s, &opts).unwrap();
        let json = stats.to_json_value().to_string_pretty();
        assert!(json.contains("\"trajectories\""));
        assert!(json.contains("\"shot_mean\""));
        assert!(json.contains("\"shot_min\""));
        assert!(stats.summary().contains("shots 3"));
    }
}

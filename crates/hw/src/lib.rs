//! Control-electronics model for EPOC.
//!
//! GRAPE emits mathematically optimal control amplitudes; a real control
//! stack then distorts them: a DAC quantizes amplitudes to `n` bits and
//! limits the slew between consecutive samples, the analog output chain
//! low-pass filters the staircase, and imperfect wiring cross-couples
//! neighbouring drive lines. SFQ-style controllers go further and only
//! emit discrete pulse trains, so amplitudes become integer pulse counts
//! per slot.
//!
//! This crate models that chain as a deterministic, allocation-free
//! *conditioning pipeline* applied to raw control amplitudes:
//!
//! ```text
//! raw u ──slew-clip──▶ quantize (DAC or SFQ) ──▶ Gaussian low-pass ──▶ crosstalk mix──▶ played u
//! ```
//!
//! The same pipeline is used in two places:
//!
//! * **at schedule emission** (`crates/core`), so the simulator replays
//!   what the electronics would actually play, and
//! * **inside GRAPE** (`crates/qoc`), which optimizes *through* the model
//!   with a straight-through estimator: the fidelity is evaluated on the
//!   conditioned controls, the gradient of the linear stages (filter,
//!   crosstalk) is pulled back exactly via [`HardwareProfile::adjoint_grad`],
//!   and the non-linear stages (quantize, slew) pass the gradient through
//!   unchanged.
//!
//! Everything here is plain sequential `f64` arithmetic with a fixed
//! accumulation order — conditioning a waveform is byte-deterministic
//! across worker counts, SIMD dispatch, and repeat runs.

#![warn(missing_docs)]

/// SFQ (single-flux-quantum) drive parameters: the controller emits a
/// train of identical quantized pulses at `clock_ghz`, so the effective
/// per-slot amplitude is an integer pulse count.
#[derive(Debug, Clone, PartialEq)]
pub struct SfqParams {
    /// SFQ pulse-train clock in GHz. With a slot length of `dt` ns the
    /// controller can fit `round(dt * clock_ghz)` pulses per slot, which
    /// sets the amplitude LSB.
    pub clock_ghz: f64,
}

impl SfqParams {
    /// Number of clock ticks (candidate pulses) per slot of length `dt`
    /// nanoseconds; at least 1.
    pub fn ticks_per_slot(&self, dt: f64) -> usize {
        let t = (dt * self.clock_ghz).round();
        if t < 1.0 {
            1
        } else {
            t as usize
        }
    }

    /// Amplitude least-significant-bit for slots of length `dt`: the
    /// drive saturates at `a_max` when every tick carries a pulse.
    pub fn lsb(&self, dt: f64, a_max: f64) -> f64 {
        a_max / self.ticks_per_slot(dt) as f64
    }
}

/// A description of the control electronics driving the device.
///
/// All constraint fields use `0` (or `None`) to mean "not modelled", so
/// the zeroed profile is an exact identity — see
/// [`HardwareProfile::is_identity`].
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Preset name (informational; carried into reports).
    pub name: String,
    /// AWG sampling rate in GS/s (GHz). Conditioning operates at the
    /// device slot rate (one control amplitude per slot); this records
    /// the electronics' assumed rate for reports and sanity checks.
    pub sample_rate_ghz: f64,
    /// DAC amplitude resolution in bits (midtread; `0` = ideal DAC).
    /// The quantization step is `a_max / (2^(bits-1) - 1)`.
    pub dac_bits: u32,
    /// Gaussian low-pass filter width σ in *samples* (`0` = no filter).
    pub filter_sigma: f64,
    /// Filter kernel half-width in units of σ (taps beyond `chop·σ`
    /// are dropped); ignored when `filter_sigma == 0`.
    pub filter_chop: f64,
    /// Nearest-neighbour crosstalk coupling between same-quadrature
    /// channels of adjacent qubits (`0` = perfectly isolated lines).
    pub crosstalk: f64,
    /// Maximum amplitude change between consecutive samples, as a
    /// fraction of `a_max` (`0` = unlimited slew).
    pub slew_limit: f64,
    /// SFQ pulse-train lowering; when set, amplitude quantization uses
    /// the SFQ LSB instead of the DAC step.
    pub sfq: Option<SfqParams>,
}

/// Names accepted by [`HardwareProfile::by_name`].
pub const PROFILE_NAMES: &[&str] = &["ideal", "transmon_awg_8bit", "sfq_bitstream"];

impl HardwareProfile {
    /// A perfect control stack: conditioning is the identity.
    pub fn ideal() -> Self {
        Self {
            name: "ideal".into(),
            sample_rate_ghz: 0.5,
            dac_bits: 0,
            filter_sigma: 0.0,
            filter_chop: 0.0,
            crosstalk: 0.0,
            slew_limit: 0.0,
            sfq: None,
        }
    }

    /// A room-temperature AWG driving a transmon line: 8-bit DAC,
    /// one-sample Gaussian output filter, 2% nearest-neighbour
    /// crosstalk, and a half-range-per-sample slew limit.
    pub fn transmon_awg_8bit() -> Self {
        Self {
            name: "transmon_awg_8bit".into(),
            sample_rate_ghz: 0.5,
            dac_bits: 8,
            filter_sigma: 1.0,
            filter_chop: 3.0,
            crosstalk: 0.02,
            slew_limit: 0.5,
            sfq: None,
        }
    }

    /// An SFQ-style pulse-train controller: amplitudes are lowered to
    /// integer pulse counts against a 25 GHz clock (the bitstream view
    /// is available via [`HardwareProfile::lower_sfq`]).
    pub fn sfq_bitstream() -> Self {
        Self {
            name: "sfq_bitstream".into(),
            sample_rate_ghz: 25.0,
            dac_bits: 0,
            filter_sigma: 0.0,
            filter_chop: 0.0,
            crosstalk: 0.0,
            slew_limit: 0.0,
            sfq: Some(SfqParams { clock_ghz: 25.0 }),
        }
    }

    /// Looks up a named preset; see [`PROFILE_NAMES`].
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "ideal" => Some(Self::ideal()),
            "transmon_awg_8bit" => Some(Self::transmon_awg_8bit()),
            "sfq_bitstream" => Some(Self::sfq_bitstream()),
            _ => None,
        }
    }

    /// `true` when every constraint is off and conditioning is exactly
    /// the identity map.
    pub fn is_identity(&self) -> bool {
        self.dac_bits == 0
            && self.filter_sigma <= 0.0
            && self.crosstalk == 0.0
            && self.slew_limit <= 0.0
            && self.sfq.is_none()
    }

    /// A stable (platform- and run-independent) FNV-1a hash over every
    /// field that affects conditioning. Identity profiles hash to 0 so a
    /// pulse library built without a profile interoperates with one
    /// built under `ideal`.
    pub fn stable_hash(&self) -> u64 {
        if self.is_identity() {
            return 0;
        }
        let mut h = Fnv::new();
        h.eat(self.name.as_bytes());
        h.eat(&self.sample_rate_ghz.to_bits().to_le_bytes());
        h.eat(&self.dac_bits.to_le_bytes());
        h.eat(&self.filter_sigma.to_bits().to_le_bytes());
        h.eat(&self.filter_chop.to_bits().to_le_bytes());
        h.eat(&self.crosstalk.to_bits().to_le_bytes());
        h.eat(&self.slew_limit.to_bits().to_le_bytes());
        match &self.sfq {
            Some(s) => {
                h.eat(&[1]);
                h.eat(&s.clock_ghz.to_bits().to_le_bytes());
            }
            None => h.eat(&[0]),
        }
        // 0 is reserved for "no profile"; remap the (absurdly unlikely)
        // collision to a fixed non-zero value.
        match h.finish() {
            0 => 0x9e37_79b9_7f4a_7c15,
            v => v,
        }
    }

    /// The amplitude quantization step for drives bounded by `a_max`,
    /// or `None` when amplitudes are continuous. SFQ lowering takes
    /// precedence over the DAC word size.
    pub fn quant_step(&self, dt: f64, a_max: f64) -> Option<f64> {
        if let Some(sfq) = &self.sfq {
            return Some(sfq.lsb(dt, a_max));
        }
        if self.dac_bits >= 2 {
            let levels = (1u64 << (self.dac_bits - 1)) - 1;
            return Some(a_max / levels as f64);
        }
        None
    }

    /// Conditions `controls` (channel-major: `controls[channel][slot]`)
    /// in place: slew-clip → quantize → Gaussian low-pass → crosstalk
    /// mix. `dt` is the slot length in ns and `a_max` the drive bound
    /// the amplitudes were optimized under. Channel ordering follows the
    /// device model: `X0, Y0, X1, Y1, …`, so crosstalk couples channel
    /// `c` with `c ± 2` (the same quadrature on adjacent qubits).
    ///
    /// Allocation-free after workspace warm-up: `ws` buffers are resized
    /// once and reused. Purely sequential with a fixed accumulation
    /// order, so output bytes depend only on input bytes.
    pub fn condition_controls(
        &self,
        dt: f64,
        a_max: f64,
        controls: &mut [Vec<f64>],
        ws: &mut ConditionWorkspace,
    ) {
        if self.is_identity() || controls.is_empty() {
            return;
        }
        // 1. Slew-rate clip: the DAC output cannot move more than
        //    `slew_limit * a_max` between consecutive samples (starting
        //    from the idle level 0).
        if self.slew_limit > 0.0 {
            let lim = self.slew_limit * a_max;
            for chan in controls.iter_mut() {
                let mut prev = 0.0f64;
                for x in chan.iter_mut() {
                    *x = x.clamp(prev - lim, prev + lim);
                    prev = *x;
                }
            }
        }
        // 2. Amplitude quantization (midtread): idempotent by
        //    construction — a value already on the grid rounds to itself.
        if let Some(step) = self.quant_step(dt, a_max) {
            for chan in controls.iter_mut() {
                for x in chan.iter_mut() {
                    *x = ((*x / step).round() * step).clamp(-a_max, a_max);
                }
            }
        }
        // 3. Gaussian low-pass (the analog output chain): normalized
        //    zero-padded convolution with a symmetric kernel.
        if let Some(half) = self.kernel_into(&mut ws.kernel) {
            for chan in controls.iter_mut() {
                ws.line.clear();
                ws.line.extend_from_slice(chan);
                let n = ws.line.len();
                for (t, out) in chan.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for (ki, w) in ws.kernel.iter().enumerate() {
                        let src = t as isize + ki as isize - half as isize;
                        if src >= 0 && (src as usize) < n {
                            acc += w * ws.line[src as usize];
                        }
                    }
                    *out = acc;
                }
            }
        }
        // 4. Crosstalk mix: each line picks up a fraction of its
        //    same-quadrature neighbours; row-normalized so a uniform
        //    drive is preserved.
        if self.crosstalk != 0.0 && controls.len() > 2 {
            let n_chan = controls.len();
            let n_slots = controls[0].len();
            ws.mix.clear();
            for chan in controls.iter() {
                ws.mix.extend_from_slice(chan);
            }
            let xt = self.crosstalk;
            for (c, chan) in controls.iter_mut().enumerate() {
                let deg = neighbor_degree(c, n_chan);
                let norm = 1.0 + xt * deg as f64;
                for (t, out) in chan.iter_mut().enumerate() {
                    let mut acc = ws.mix[c * n_slots + t];
                    if c >= 2 {
                        acc += xt * ws.mix[(c - 2) * n_slots + t];
                    }
                    if c + 2 < n_chan {
                        acc += xt * ws.mix[(c + 2) * n_slots + t];
                    }
                    *out = acc / norm;
                }
            }
        }
    }

    /// Pulls a fidelity gradient back through the conditioning map's
    /// linear stages: `grad` is channel-major flat
    /// (`grad[c * n_slots + s]`), holding ∂F/∂(conditioned u) on entry
    /// and ∂F/∂(raw u) on exit under the straight-through convention
    /// (quantize and slew-clip are treated as the identity; filter and
    /// crosstalk are transposed exactly).
    pub fn adjoint_grad(
        &self,
        n_channels: usize,
        n_slots: usize,
        grad: &mut [f64],
        ws: &mut ConditionWorkspace,
    ) {
        debug_assert_eq!(grad.len(), n_channels * n_slots);
        if self.is_identity() || n_channels == 0 || n_slots == 0 {
            return;
        }
        // Forward order is filter then crosstalk, so the adjoint applies
        // crosstalkᵀ first, then the (self-adjoint) filter.
        if self.crosstalk != 0.0 && n_channels > 2 {
            let xt = self.crosstalk;
            ws.mix.clear();
            ws.mix.extend_from_slice(grad);
            for c in 0..n_channels {
                let own = 1.0 + xt * neighbor_degree(c, n_channels) as f64;
                for t in 0..n_slots {
                    let mut acc = ws.mix[c * n_slots + t] / own;
                    if c >= 2 {
                        let nn = 1.0 + xt * neighbor_degree(c - 2, n_channels) as f64;
                        acc += xt * ws.mix[(c - 2) * n_slots + t] / nn;
                    }
                    if c + 2 < n_channels {
                        let nn = 1.0 + xt * neighbor_degree(c + 2, n_channels) as f64;
                        acc += xt * ws.mix[(c + 2) * n_slots + t] / nn;
                    }
                    grad[c * n_slots + t] = acc;
                }
            }
        }
        if let Some(half) = self.kernel_into(&mut ws.kernel) {
            for c in 0..n_channels {
                let row = &mut grad[c * n_slots..(c + 1) * n_slots];
                ws.line.clear();
                ws.line.extend_from_slice(row);
                for (t, out) in row.iter_mut().enumerate() {
                    let mut acc = 0.0f64;
                    for (ki, w) in ws.kernel.iter().enumerate() {
                        let src = t as isize + ki as isize - half as isize;
                        if src >= 0 && (src as usize) < n_slots {
                            acc += w * ws.line[src as usize];
                        }
                    }
                    *out = acc;
                }
            }
        }
    }

    /// Lowers conditioned drive amplitudes to an SFQ bitstream (integer
    /// pulse counts per slot). Returns `None` when the profile has no
    /// SFQ stage.
    pub fn lower_sfq(&self, dt: f64, a_max: f64, controls: &[Vec<f64>]) -> Option<SfqBitstream> {
        let sfq = self.sfq.as_ref()?;
        let ticks = sfq.ticks_per_slot(dt);
        let lsb = sfq.lsb(dt, a_max);
        let counts = controls
            .iter()
            .map(|chan| {
                chan.iter()
                    .map(|&a| {
                        let k = (a / lsb).round();
                        (k.clamp(-(ticks as f64), ticks as f64)) as i32
                    })
                    .collect()
            })
            .collect();
        Some(SfqBitstream {
            clock_ghz: sfq.clock_ghz,
            ticks_per_slot: ticks,
            counts,
        })
    }

    /// Writes the normalized Gaussian kernel into `buf`, returning its
    /// half-width in taps, or `None` when filtering is off.
    fn kernel_into(&self, buf: &mut Vec<f64>) -> Option<usize> {
        if self.filter_sigma <= 0.0 {
            return None;
        }
        let half = (self.filter_chop * self.filter_sigma).ceil().max(0.0) as usize;
        buf.clear();
        let mut sum = 0.0f64;
        for k in 0..=2 * half {
            let x = k as f64 - half as f64;
            let w = (-0.5 * (x / self.filter_sigma).powi(2)).exp();
            buf.push(w);
            sum += w;
        }
        for w in buf.iter_mut() {
            *w /= sum;
        }
        Some(half)
    }
}

/// Number of same-quadrature neighbours of channel `c` on an
/// interleaved `X0, Y0, X1, Y1, …` line of `n_chan` channels.
fn neighbor_degree(c: usize, n_chan: usize) -> usize {
    usize::from(c >= 2) + usize::from(c + 2 < n_chan)
}

/// A stable hash of an optional profile: `None` (and identity profiles)
/// hash to 0; everything else to [`HardwareProfile::stable_hash`].
pub fn profile_hash(profile: Option<&HardwareProfile>) -> u64 {
    profile.map_or(0, HardwareProfile::stable_hash)
}

/// Reusable scratch for [`HardwareProfile::condition_controls`] and
/// [`HardwareProfile::adjoint_grad`]: buffers grow on first use and are
/// reused afterwards, keeping the hot path allocation-free.
#[derive(Debug, Default)]
pub struct ConditionWorkspace {
    kernel: Vec<f64>,
    line: Vec<f64>,
    mix: Vec<f64>,
}

impl ConditionWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// An SFQ drive program: per channel, per slot, the signed number of
/// flux pulses emitted within that slot ticking at `clock_ghz`.
#[derive(Debug, Clone, PartialEq)]
pub struct SfqBitstream {
    /// SFQ clock in GHz.
    pub clock_ghz: f64,
    /// Clock ticks available per slot (the pulse-count range is
    /// `[-ticks, +ticks]`).
    pub ticks_per_slot: usize,
    /// Pulse counts, channel-major: `counts[channel][slot]`.
    pub counts: Vec<Vec<i32>>,
}

impl SfqBitstream {
    /// Reconstructs effective drive amplitudes from the pulse counts
    /// (the inverse of lowering, exact up to the 1-LSB rounding).
    pub fn to_controls(&self, a_max: f64) -> Vec<Vec<f64>> {
        let lsb = a_max / self.ticks_per_slot as f64;
        self.counts
            .iter()
            .map(|chan| chan.iter().map(|&k| k as f64 * lsb).collect())
            .collect()
    }
}

/// FNV-1a, matching the stable hash used by the pulse-library cache.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn eat(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A_MAX: f64 = 0.12566370614359174; // 2π · 0.02, the transmon drive bound
    const DT: f64 = 2.0;

    /// Deterministic xorshift64* for property inputs.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            let u = self.0.wrapping_mul(0x2545_f491_4f6c_dd1d);
            // Uniform in [-1, 1).
            (u >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        }
    }

    fn random_controls(rng: &mut Rng, n_chan: usize, n_slots: usize) -> Vec<Vec<f64>> {
        (0..n_chan)
            .map(|_| (0..n_slots).map(|_| rng.next_f64() * A_MAX).collect())
            .collect()
    }

    #[test]
    fn presets_resolve_by_name() {
        for &name in PROFILE_NAMES {
            let p = HardwareProfile::by_name(name).expect("preset");
            assert_eq!(p.name, name);
        }
        assert!(HardwareProfile::by_name("warp_drive").is_none());
    }

    #[test]
    fn ideal_profile_is_identity_and_hashes_to_zero() {
        let p = HardwareProfile::ideal();
        assert!(p.is_identity());
        assert_eq!(p.stable_hash(), 0);
        assert_eq!(profile_hash(None), 0);
        assert_eq!(profile_hash(Some(&p)), 0);
        let mut u = random_controls(&mut Rng(7), 4, 32);
        let before = u.clone();
        let mut ws = ConditionWorkspace::new();
        p.condition_controls(DT, A_MAX, &mut u, &mut ws);
        assert_eq!(u, before);
    }

    #[test]
    fn preset_hashes_are_distinct_and_stable() {
        let awg = HardwareProfile::transmon_awg_8bit().stable_hash();
        let sfq = HardwareProfile::sfq_bitstream().stable_hash();
        assert_ne!(awg, 0);
        assert_ne!(sfq, 0);
        assert_ne!(awg, sfq);
        // Stable across constructions.
        assert_eq!(awg, HardwareProfile::transmon_awg_8bit().stable_hash());
        // Sensitive to every conditioning parameter.
        let mut tweaked = HardwareProfile::transmon_awg_8bit();
        tweaked.crosstalk = 0.03;
        assert_ne!(awg, tweaked.stable_hash());
    }

    #[test]
    fn quantization_is_idempotent() {
        let p = HardwareProfile {
            filter_sigma: 0.0,
            crosstalk: 0.0,
            slew_limit: 0.0,
            ..HardwareProfile::transmon_awg_8bit()
        };
        let mut ws = ConditionWorkspace::new();
        let mut rng = Rng(0xDEAD_BEEF);
        for trial in 0..32 {
            let mut once = random_controls(&mut rng, 4, 48);
            p.condition_controls(DT, A_MAX, &mut once, &mut ws);
            let mut twice = once.clone();
            p.condition_controls(DT, A_MAX, &mut twice, &mut ws);
            assert_eq!(once, twice, "quantize not idempotent (trial {trial})");
        }
    }

    #[test]
    fn sfq_quantization_is_idempotent() {
        let p = HardwareProfile::sfq_bitstream();
        let mut ws = ConditionWorkspace::new();
        let mut rng = Rng(42);
        let mut once = random_controls(&mut rng, 2, 64);
        p.condition_controls(DT, A_MAX, &mut once, &mut ws);
        let mut twice = once.clone();
        p.condition_controls(DT, A_MAX, &mut twice, &mut ws);
        assert_eq!(once, twice);
    }

    #[test]
    fn full_pipeline_is_idempotent_in_quantize_stage_only() {
        // The filter is NOT idempotent — conditioning must happen
        // exactly once per waveform. Pin that assumption so nobody
        // "simplifies" emission into a double-condition.
        let p = HardwareProfile::transmon_awg_8bit();
        let mut ws = ConditionWorkspace::new();
        let mut once = random_controls(&mut Rng(3), 4, 48);
        p.condition_controls(DT, A_MAX, &mut once, &mut ws);
        let mut twice = once.clone();
        p.condition_controls(DT, A_MAX, &mut twice, &mut ws);
        assert_ne!(once, twice);
    }

    #[test]
    fn filtering_is_linear() {
        let p = HardwareProfile {
            dac_bits: 0,
            crosstalk: 0.0,
            slew_limit: 0.0,
            ..HardwareProfile::transmon_awg_8bit()
        };
        let mut ws = ConditionWorkspace::new();
        let mut rng = Rng(99);
        for _ in 0..16 {
            let x = random_controls(&mut rng, 2, 40);
            let y = random_controls(&mut rng, 2, 40);
            let (a, b) = (0.7, -1.3);
            let mut combo: Vec<Vec<f64>> = x
                .iter()
                .zip(&y)
                .map(|(xc, yc)| xc.iter().zip(yc).map(|(u, v)| a * u + b * v).collect())
                .collect();
            p.condition_controls(DT, A_MAX, &mut combo, &mut ws);
            let mut fx = x.clone();
            let mut fy = y.clone();
            p.condition_controls(DT, A_MAX, &mut fx, &mut ws);
            p.condition_controls(DT, A_MAX, &mut fy, &mut ws);
            for (cc, (fxc, fyc)) in combo.iter().zip(fx.iter().zip(&fy)) {
                for (c, (u, v)) in cc.iter().zip(fxc.iter().zip(fyc)) {
                    assert!((c - (a * u + b * v)).abs() < 1e-12, "filter not linear");
                }
            }
        }
    }

    #[test]
    fn conditioning_is_byte_deterministic() {
        // Same input, fresh workspaces, repeated runs: bit-identical
        // output. Conditioning never touches the worker pool or SIMD
        // dispatch, so this must hold everywhere.
        let p = HardwareProfile::transmon_awg_8bit();
        let base = random_controls(&mut Rng(0x5EED), 6, 64);
        let mut runs = Vec::new();
        for _ in 0..3 {
            let mut u = base.clone();
            let mut ws = ConditionWorkspace::new();
            p.condition_controls(DT, A_MAX, &mut u, &mut ws);
            let bits: Vec<Vec<u64>> = u
                .iter()
                .map(|c| c.iter().map(|x| x.to_bits()).collect())
                .collect();
            runs.push(bits);
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn sfq_lowering_round_trips_within_one_lsb() {
        let p = HardwareProfile::sfq_bitstream();
        let sfq = p.sfq.as_ref().unwrap();
        let lsb = sfq.lsb(DT, A_MAX);
        let controls = random_controls(&mut Rng(0xB17), 4, 80);
        let stream = p.lower_sfq(DT, A_MAX, &controls).expect("sfq profile");
        assert_eq!(stream.ticks_per_slot, 50);
        let back = stream.to_controls(A_MAX);
        for (orig, rec) in controls.iter().zip(&back) {
            for (a, b) in orig.iter().zip(rec) {
                assert!((a - b).abs() <= lsb, "round-trip error {} > 1 LSB", (a - b).abs());
            }
        }
        // Counts stay within the per-slot tick budget.
        for chan in &stream.counts {
            for &k in chan {
                assert!(k.unsigned_abs() as usize <= stream.ticks_per_slot);
            }
        }
    }

    #[test]
    fn slew_clip_bounds_sample_to_sample_steps() {
        let p = HardwareProfile {
            dac_bits: 0,
            filter_sigma: 0.0,
            crosstalk: 0.0,
            ..HardwareProfile::transmon_awg_8bit()
        };
        let lim = p.slew_limit * A_MAX;
        let mut u = vec![vec![A_MAX, -A_MAX, A_MAX, A_MAX, 0.0]];
        let mut ws = ConditionWorkspace::new();
        p.condition_controls(DT, A_MAX, &mut u, &mut ws);
        let mut prev = 0.0;
        for &x in &u[0] {
            assert!((x - prev).abs() <= lim + 1e-15);
            prev = x;
        }
    }

    #[test]
    fn crosstalk_preserves_uniform_drive_and_mixes_neighbours() {
        let p = HardwareProfile {
            dac_bits: 0,
            filter_sigma: 0.0,
            slew_limit: 0.0,
            ..HardwareProfile::transmon_awg_8bit()
        };
        let mut ws = ConditionWorkspace::new();
        // Row normalization: a drive that is equal on every
        // same-quadrature channel is unchanged.
        let mut uniform = vec![vec![0.05; 8]; 6];
        let before = uniform.clone();
        p.condition_controls(DT, A_MAX, &mut uniform, &mut ws);
        for (a, b) in uniform.iter().flatten().zip(before.iter().flatten()) {
            assert!((a - b).abs() < 1e-15);
        }
        // A lone X0 drive leaks onto X1 (channel 2) but not Y0/Y1.
        let mut lone = vec![vec![0.0; 4]; 6];
        lone[0] = vec![0.1; 4];
        p.condition_controls(DT, A_MAX, &mut lone, &mut ws);
        assert!(lone[2][0] > 0.0, "X0 should leak onto X1");
        assert_eq!(lone[1][0], 0.0, "X0 must not leak onto Y0");
        assert_eq!(lone[3][0], 0.0, "X0 must not leak onto Y1");
    }

    #[test]
    fn adjoint_matches_linear_map_transpose() {
        // ⟨C x, y⟩ = ⟨x, Cᵀ y⟩ for the linear stages (filter ∘ crosstalk).
        let p = HardwareProfile {
            dac_bits: 0,
            slew_limit: 0.0,
            ..HardwareProfile::transmon_awg_8bit()
        };
        let (n_chan, n_slots) = (6, 24);
        let mut ws = ConditionWorkspace::new();
        let mut rng = Rng(0xA11);
        let x = random_controls(&mut rng, n_chan, n_slots);
        let y = random_controls(&mut rng, n_chan, n_slots);
        let mut cx = x.clone();
        p.condition_controls(DT, A_MAX, &mut cx, &mut ws);
        let mut cty: Vec<f64> = y.iter().flatten().copied().collect();
        p.adjoint_grad(n_chan, n_slots, &mut cty, &mut ws);
        let lhs: f64 = cx
            .iter()
            .flatten()
            .zip(y.iter().flatten())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f64 = x
            .iter()
            .flatten()
            .zip(cty.iter())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-12,
            "adjoint mismatch: {lhs} vs {rhs}"
        );
    }
}

//! Complex floating-point scalar used throughout EPOC.
//!
//! The crate deliberately implements its own [`Complex64`] rather than pulling
//! in an external numerics crate: the numerical core of a pulse compiler must
//! be small and auditable, and the operations needed (arithmetic, `exp`,
//! polar form) are modest.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
///
/// # Examples
///
/// ```
/// use epoc_linalg::Complex64;
///
/// let i = Complex64::i();
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

/// Shorthand constructor for [`Complex64`].
///
/// # Examples
///
/// ```
/// use epoc_linalg::{c64, Complex64};
/// assert_eq!(c64(1.0, -2.0), Complex64::new(1.0, -2.0));
/// ```
#[inline]
pub const fn c64(re: f64, im: f64) -> Complex64 {
    Complex64 { re, im }
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = c64(0.0, 0.0);
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = c64(1.0, 0.0);
    /// The imaginary unit `i`.
    pub const I: Complex64 = c64(0.0, 1.0);

    /// Creates a complex number from its real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Returns the imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Self::I
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r·e^{iθ}`.
    ///
    /// # Examples
    ///
    /// ```
    /// use epoc_linalg::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12);
    /// assert!((z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^{iθ}` — a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate `re − im·i`.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns a non-finite value when `self` is zero, matching `1.0 / 0.0`
    /// semantics for floats.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Self {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// `true` when both parts are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// `true` when within `tol` of `other` (max of per-part distance).
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        c64(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        c64(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        c64(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹ by definition
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        c64(-self.re, -self.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: f64) -> Self {
        c64(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: f64) -> Self {
        c64(self.re - rhs, self.im)
    }
}

impl Mul<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl MulAssign<f64> for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        *self = self.scale(rhs);
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex64> for Complex64 {
    fn sum<I: Iterator<Item = &'a Complex64>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn arithmetic_basics() {
        let a = c64(1.0, 2.0);
        let b = c64(3.0, -1.0);
        assert_eq!(a + b, c64(4.0, 1.0));
        assert_eq!(a - b, c64(-2.0, 3.0));
        assert_eq!(a * b, c64(5.0, 5.0));
        assert!((a / b * b).approx_eq(a, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, c64(-1.0, 0.0));
    }

    #[test]
    fn conjugate_and_norms() {
        let z = c64(3.0, 4.0);
        assert_eq!(z.conj(), c64(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((z * z.conj()).approx_eq(c64(25.0, 0.0), TOL));
    }

    #[test]
    fn polar_round_trip() {
        let z = c64(-1.5, 2.25);
        let w = Complex64::from_polar(z.abs(), z.arg());
        assert!(z.approx_eq(w, 1e-12));
    }

    #[test]
    fn exp_of_i_pi_is_minus_one() {
        let z = (Complex64::I * PI).exp();
        assert!(z.approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn cis_quarter_turn() {
        let z = Complex64::cis(FRAC_PI_2);
        assert!(z.approx_eq(Complex64::I, 1e-12));
    }

    #[test]
    fn inverse_is_multiplicative_inverse() {
        let z = c64(0.3, -0.7);
        assert!((z * z.inv()).approx_eq(Complex64::ONE, TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        for &(re, im) in &[(4.0, 0.0), (-4.0, 0.0), (1.0, 1.0), (-2.0, -3.0)] {
            let z = c64(re, im);
            let s = z.sqrt();
            assert!((s * s).approx_eq(z, 1e-12), "sqrt failed for {z}");
        }
    }

    #[test]
    fn real_scalar_ops() {
        let z = c64(1.0, -2.0);
        assert_eq!(z * 2.0, c64(2.0, -4.0));
        assert_eq!(2.0 * z, c64(2.0, -4.0));
        assert_eq!(z / 2.0, c64(0.5, -1.0));
        assert_eq!(z + 1.0, c64(2.0, -2.0));
        assert_eq!(z - 1.0, c64(0.0, -2.0));
    }

    #[test]
    fn sum_iterator() {
        let v = vec![c64(1.0, 1.0), c64(2.0, -1.0), c64(-0.5, 0.5)];
        let s: Complex64 = v.iter().sum();
        assert!(s.approx_eq(c64(2.5, 0.5), TOL));
        let s2: Complex64 = v.into_iter().sum();
        assert!(s2.approx_eq(c64(2.5, 0.5), TOL));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(c64(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(c64(1.0, -2.0).to_string(), "1-2i");
    }
}

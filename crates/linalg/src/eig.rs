//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! GRAPE needs `exp(-i·dt·H)` for Hermitian `H` at every time slot, and exact
//! gradients are cheapest in `H`'s eigenbasis. The cyclic Jacobi method is a
//! simple, numerically robust way to diagonalize a complex Hermitian matrix:
//! repeatedly zero out the largest off-diagonal entries with 2×2 complex
//! rotations until the matrix is diagonal to machine precision.

use crate::complex::{c64, Complex64};
use crate::matrix::Matrix;

/// Eigendecomposition `H = V · diag(λ) · V†` of a Hermitian matrix.
///
/// Eigenvalues are real and sorted ascending; `vectors` holds the
/// corresponding eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct HermitianEig {
    /// Real eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Unitary matrix of eigenvectors (column `k` pairs with `values[k]`).
    pub vectors: Matrix,
}

impl HermitianEig {
    /// Reconstructs the original matrix `V · diag(λ) · V†`.
    pub fn reconstruct(&self) -> Matrix {
        let d = Matrix::from_diag(
            &self
                .values
                .iter()
                .map(|&l| c64(l, 0.0))
                .collect::<Vec<_>>(),
        );
        self.vectors.matmul(&d).matmul(&self.vectors.dagger())
    }

    /// Applies a scalar function to the eigenvalues: `f(H) = V·diag(f(λ))·V†`.
    pub fn map(&self, f: impl Fn(f64) -> Complex64) -> Matrix {
        let d = Matrix::from_diag(&self.values.iter().map(|&l| f(l)).collect::<Vec<_>>());
        self.vectors.matmul(&d).matmul(&self.vectors.dagger())
    }
}

/// Error produced when [`eigh`] is given an unsuitable matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// The input was not square.
    NotSquare,
    /// The input was not Hermitian within the built-in tolerance.
    NotHermitian,
    /// Jacobi sweeps failed to converge (pathological input).
    NoConvergence,
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NotSquare => write!(f, "matrix is not square"),
            EigError::NotHermitian => write!(f, "matrix is not hermitian"),
            EigError::NoConvergence => write!(f, "jacobi iteration did not converge"),
        }
    }
}

impl std::error::Error for EigError {}

const HERMITIAN_TOL: f64 = 1e-9;
const CONVERGE_TOL: f64 = 1e-13;
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a complex Hermitian matrix.
///
/// # Errors
///
/// Returns [`EigError::NotSquare`] / [`EigError::NotHermitian`] for invalid
/// input and [`EigError::NoConvergence`] if the Jacobi sweeps fail (which
/// does not happen for finite Hermitian input).
///
/// # Examples
///
/// ```
/// use epoc_linalg::{eigh, Matrix, c64};
///
/// let h = Matrix::from_rows(&[
///     &[c64(1.0, 0.0), c64(0.0, -1.0)],
///     &[c64(0.0, 1.0), c64(1.0, 0.0)],
/// ]);
/// let e = eigh(&h)?;
/// assert!((e.values[0] - 0.0).abs() < 1e-10);
/// assert!((e.values[1] - 2.0).abs() < 1e-10);
/// # Ok::<(), epoc_linalg::EigError>(())
/// ```
pub fn eigh(h: &Matrix) -> Result<HermitianEig, EigError> {
    if !h.is_square() {
        return Err(EigError::NotSquare);
    }
    let scale = h.max_norm().max(1.0);
    if !h.is_hermitian(HERMITIAN_TOL * scale) {
        return Err(EigError::NotHermitian);
    }
    let n = h.rows();
    let mut a = h.clone();
    // Force exact Hermitian symmetry so rounding never accumulates skew.
    for i in 0..n {
        for j in 0..i {
            let avg = (a[(i, j)] + a[(j, i)].conj()).scale(0.5);
            a[(i, j)] = avg;
            a[(j, i)] = avg.conj();
        }
        a[(i, i)] = c64(a[(i, i)].re, 0.0);
    }
    let mut v = Matrix::identity(n);

    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = off_diag_norm(&a);
        if off <= CONVERGE_TOL * scale {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= CONVERGE_TOL * scale * 1e-3 {
                    continue;
                }
                jacobi_rotate(&mut a, &mut v, p, q);
            }
        }
    }
    if off_diag_norm(&a) > 1e-8 * scale.max(1.0) {
        return Err(EigError::NoConvergence);
    }

    let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)].re, i)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
    let values: Vec<f64> = pairs.iter().map(|&(l, _)| l).collect();
    let vectors = Matrix::from_fn(n, n, |i, k| v[(i, pairs[k].1)]);
    Ok(HermitianEig { values, vectors })
}

fn off_diag_norm(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)].norm_sqr();
            }
        }
    }
    s.sqrt()
}

/// One complex Jacobi rotation zeroing `a[(p, q)]`, accumulating into `v`.
fn jacobi_rotate(a: &mut Matrix, v: &mut Matrix, p: usize, q: usize) {
    let n = a.rows();
    let app = a[(p, p)].re;
    let aqq = a[(q, q)].re;
    let apq = a[(p, q)];
    let abs_apq = apq.abs();
    if abs_apq == 0.0 {
        return;
    }
    // Phase that makes the off-diagonal real: apq = |apq|·e^{iφ}.
    let phase = apq / c64(abs_apq, 0.0);
    // Real Jacobi angle for the symmetrized 2×2 block.
    let tau = (aqq - app) / (2.0 * abs_apq);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    // Complex rotation: column p gets c, column q gets s·phase factors.
    let s_ph = phase.scale(s);
    // Update A = G† A G where G affects columns/rows p and q.
    for i in 0..n {
        let aip = a[(i, p)];
        let aiq = a[(i, q)];
        a[(i, p)] = aip.scale(c) - aiq * s_ph.conj();
        a[(i, q)] = aip * s_ph + aiq.scale(c);
    }
    for j in 0..n {
        let apj = a[(p, j)];
        let aqj = a[(q, j)];
        a[(p, j)] = apj.scale(c) - aqj * s_ph;
        a[(q, j)] = apj * s_ph.conj() + aqj.scale(c);
    }
    // Clean the rotated entries.
    a[(p, q)] = Complex64::ZERO;
    a[(q, p)] = Complex64::ZERO;
    a[(p, p)] = c64(a[(p, p)].re, 0.0);
    a[(q, q)] = c64(a[(q, q)].re, 0.0);
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = vip.scale(c) - viq * s_ph.conj();
        v[(i, q)] = vip * s_ph + viq.scale(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> Matrix {
        // Simple deterministic pseudo-random Hermitian matrix.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = c64(next(), 0.0);
            for j in (i + 1)..n {
                let z = c64(next(), next());
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let h = Matrix::from_diag(&[c64(3.0, 0.0), c64(-1.0, 0.0), c64(0.5, 0.0)]);
        let e = eigh(&h).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 0.5).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&h, 1e-10));
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let y = Matrix::from_rows(&[
            &[Complex64::ZERO, c64(0.0, -1.0)],
            &[c64(0.0, 1.0), Complex64::ZERO],
        ]);
        let e = eigh(&y).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!(e.vectors.is_unitary(1e-9));
        assert!(e.reconstruct().approx_eq(&y, 1e-9));
    }

    #[test]
    fn random_matrices_reconstruct() {
        for n in [2, 3, 5, 8] {
            for seed in 1..4u64 {
                let h = random_hermitian(n, seed * 31 + n as u64);
                let e = eigh(&h).unwrap_or_else(|err| panic!("eigh failed n={n}: {err}"));
                assert!(e.vectors.is_unitary(1e-8), "V not unitary for n={n}");
                assert!(
                    e.reconstruct().approx_eq(&h, 1e-8),
                    "reconstruction failed for n={n} seed={seed}"
                );
                // Sorted ascending.
                for w in e.values.windows(2) {
                    assert!(w[0] <= w[1] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn map_identity_function_reconstructs() {
        let h = random_hermitian(4, 7);
        let e = eigh(&h).unwrap();
        let same = e.map(|l| c64(l, 0.0));
        assert!(same.approx_eq(&h, 1e-8));
    }

    #[test]
    fn map_exp_is_positive_definite() {
        let h = random_hermitian(3, 11);
        let e = eigh(&h).unwrap();
        let exph = e.map(|l| c64(l.exp(), 0.0));
        // exp(H) is Hermitian positive definite: check Hermitian + positive trace.
        assert!(exph.is_hermitian(1e-8));
        assert!(exph.trace().re > 0.0);
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(eigh(&m).unwrap_err(), EigError::NotSquare);
    }

    #[test]
    fn rejects_non_hermitian() {
        let mut m = Matrix::identity(2);
        m[(0, 1)] = c64(5.0, 0.0);
        assert_eq!(eigh(&m).unwrap_err(), EigError::NotHermitian);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let h = random_hermitian(6, 5);
        let e = eigh(&h).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - h.trace().re).abs() < 1e-8);
    }
}

//! Hermitian eigendecomposition via the cyclic complex Jacobi method.
//!
//! GRAPE needs `exp(-i·dt·H)` for Hermitian `H` at every time slot, and exact
//! gradients are cheapest in `H`'s eigenbasis. The cyclic Jacobi method is a
//! simple, numerically robust way to diagonalize a complex Hermitian matrix:
//! repeatedly zero out the largest off-diagonal entries with 2×2 complex
//! rotations until the matrix is diagonal to machine precision.

use crate::complex::{c64, Complex64};
use crate::matrix::Matrix;
use std::cell::RefCell;

/// Eigendecomposition `H = V · diag(λ) · V†` of a Hermitian matrix.
///
/// Eigenvalues are real and sorted ascending; `vectors` holds the
/// corresponding eigenvectors as columns.
#[derive(Debug, Clone)]
pub struct HermitianEig {
    /// Real eigenvalues, ascending.
    pub values: Vec<f64>,
    /// Unitary matrix of eigenvectors (column `k` pairs with `values[k]`).
    pub vectors: Matrix,
}

impl HermitianEig {
    /// Reconstructs the original matrix `V · diag(λ) · V†`.
    pub fn reconstruct(&self) -> Matrix {
        let d = Matrix::from_diag(
            &self
                .values
                .iter()
                .map(|&l| c64(l, 0.0))
                .collect::<Vec<_>>(),
        );
        self.vectors.matmul(&d).matmul(&self.vectors.dagger())
    }

    /// Applies a scalar function to the eigenvalues: `f(H) = V·diag(f(λ))·V†`.
    pub fn map(&self, f: impl Fn(f64) -> Complex64) -> Matrix {
        let d = Matrix::from_diag(&self.values.iter().map(|&l| f(l)).collect::<Vec<_>>());
        self.vectors.matmul(&d).matmul(&self.vectors.dagger())
    }
}

/// Error produced when [`eigh`] is given an unsuitable matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EigError {
    /// The input was not square.
    NotSquare,
    /// The input was not Hermitian within the built-in tolerance.
    NotHermitian,
    /// Jacobi sweeps failed to converge (pathological input).
    NoConvergence,
}

impl std::fmt::Display for EigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EigError::NotSquare => write!(f, "matrix is not square"),
            EigError::NotHermitian => write!(f, "matrix is not hermitian"),
            EigError::NoConvergence => write!(f, "jacobi iteration did not converge"),
        }
    }
}

impl std::error::Error for EigError {}

const HERMITIAN_TOL: f64 = 1e-9;
const CONVERGE_TOL: f64 = 1e-13;
const MAX_SWEEPS: usize = 100;

/// Computes the eigendecomposition of a complex Hermitian matrix.
///
/// # Errors
///
/// Returns [`EigError::NotSquare`] / [`EigError::NotHermitian`] for invalid
/// input and [`EigError::NoConvergence`] if the Jacobi sweeps fail (which
/// does not happen for finite Hermitian input).
///
/// # Examples
///
/// ```
/// use epoc_linalg::{eigh, Matrix, c64};
///
/// let h = Matrix::from_rows(&[
///     &[c64(1.0, 0.0), c64(0.0, -1.0)],
///     &[c64(0.0, 1.0), c64(1.0, 0.0)],
/// ]);
/// let e = eigh(&h)?;
/// assert!((e.values[0] - 0.0).abs() < 1e-10);
/// assert!((e.values[1] - 2.0).abs() < 1e-10);
/// # Ok::<(), epoc_linalg::EigError>(())
/// ```
pub fn eigh(h: &Matrix) -> Result<HermitianEig, EigError> {
    let mut out = HermitianEig {
        values: Vec::new(),
        vectors: Matrix::zeros(0, 0),
    };
    eigh_into(h, &mut out)?;
    Ok(out)
}

thread_local! {
    /// Working matrix, eigenvector accumulator, and sort scratch for
    /// [`eigh_into`]. Thread-local so repeated decompositions (one per
    /// GRAPE slot per iteration) are allocation-free after warm-up.
    static EIG_SCRATCH: RefCell<EigScratch> = RefCell::new(EigScratch::default());
}

#[derive(Default)]
struct EigScratch {
    a: Vec<Complex64>,
    v: Vec<Complex64>,
    pairs: Vec<(f64, usize)>,
}

/// Computes the eigendecomposition of a complex Hermitian matrix into an
/// existing [`HermitianEig`], reusing its allocations.
///
/// This is the hot-loop form of [`eigh`]: the working matrix and rotation
/// accumulator live in thread-local scratch, so a decomposition per GRAPE
/// time slot costs no allocations after warm-up. The result is fully
/// deterministic for a given input.
///
/// # Errors
///
/// Same contract as [`eigh`]. On error, `out` is left in an unspecified
/// (but valid) state.
pub fn eigh_into(h: &Matrix, out: &mut HermitianEig) -> Result<(), EigError> {
    if !h.is_square() {
        return Err(EigError::NotSquare);
    }
    let n = h.rows();
    let hd = h.as_slice();
    // max |entry| via norm_sqr: one sqrt total instead of n² hypots.
    let scale = hd
        .iter()
        .map(|z| z.norm_sqr())
        .fold(0.0, f64::max)
        .sqrt()
        .max(1.0);
    let htol = HERMITIAN_TOL * scale;
    let htol2 = htol * htol;
    for i in 0..n {
        for j in 0..=i {
            if (hd[i * n + j] - hd[j * n + i].conj()).norm_sqr() > htol2 {
                return Err(EigError::NotHermitian);
            }
        }
    }
    EIG_SCRATCH.with(|cell| {
        let scratch = &mut *cell.borrow_mut();
        let a = &mut scratch.a;
        a.clear();
        a.extend_from_slice(hd);
        // Force exact Hermitian symmetry so rounding never accumulates skew.
        for i in 0..n {
            for j in 0..i {
                let avg = (a[i * n + j] + a[j * n + i].conj()).scale(0.5);
                a[i * n + j] = avg;
                a[j * n + i] = avg.conj();
            }
            a[i * n + i] = c64(a[i * n + i].re, 0.0);
        }
        let v = &mut scratch.v;
        v.clear();
        v.resize(n * n, Complex64::ZERO);
        for i in 0..n {
            v[i * n + i] = Complex64::ONE;
        }

        // All thresholds compare squared magnitudes — same decisions as the
        // historical |·| comparisons, without per-entry square roots.
        let conv2 = (CONVERGE_TOL * scale) * (CONVERGE_TOL * scale);
        // Per-entry rotation skip: if every off-diagonal entry is below
        // conv2 / (n·(n−1)), the total off-norm is already below conv2, so
        // rotating such entries cannot be needed for convergence. (The
        // sweep loop still only exits on the full-norm check.)
        let skip2 = conv2 / ((n * n.saturating_sub(1)).max(1) as f64);
        for _sweep in 0..MAX_SWEEPS {
            if off_diag_sqr(a, n) <= conv2 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    if a[p * n + q].norm_sqr() <= skip2 {
                        continue;
                    }
                    jacobi_rotate(a, v, n, p, q);
                }
            }
        }
        if off_diag_sqr(a, n) > (1e-8 * scale) * (1e-8 * scale) {
            return Err(EigError::NoConvergence);
        }

        let pairs = &mut scratch.pairs;
        pairs.clear();
        pairs.extend((0..n).map(|i| (a[i * n + i].re, i)));
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite eigenvalues"));
        out.values.clear();
        out.values.extend(pairs.iter().map(|&(l, _)| l));
        if out.vectors.rows() != n || out.vectors.cols() != n {
            out.vectors = Matrix::zeros(n, n);
        }
        let od = out.vectors.as_mut_slice();
        for i in 0..n {
            let vrow = &v[i * n..(i + 1) * n];
            for (dst, &(_, src)) in od[i * n..(i + 1) * n].iter_mut().zip(pairs.iter()) {
                *dst = vrow[src];
            }
        }
        Ok(())
    })
}

fn off_diag_sqr(a: &[Complex64], n: usize) -> f64 {
    let mut s = 0.0;
    for (i, row) in a.chunks_exact(n).enumerate() {
        for (j, z) in row.iter().enumerate() {
            if i != j {
                s += z.norm_sqr();
            }
        }
    }
    s
}

/// One complex Jacobi rotation zeroing `a[p·n+q]`, accumulating into `v`.
/// Operates on flat row-major slices; requires `p < q`.
fn jacobi_rotate(a: &mut [Complex64], v: &mut [Complex64], n: usize, p: usize, q: usize) {
    let app = a[p * n + p].re;
    let aqq = a[q * n + q].re;
    let apq = a[p * n + q];
    let abs2 = apq.norm_sqr();
    if abs2 == 0.0 {
        return;
    }
    let abs_apq = abs2.sqrt();
    // Phase that makes the off-diagonal real: apq = |apq|·e^{iφ}.
    let phase = c64(apq.re / abs_apq, apq.im / abs_apq);
    // Real Jacobi angle for the symmetrized 2×2 block.
    let tau = (aqq - app) / (2.0 * abs_apq);
    let t = if tau >= 0.0 {
        1.0 / (tau + (1.0 + tau * tau).sqrt())
    } else {
        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
    };
    let c = 1.0 / (1.0 + t * t).sqrt();
    let s = t * c;
    // Complex rotation: column p gets c, column q gets s·phase factors.
    let s_ph = phase.scale(s);
    let s_ph_c = s_ph.conj();
    // Update A = G† A G where G affects columns/rows p and q.
    for row in a.chunks_exact_mut(n) {
        let aip = row[p];
        let aiq = row[q];
        row[p] = aip.scale(c) - aiq * s_ph_c;
        row[q] = aip * s_ph + aiq.scale(c);
    }
    {
        // Rows p and q are contiguous; p < q lets split_at_mut alias-free.
        let (lo, hi) = a.split_at_mut(q * n);
        let rp = &mut lo[p * n..p * n + n];
        let rq = &mut hi[..n];
        for (x, y) in rp.iter_mut().zip(rq.iter_mut()) {
            let apj = *x;
            let aqj = *y;
            *x = apj.scale(c) - aqj * s_ph;
            *y = apj * s_ph_c + aqj.scale(c);
        }
    }
    // Clean the rotated entries.
    a[p * n + q] = Complex64::ZERO;
    a[q * n + p] = Complex64::ZERO;
    a[p * n + p] = c64(a[p * n + p].re, 0.0);
    a[q * n + q] = c64(a[q * n + q].re, 0.0);
    for row in v.chunks_exact_mut(n) {
        let vip = row[p];
        let viq = row[q];
        row[p] = vip.scale(c) - viq * s_ph_c;
        row[q] = vip * s_ph + viq.scale(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_hermitian(n: usize, seed: u64) -> Matrix {
        // Simple deterministic pseudo-random Hermitian matrix.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = c64(next(), 0.0);
            for j in (i + 1)..n {
                let z = c64(next(), next());
                m[(i, j)] = z;
                m[(j, i)] = z.conj();
            }
        }
        m
    }

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let h = Matrix::from_diag(&[c64(3.0, 0.0), c64(-1.0, 0.0), c64(0.5, 0.0)]);
        let e = eigh(&h).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-12);
        assert!((e.values[1] - 0.5).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
        assert!(e.reconstruct().approx_eq(&h, 1e-10));
    }

    #[test]
    fn pauli_y_eigenvalues() {
        let y = Matrix::from_rows(&[
            &[Complex64::ZERO, c64(0.0, -1.0)],
            &[c64(0.0, 1.0), Complex64::ZERO],
        ]);
        let e = eigh(&y).unwrap();
        assert!((e.values[0] + 1.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        assert!(e.vectors.is_unitary(1e-9));
        assert!(e.reconstruct().approx_eq(&y, 1e-9));
    }

    #[test]
    fn random_matrices_reconstruct() {
        for n in [2, 3, 5, 8] {
            for seed in 1..4u64 {
                let h = random_hermitian(n, seed * 31 + n as u64);
                let e = eigh(&h).unwrap_or_else(|err| panic!("eigh failed n={n}: {err}"));
                assert!(e.vectors.is_unitary(1e-8), "V not unitary for n={n}");
                assert!(
                    e.reconstruct().approx_eq(&h, 1e-8),
                    "reconstruction failed for n={n} seed={seed}"
                );
                // Sorted ascending.
                for w in e.values.windows(2) {
                    assert!(w[0] <= w[1] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn map_identity_function_reconstructs() {
        let h = random_hermitian(4, 7);
        let e = eigh(&h).unwrap();
        let same = e.map(|l| c64(l, 0.0));
        assert!(same.approx_eq(&h, 1e-8));
    }

    #[test]
    fn map_exp_is_positive_definite() {
        let h = random_hermitian(3, 11);
        let e = eigh(&h).unwrap();
        let exph = e.map(|l| c64(l.exp(), 0.0));
        // exp(H) is Hermitian positive definite: check Hermitian + positive trace.
        assert!(exph.is_hermitian(1e-8));
        assert!(exph.trace().re > 0.0);
    }

    #[test]
    fn rejects_non_square() {
        let m = Matrix::zeros(2, 3);
        assert_eq!(eigh(&m).unwrap_err(), EigError::NotSquare);
    }

    #[test]
    fn rejects_non_hermitian() {
        let mut m = Matrix::identity(2);
        m[(0, 1)] = c64(5.0, 0.0);
        assert_eq!(eigh(&m).unwrap_err(), EigError::NotHermitian);
    }

    #[test]
    fn eigh_into_reuses_and_matches_eigh() {
        let mut out = HermitianEig {
            values: Vec::new(),
            vectors: Matrix::zeros(0, 0),
        };
        for n in [2usize, 3, 4, 6] {
            let h = random_hermitian(n, n as u64 * 17 + 1);
            eigh_into(&h, &mut out).unwrap();
            let fresh = eigh(&h).unwrap();
            // Same deterministic algorithm, so bit-identical results
            // regardless of what the scratch held before.
            assert_eq!(out.values, fresh.values, "values differ at n={n}");
            assert_eq!(out.vectors, fresh.vectors, "vectors differ at n={n}");
        }
        // Repeat run on the same input is bit-stable.
        let h = random_hermitian(4, 99);
        eigh_into(&h, &mut out).unwrap();
        let first = (out.values.clone(), out.vectors.clone());
        eigh_into(&h, &mut out).unwrap();
        assert_eq!(first.0, out.values);
        assert_eq!(first.1, out.vectors);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let h = random_hermitian(6, 5);
        let e = eigh(&h).unwrap();
        let sum: f64 = e.values.iter().sum();
        assert!((sum - h.trace().re).abs() < 1e-8);
    }
}

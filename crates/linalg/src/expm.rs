//! Matrix exponentials.
//!
//! Two paths are provided:
//!
//! * [`expm_hermitian_propagator`] — the GRAPE hot path: `exp(-i·t·H)` for
//!   Hermitian `H`, computed exactly through the eigendecomposition
//!   (`V·diag(e^{-i t λ})·V†`). This also hands back the eigensystem so
//!   exact control gradients can reuse it.
//! * [`expm`] — general matrices, scaling-and-squaring with a Padé(6,6)
//!   approximant; used for verification and for non-Hermitian effective
//!   generators.

use crate::complex::Complex64;
use crate::eig::{eigh, EigError, HermitianEig};
use crate::matrix::Matrix;

/// Computes `exp(-i·t·H)` for Hermitian `H` via eigendecomposition.
///
/// Returns the unitary propagator together with the eigensystem of `H`
/// (which callers like GRAPE reuse for exact gradients).
///
/// # Errors
///
/// Propagates [`EigError`] when `H` is not square/Hermitian.
///
/// # Examples
///
/// ```
/// use epoc_linalg::{expm_hermitian_propagator, Matrix, c64};
/// use std::f64::consts::PI;
///
/// // exp(-i·π·Z/2) = diag(e^{-iπ/2}, e^{iπ/2}) = -i·Z
/// let z = Matrix::from_diag(&[c64(1.0, 0.0), c64(-1.0, 0.0)]);
/// let (u, _) = expm_hermitian_propagator(&z, PI / 2.0)?;
/// assert!(u[(0, 0)].approx_eq(c64(0.0, -1.0), 1e-12));
/// assert!(u[(1, 1)].approx_eq(c64(0.0, 1.0), 1e-12));
/// # Ok::<(), epoc_linalg::EigError>(())
/// ```
pub fn expm_hermitian_propagator(h: &Matrix, t: f64) -> Result<(Matrix, HermitianEig), EigError> {
    let e = eigh(h)?;
    let u = e.map(|l| Complex64::cis(-l * t));
    Ok((u, e))
}

/// Computes `exp(-i·t·H)` for Hermitian `H`, discarding the eigensystem.
///
/// # Errors
///
/// Propagates [`EigError`] when `H` is not square/Hermitian.
pub fn expm_ih(h: &Matrix, t: f64) -> Result<Matrix, EigError> {
    Ok(expm_hermitian_propagator(h, t)?.0)
}

/// General matrix exponential `exp(A)` via Padé(6,6) scaling and squaring.
///
/// Accurate to ~1e-12 for well-conditioned inputs of the sizes EPOC uses
/// (≤ 256×256).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn expm(a: &Matrix) -> Matrix {
    assert!(a.is_square(), "expm requires a square matrix");
    let n = a.rows();
    let norm = a.one_norm();
    // Scale so the scaled norm is below 0.5 for the Padé approximant.
    let s = if norm > 0.5 {
        (norm / 0.5).log2().ceil() as u32
    } else {
        0
    };
    let a_scaled = a.scale_re(1.0 / f64::powi(2.0, s as i32));

    // Padé(6,6): N(A)/D(A) with N = Σ c_k A^k, D = Σ c_k (-A)^k.
    const C: [f64; 7] = [
        1.0,
        0.5,
        5.0 / 44.0,
        1.0 / 66.0,
        1.0 / 792.0,
        1.0 / 15840.0,
        1.0 / 665280.0,
    ];
    let mut num = Matrix::identity(n);
    let mut den = Matrix::identity(n);
    let mut pow = Matrix::identity(n);
    // `tmp` ping-pongs with `pow`/`r` so the power and squaring loops run
    // without per-step allocations.
    let mut tmp = Matrix::zeros(n, n);
    for (k, &ck) in C.iter().enumerate().skip(1) {
        pow.matmul_into(&a_scaled, &mut tmp);
        std::mem::swap(&mut pow, &mut tmp);
        let term = pow.scale_re(ck);
        num += &term;
        if k % 2 == 0 {
            den += &term;
        } else {
            den += &term.scale_re(-1.0);
        }
    }
    let mut r = solve(&den, &num);
    for _ in 0..s {
        r.matmul_into(&r, &mut tmp);
        std::mem::swap(&mut r, &mut tmp);
    }
    r
}

/// Solves `A·X = B` by Gaussian elimination with partial pivoting.
///
/// # Panics
///
/// Panics if `a` is not square, shapes are incompatible, or `a` is singular
/// to working precision.
pub fn solve(a: &Matrix, b: &Matrix) -> Matrix {
    assert!(a.is_square(), "solve requires square A");
    assert_eq!(a.rows(), b.rows(), "shape mismatch in solve");
    let n = a.rows();
    let m = b.cols();
    let mut lu = a.clone();
    let mut x = b.clone();
    for col in 0..n {
        // Partial pivot.
        let mut piv = col;
        let mut best = lu[(col, col)].abs();
        for r in (col + 1)..n {
            let v = lu[(r, col)].abs();
            if v > best {
                best = v;
                piv = r;
            }
        }
        assert!(best > 1e-300, "singular matrix in solve");
        if piv != col {
            for j in 0..n {
                let tmp = lu[(col, j)];
                lu[(col, j)] = lu[(piv, j)];
                lu[(piv, j)] = tmp;
            }
            for j in 0..m {
                let tmp = x[(col, j)];
                x[(col, j)] = x[(piv, j)];
                x[(piv, j)] = tmp;
            }
        }
        let inv = lu[(col, col)].inv();
        for r in (col + 1)..n {
            let f = lu[(r, col)] * inv;
            if f == Complex64::ZERO {
                continue;
            }
            for j in col..n {
                let v = lu[(col, j)];
                lu[(r, j)] -= f * v;
            }
            for j in 0..m {
                let v = x[(col, j)];
                x[(r, j)] -= f * v;
            }
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let inv = lu[(col, col)].inv();
        for j in 0..m {
            let mut acc = x[(col, j)];
            for k in (col + 1)..n {
                acc -= lu[(col, k)] * x[(k, j)];
            }
            x[(col, j)] = acc * inv;
        }
    }
    x
}

/// Inverse of a square matrix via [`solve`] against the identity.
///
/// # Panics
///
/// Panics if the matrix is singular or not square.
pub fn inverse(a: &Matrix) -> Matrix {
    solve(a, &Matrix::identity(a.rows()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;
    use std::f64::consts::PI;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[
            &[Complex64::ZERO, Complex64::ONE],
            &[Complex64::ONE, Complex64::ZERO],
        ])
    }

    #[test]
    fn expm_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert!(expm(&z).approx_eq(&Matrix::identity(3), 1e-14));
    }

    #[test]
    fn expm_diagonal() {
        let d = Matrix::from_diag(&[c64(1.0, 0.0), c64(0.0, PI)]);
        let e = expm(&d);
        assert!(e[(0, 0)].approx_eq(c64(1f64.exp(), 0.0), 1e-12));
        assert!(e[(1, 1)].approx_eq(c64(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn expm_rotation_about_x() {
        // exp(-i θ/2 X) = cos(θ/2) I - i sin(θ/2) X
        let theta: f64 = 0.7;
        let gen = pauli_x().scale(c64(0.0, -theta / 2.0));
        let u = expm(&gen);
        let expect = Matrix::from_rows(&[
            &[c64((theta / 2.0).cos(), 0.0), c64(0.0, -(theta / 2.0).sin())],
            &[c64(0.0, -(theta / 2.0).sin()), c64((theta / 2.0).cos(), 0.0)],
        ]);
        assert!(u.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn hermitian_propagator_matches_pade() {
        let h = Matrix::from_rows(&[
            &[c64(0.3, 0.0), c64(0.1, -0.2)],
            &[c64(0.1, 0.2), c64(-0.5, 0.0)],
        ]);
        let t = 1.7;
        let (u, _) = expm_hermitian_propagator(&h, t).unwrap();
        let pade = expm(&h.scale(c64(0.0, -t)));
        assert!(u.approx_eq(&pade, 1e-10));
        assert!(u.is_unitary(1e-10));
    }

    #[test]
    fn propagator_composition() {
        // exp(-i(t1+t2)H) = exp(-i t2 H) exp(-i t1 H)
        let h = pauli_x();
        let u1 = expm_ih(&h, 0.4).unwrap();
        let u2 = expm_ih(&h, 0.9).unwrap();
        let u12 = expm_ih(&h, 1.3).unwrap();
        assert!(u2.matmul(&u1).approx_eq(&u12, 1e-10));
    }

    #[test]
    fn expm_inverse_property() {
        let a = Matrix::from_rows(&[
            &[c64(0.1, 0.3), c64(-0.2, 0.0)],
            &[c64(0.0, 0.5), c64(0.2, -0.1)],
        ]);
        let e = expm(&a);
        let einv = expm(&a.scale_re(-1.0));
        assert!(e.matmul(&einv).approx_eq(&Matrix::identity(2), 1e-11));
    }

    #[test]
    fn expm_large_norm_scaling_path() {
        // Norm >> 0.5 exercises the squaring steps.
        let h = pauli_x().scale_re(20.0);
        let u = expm(&h.scale(c64(0.0, -1.0)));
        assert!(u.is_unitary(1e-8));
        let exact = expm_ih(&pauli_x(), 20.0).unwrap();
        assert!(u.approx_eq(&exact, 1e-7));
    }

    #[test]
    fn solve_simple_system() {
        let a = Matrix::from_rows(&[
            &[c64(2.0, 0.0), c64(1.0, 0.0)],
            &[c64(1.0, 0.0), c64(3.0, 0.0)],
        ]);
        let b = Matrix::from_vec(2, 1, vec![c64(5.0, 0.0), c64(10.0, 0.0)]);
        let x = solve(&a, &b);
        assert!(x[(0, 0)].approx_eq(c64(1.0, 0.0), 1e-12));
        assert!(x[(1, 0)].approx_eq(c64(3.0, 0.0), 1e-12));
    }

    #[test]
    fn inverse_round_trip() {
        let a = Matrix::from_rows(&[
            &[c64(1.0, 1.0), c64(2.0, 0.0)],
            &[c64(0.0, -1.0), c64(1.0, 0.5)],
        ]);
        let inv = inverse(&a);
        assert!(a.matmul(&inv).approx_eq(&Matrix::identity(2), 1e-12));
        assert!(inv.matmul(&a).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn solve_rejects_singular() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::identity(2);
        solve(&a, &b);
    }
}

//! # epoc-linalg — complex dense linear algebra for the EPOC pulse compiler
//!
//! The numerical substrate of the EPOC reproduction: complex scalars, dense
//! matrices, Hermitian eigendecomposition, matrix exponentials, and
//! unitary-specific metrics (phase-invariant fidelity/distance, pulse-cache
//! fingerprints).
//!
//! Everything is implemented from scratch on `f64` — no external numerics
//! crates — because the unitaries a pulse compiler handles are small (2×2 up
//! to ~256×256 for 8-qubit blocks) and an auditable self-contained core is
//! worth more than peak FLOPs here.
//!
//! ## Quick tour
//!
//! ```
//! use epoc_linalg::{c64, Matrix, expm_ih, phase_invariant_distance};
//!
//! // Build the Pauli-X Hamiltonian and evolve for t = π/2:
//! let x = Matrix::from_rows(&[
//!     &[c64(0.0, 0.0), c64(1.0, 0.0)],
//!     &[c64(1.0, 0.0), c64(0.0, 0.0)],
//! ]);
//! let u = expm_ih(&x, std::f64::consts::FRAC_PI_2)?; // = -i·X
//! assert!(phase_invariant_distance(&u, &x) < 1e-7);   // X up to global phase
//! # Ok::<(), epoc_linalg::EigError>(())
//! ```

#![warn(missing_docs)]

mod complex;
mod eig;
mod expm;
mod matrix;
mod random;
mod simd;
mod unitary;

pub use complex::{c64, Complex64};
pub use eig::{eigh, eigh_into, EigError, HermitianEig};
pub use simd::{force_simd, mix_adjacent, mix_pair, mixed_pair_trace, simd_active};
pub use expm::{expm, expm_hermitian_propagator, expm_ih, inverse, solve};
pub use matrix::Matrix;
pub use random::{random_gaussian_matrix, random_hermitian, random_unitary};
pub use unitary::{
    approx_eq_up_to_phase, average_gate_fidelity, canonicalize_phase, phase_invariant_distance,
    phase_invariant_fidelity, relative_phase, PhaseSensitiveKey, UnitaryKey,
};

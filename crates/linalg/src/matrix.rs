//! Dense complex matrices.
//!
//! [`Matrix`] is a row-major dense matrix of [`Complex64`] sized for the
//! unitaries a pulse compiler manipulates (2×2 up to a few hundred square —
//! circuit blocks of up to ~8 qubits). All the linear algebra EPOC needs is
//! provided here: products, Kronecker products, adjoints, traces and norms.

use crate::complex::{c64, Complex64};
use crate::simd;
use std::cell::RefCell;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major complex matrix.
///
/// # Examples
///
/// ```
/// use epoc_linalg::{Matrix, c64};
///
/// let x = Matrix::from_rows(&[
///     &[c64(0.0, 0.0), c64(1.0, 0.0)],
///     &[c64(1.0, 0.0), c64(0.0, 0.0)],
/// ]);
/// assert!(x.is_unitary(1e-12));
/// assert_eq!(&x * &x, Matrix::identity(2));
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::ONE;
        }
        m
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[Complex64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Creates a matrix whose entries are produced by `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[Complex64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` for a square matrix.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Flat row-major view of the entries.
    #[inline]
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Mutable flat row-major view of the entries.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Complex64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat row-major entries.
    #[inline]
    pub fn into_vec(self) -> Vec<Complex64> {
        self.data
    }

    /// Borrowed entry access without panicking.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Option<&Complex64> {
        if row < self.rows && col < self.cols {
            Some(&self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Returns a row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: usize) -> &[Complex64] {
        assert!(row < self.rows, "row index out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Conjugate transpose (dagger, †).
    #[must_use]
    pub fn dagger(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        self.dagger_into(&mut out);
        out
    }

    /// Conjugate transpose, written into `out` (allocation reused).
    pub fn dagger_into(&self, out: &mut Self) {
        out.reshape(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j].conj();
            }
        }
    }

    /// Plain transpose (no conjugation).
    #[must_use]
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Element-wise complex conjugate.
    #[must_use]
    pub fn conj(&self) -> Self {
        let data = self.data.iter().map(|z| z.conj()).collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every entry by a complex scalar.
    #[must_use]
    pub fn scale(&self, k: Complex64) -> Self {
        let data = self.data.iter().map(|&z| z * k).collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every entry by a real scalar.
    #[must_use]
    pub fn scale_re(&self, k: f64) -> Self {
        self.scale(c64(k, 0.0))
    }

    /// Multiplies every entry by a complex scalar in place.
    pub fn scale_in_place(&mut self, k: Complex64) {
        for z in &mut self.data {
            *z *= k;
        }
    }

    /// Overwrites `self` with the contents of `src`, reusing the allocation.
    pub fn copy_from(&mut self, src: &Self) {
        self.reshape(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Re-dimensions the matrix in place, reusing its allocation. Entries
    /// are unspecified afterwards; every caller overwrites them fully.
    fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, Complex64::ZERO);
    }

    /// Matrix product `self · rhs`.
    ///
    /// Dispatches to fully unrolled kernels for the 1×1/2×2/4×4 operators
    /// that dominate VUG-based synthesis, and to a cache-blocked kernel
    /// over split real/imaginary planes for everything larger. Allocates
    /// the result; use [`Matrix::matmul_into`] in hot loops.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    #[must_use]
    pub fn matmul(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// Matrix product `self · rhs`, written into `out`.
    ///
    /// `out` is reshaped to `self.rows() × rhs.cols()`; its previous
    /// contents are discarded but its allocation is reused, so a scratch
    /// matrix threaded through an iteration loop costs no allocations
    /// after warm-up.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, rhs.rows,
            "dimension mismatch: ({}, {}) x ({}, {})",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.reshape(self.rows, rhs.cols);
        if self.rows == self.cols && rhs.rows == rhs.cols {
            // Square fast paths: the synthesis and QOC inner loops run
            // almost entirely on 2×2 (VUG) and 4×4 (2-qubit) products.
            match self.rows {
                1 => {
                    out.data[0] = self.data[0] * rhs.data[0];
                    return;
                }
                2 => return mm_unrolled::<2>(&self.data, &rhs.data, &mut out.data),
                4 => return simd::mm4(&self.data, &rhs.data, &mut out.data),
                _ => {}
            }
        }
        mm_blocked(
            &self.data, &rhs.data, &mut out.data, self.rows, self.cols, rhs.cols,
        );
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != v.len()`.
    #[must_use]
    pub fn matvec(&self, v: &[Complex64]) -> Vec<Complex64> {
        let mut out = Vec::new();
        self.matvec_into(v, &mut out);
        out
    }

    /// Matrix–vector product `self · v`, written into `out` (allocation
    /// reused).
    ///
    /// Each row dot product accumulates into two interleaved partial sums
    /// (even/odd element index) combined at the end — the same scheme on
    /// both the SIMD and scalar dispatch paths, so results are
    /// bit-identical across them.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != v.len()`.
    pub fn matvec_into(&self, v: &[Complex64], out: &mut Vec<Complex64>) {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        out.clear();
        out.resize(self.rows, Complex64::ZERO);
        if self.cols == 0 {
            return;
        }
        for (slot, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            *slot = simd::dot_pairs(row, v);
        }
    }

    /// Kronecker (tensor) product `self ⊗ rhs`.
    ///
    /// # Examples
    ///
    /// ```
    /// use epoc_linalg::Matrix;
    /// let i2 = Matrix::identity(2);
    /// assert_eq!(i2.kron(&i2), Matrix::identity(4));
    /// ```
    #[must_use]
    pub fn kron(&self, rhs: &Self) -> Self {
        let mut out = Self::zeros(self.rows * rhs.rows, self.cols * rhs.cols);
        self.kron_into(rhs, &mut out);
        out
    }

    /// Kronecker product `self ⊗ rhs`, written into `out` (allocation
    /// reused).
    ///
    /// Keeps the zero-skip branch: structured operators (embedded gates,
    /// controlled unitaries) are mostly zeros, and skipping a whole
    /// `rhs`-sized tile per zero entry is a large win there — unlike in
    /// the dense matmul path, where the same branch only mispredicts.
    pub fn kron_into(&self, rhs: &Self, out: &mut Self) {
        out.reshape(self.rows * rhs.rows, self.cols * rhs.cols);
        out.data.fill(Complex64::ZERO);
        let oc = out.cols;
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self.data[i * self.cols + j];
                if a == Complex64::ZERO {
                    continue;
                }
                for p in 0..rhs.rows {
                    let base = (i * rhs.rows + p) * oc + j * rhs.cols;
                    let src = &rhs.data[p * rhs.cols..(p + 1) * rhs.cols];
                    simd::cscale_row(&mut out.data[base..base + rhs.cols], src, a);
                }
            }
        }
    }

    /// Trace `Σᵢ Mᵢᵢ`.
    ///
    /// # Panics
    ///
    /// Panics on a non-square matrix.
    pub fn trace(&self) -> Complex64 {
        assert!(self.is_square(), "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Hilbert–Schmidt inner product `Tr(self† · rhs)`, computed without
    /// materializing the product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn hs_inner(&self, rhs: &Self) -> Complex64 {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        self.data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Frobenius norm `√Σ|Mᵢⱼ|²`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest entry modulus (max norm).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Induced 1-norm (maximum absolute column sum), accumulated in one
    /// flat row-major pass.
    pub fn one_norm(&self) -> f64 {
        if self.cols == 0 {
            return 0.0;
        }
        let mut sums = vec![0.0; self.cols];
        for row in self.data.chunks_exact(self.cols) {
            for (s, z) in sums.iter_mut().zip(row) {
                *s += z.abs();
            }
        }
        sums.into_iter().fold(0.0, f64::max)
    }

    /// `true` when every entry of `self - rhs` has modulus ≤ `tol`.
    pub fn approx_eq(&self, rhs: &Self, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| (*a - *b).abs() <= tol)
    }

    /// `true` when `self† · self ≈ I` within `tol` (entrywise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        self.dagger()
            .matmul(self)
            .approx_eq(&Self::identity(self.rows), tol)
    }

    /// `true` when `self ≈ self†` within `tol` (entrywise).
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..=i {
                if !(self[(i, j)] - self[(j, i)].conj()).abs().le(&tol) {
                    return false;
                }
            }
        }
        true
    }

    /// `true` when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|z| z.is_finite())
    }

    /// Embeds a `2^k`-dim operator acting on the listed qubit positions into
    /// an `n`-qubit operator (big-endian qubit order: qubit 0 is the most
    /// significant bit of the index).
    ///
    /// This is the workhorse for turning per-gate matrices into full-block
    /// unitaries.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not `2^k × 2^k` for `k = qubits.len()`, if any
    /// qubit index is `>= n`, or if the qubit list contains duplicates.
    #[must_use]
    pub fn embed(&self, qubits: &[usize], n: usize) -> Self {
        let k = qubits.len();
        let dim_k = 1usize << k;
        assert_eq!(self.rows, dim_k, "operator dim does not match qubit count");
        assert_eq!(self.cols, dim_k, "operator must be square");
        for (idx, &q) in qubits.iter().enumerate() {
            assert!(q < n, "qubit index {q} out of range for {n} qubits");
            assert!(
                !qubits[..idx].contains(&q),
                "duplicate qubit index {q} in embed"
            );
        }
        let dim = 1usize << n;
        let mut out = Self::zeros(dim, dim);
        // Positions of the addressed qubits as bit shifts (big-endian).
        let shifts: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
        let rest_mask: u64 = {
            let mut m = (1u64 << n) - 1;
            for &s in &shifts {
                m &= !(1u64 << s);
            }
            m
        };
        // Enumerate basis states of the untouched qubits.
        let mut rest_states = Vec::with_capacity(dim >> k);
        for s in 0..dim as u64 {
            if s & !rest_mask == 0 {
                rest_states.push(s);
            }
        }
        for &rest in &rest_states {
            for a in 0..dim_k as u64 {
                for b in 0..dim_k as u64 {
                    let v = self[(a as usize, b as usize)];
                    if v == Complex64::ZERO {
                        continue;
                    }
                    let mut row = rest;
                    let mut col = rest;
                    for (bit, &s) in shifts.iter().enumerate() {
                        if (a >> (k - 1 - bit)) & 1 == 1 {
                            row |= 1 << s;
                        }
                        if (b >> (k - 1 - bit)) & 1 == 1 {
                            col |= 1 << s;
                        }
                    }
                    out[(row as usize, col as usize)] = v;
                }
            }
        }
        out
    }
}

/// Fully unrolled `N×N` product for the tiny operators synthesis touches
/// most. With `N` const the compiler unrolls and vectorizes the whole
/// kernel; no branches, no scratch.
#[inline]
fn mm_unrolled<const N: usize>(a: &[Complex64], b: &[Complex64], o: &mut [Complex64]) {
    for i in 0..N {
        for j in 0..N {
            let mut re = 0.0;
            let mut im = 0.0;
            for k in 0..N {
                let x = a[i * N + k];
                let y = b[k * N + j];
                re += x.re * y.re - x.im * y.im;
                im += x.re * y.im + x.im * y.re;
            }
            o[i * N + j] = c64(re, im);
        }
    }
}

/// Column-tile width of the blocked kernel: two split `f64` accumulator
/// rows of 64 lanes (1 KiB total) stay L1-resident while streaming the
/// packed planes of `b`.
const MM_TILE: usize = 64;

thread_local! {
    /// Scratch for [`mm_blocked`]: split re/im planes of `b` plus the
    /// accumulator tile. Thread-local so `matmul_into` is allocation-free
    /// after warm-up without threading a scratch handle through callers.
    static MM_SCRATCH: RefCell<Vec<f64>> = const { RefCell::new(Vec::new()) };
}

/// Cache-blocked matmul: packs `b` into separate real/imaginary planes so
/// the per-`k` rank-1 update runs on four independent `f64` streams the
/// compiler autovectorizes, and tiles output columns so the split
/// accumulators stay in registers/L1. No zero-skip branch: the inputs on
/// this path are dense unitaries, where the branch only mispredicts.
fn mm_blocked(a: &[Complex64], b: &[Complex64], o: &mut [Complex64], m: usize, kk: usize, n: usize) {
    if m == 0 || n == 0 {
        return;
    }
    if kk == 0 {
        o.fill(Complex64::ZERO);
        return;
    }
    MM_SCRATCH.with(|cell| {
        let mut buf = cell.borrow_mut();
        buf.resize(2 * kk * n + 2 * MM_TILE, 0.0);
        let (planes, acc) = buf.split_at_mut(2 * kk * n);
        let (bre, bim) = planes.split_at_mut(kk * n);
        let (acc_re, acc_im) = acc.split_at_mut(MM_TILE);
        for (dst, z) in bre.iter_mut().zip(b) {
            *dst = z.re;
        }
        for (dst, z) in bim.iter_mut().zip(b) {
            *dst = z.im;
        }
        for jc in (0..n).step_by(MM_TILE) {
            let tw = MM_TILE.min(n - jc);
            for i in 0..m {
                let arow = &a[i * kk..(i + 1) * kk];
                acc_re[..tw].fill(0.0);
                acc_im[..tw].fill(0.0);
                for (k, x) in arow.iter().enumerate() {
                    let br = &bre[k * n + jc..k * n + jc + tw];
                    let bi = &bim[k * n + jc..k * n + jc + tw];
                    simd::axpy_split(&mut acc_re[..tw], &mut acc_im[..tw], x.re, x.im, br, bi);
                }
                for (dst, (&re, &im)) in o[i * n + jc..i * n + jc + tw]
                    .iter_mut()
                    .zip(acc_re.iter().zip(acc_im.iter()))
                {
                    *dst = c64(re, im);
                }
            }
        }
    });
}

impl Index<(usize, usize)> for Matrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &Complex64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut Complex64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        &mut self.data[row * self.cols + col]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: Self) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a + *b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: Self) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| *a - *b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: Self) -> Matrix {
        self.matmul(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scale_re(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.rows, rhs.rows, "shape mismatch");
        assert_eq!(self.cols, rhs.cols, "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += *b;
        }
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                let z = self[(i, j)];
                write!(f, "{:>7.3}{:+.3}i ", z.re, z.im)?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cx() -> Matrix {
        let o = Complex64::ONE;
        let z = Complex64::ZERO;
        Matrix::from_rows(&[
            &[o, z, z, z],
            &[z, o, z, z],
            &[z, z, z, o],
            &[z, z, o, z],
        ])
    }

    fn pauli_x() -> Matrix {
        let o = Complex64::ONE;
        let z = Complex64::ZERO;
        Matrix::from_rows(&[&[z, o], &[o, z]])
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let m = Matrix::from_fn(3, 3, |i, j| c64(i as f64, j as f64));
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul(&i3), m);
        assert_eq!(i3.matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(2.0, 0.0)],
            &[c64(3.0, 0.0), c64(4.0, 0.0)],
        ]);
        let b = Matrix::from_rows(&[
            &[c64(0.0, 1.0), c64(1.0, 0.0)],
            &[c64(1.0, 0.0), c64(0.0, -1.0)],
        ]);
        let p = a.matmul(&b);
        assert!(p[(0, 0)].approx_eq(c64(2.0, 1.0), 1e-12));
        assert!(p[(0, 1)].approx_eq(c64(1.0, -2.0), 1e-12));
        assert!(p[(1, 0)].approx_eq(c64(4.0, 3.0), 1e-12));
        assert!(p[(1, 1)].approx_eq(c64(3.0, -4.0), 1e-12));
    }

    #[test]
    fn dagger_reverses_products() {
        let a = Matrix::from_fn(2, 2, |i, j| c64((i + j) as f64, (i * j) as f64));
        let b = Matrix::from_fn(2, 2, |i, j| c64(j as f64, i as f64 - 1.0));
        let lhs = a.matmul(&b).dagger();
        let rhs = b.dagger().matmul(&a.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let i2 = Matrix::identity(2);
        let xi = x.kron(&i2);
        assert_eq!(xi.rows(), 4);
        // X ⊗ I flips the high qubit: |00> -> |10>.
        assert_eq!(xi[(2, 0)], Complex64::ONE);
        assert_eq!(xi[(0, 0)], Complex64::ZERO);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = Matrix::from_fn(2, 2, |i, j| c64(i as f64 + 1.0, j as f64));
        let b = Matrix::from_fn(2, 2, |i, j| c64(j as f64 - 1.0, i as f64));
        let c = Matrix::from_fn(2, 2, |i, j| c64((i * j) as f64, 1.0));
        let d = Matrix::from_fn(2, 2, |i, j| c64(1.0, (i + j) as f64));
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn trace_and_hs_inner() {
        let m = Matrix::from_diag(&[c64(1.0, 0.0), c64(0.0, 2.0)]);
        assert!(m.trace().approx_eq(c64(1.0, 2.0), 1e-12));
        // hs_inner(A, A) = ||A||_F^2
        let hs = m.hs_inner(&m);
        assert!(hs.approx_eq(c64(5.0, 0.0), 1e-12));
        assert!((m.frobenius_norm() - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn unitary_and_hermitian_checks() {
        assert!(pauli_x().is_unitary(1e-12));
        assert!(pauli_x().is_hermitian(1e-12));
        assert!(cx().is_unitary(1e-12));
        let not_unitary = Matrix::from_diag(&[c64(2.0, 0.0), c64(1.0, 0.0)]);
        assert!(!not_unitary.is_unitary(1e-9));
        assert!(not_unitary.is_hermitian(1e-12));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = Matrix::from_fn(3, 3, |i, j| c64(i as f64, -(j as f64)));
        let v = vec![c64(1.0, 0.0), c64(0.0, 1.0), c64(-1.0, 2.0)];
        let as_col = Matrix::from_vec(3, 1, v.clone());
        let expect = m.matmul(&as_col);
        let got = m.matvec(&v);
        for i in 0..3 {
            assert!(got[i].approx_eq(expect[(i, 0)], 1e-12));
        }
    }

    #[test]
    fn embed_single_qubit_on_two_qubit_space() {
        let x = pauli_x();
        // X on qubit 0 of 2 (big-endian): X ⊗ I
        let e0 = x.embed(&[0], 2);
        assert!(e0.approx_eq(&x.kron(&Matrix::identity(2)), 1e-12));
        // X on qubit 1 of 2: I ⊗ X
        let e1 = x.embed(&[1], 2);
        assert!(e1.approx_eq(&Matrix::identity(2).kron(&x), 1e-12));
    }

    #[test]
    fn embed_cx_reversed_qubits() {
        // CX with control=1, target=0 on 2 qubits should equal the
        // permuted CX (swap ⊗ conjugation).
        let c = cx();
        let e = c.embed(&[1, 0], 2);
        // |01> -> |11>, |11> -> |01>  (big-endian: q0 high bit, q1 low bit)
        assert_eq!(e[(3, 1)], Complex64::ONE);
        assert_eq!(e[(1, 3)], Complex64::ONE);
        assert_eq!(e[(0, 0)], Complex64::ONE);
        assert_eq!(e[(2, 2)], Complex64::ONE);
        assert!(e.is_unitary(1e-12));
    }

    #[test]
    fn embed_identity_everywhere() {
        let i2 = Matrix::identity(2);
        for n in 1..=4 {
            for q in 0..n {
                assert!(i2.embed(&[q], n).approx_eq(&Matrix::identity(1 << n), 1e-12));
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn embed_rejects_duplicates() {
        let _ = cx().embed(&[0, 0], 2);
    }

    #[test]
    fn one_norm_max_column_sum() {
        let m = Matrix::from_rows(&[
            &[c64(1.0, 0.0), c64(0.0, -3.0)],
            &[c64(0.0, 0.0), c64(4.0, 0.0)],
        ]);
        assert!((m.one_norm() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn add_sub_neg_ops() {
        let a = Matrix::from_fn(2, 2, |i, j| c64(i as f64, j as f64));
        let b = Matrix::identity(2);
        let s = &a + &b;
        let d = &s - &b;
        assert!(d.approx_eq(&a, 1e-12));
        let n = -&a;
        assert!((&a + &n).approx_eq(&Matrix::zeros(2, 2), 1e-12));
    }

    /// The pre-kernel ikj matmul (with its zero-skip branch), kept verbatim
    /// as the oracle the blocked/unrolled kernels are property-tested
    /// against.
    fn matmul_reference(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols, b.rows, "dimension mismatch");
        let mut out = Matrix::zeros(a.rows, b.cols);
        for i in 0..a.rows {
            for k in 0..a.cols {
                let x = a.data[i * a.cols + k];
                if x == Complex64::ZERO {
                    continue;
                }
                let rrow = &b.data[k * b.cols..(k + 1) * b.cols];
                let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
                for (o, &r) in orow.iter_mut().zip(rrow) {
                    *o += x * r;
                }
            }
        }
        out
    }

    /// Index-by-index Kronecker product used as the `kron_into` oracle.
    fn kron_reference(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows * b.rows, a.cols * b.cols);
        for i in 0..a.rows {
            for j in 0..a.cols {
                for p in 0..b.rows {
                    for q in 0..b.cols {
                        out[(i * b.rows + p, j * b.cols + q)] = a[(i, j)] * b[(p, q)];
                    }
                }
            }
        }
        out
    }

    fn rand_matrix(g: &mut epoc_rt::check::Gen, rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| {
            c64(g.f64_in(-1.0, 1.0), g.f64_in(-1.0, 1.0))
        })
    }

    #[test]
    fn prop_matmul_matches_reference() {
        epoc_rt::check::property("matmul_matches_reference")
            .cases(40)
            .run(|g| {
                let m = g.usize_in(1, 65);
                let k = g.usize_in(1, 65);
                let n = g.usize_in(1, 65);
                let a = rand_matrix(g, m, k);
                let b = rand_matrix(g, k, n);
                let want = matmul_reference(&a, &b);
                assert!(
                    a.matmul(&b).approx_eq(&want, 1e-12),
                    "blocked kernel diverged at {m}x{k}x{n}"
                );
                let mut out = Matrix::zeros(1, 1);
                a.matmul_into(&b, &mut out);
                assert!(
                    out.approx_eq(&want, 1e-12),
                    "matmul_into diverged at {m}x{k}x{n}"
                );
            });
    }

    #[test]
    fn prop_unrolled_sizes_match_reference() {
        epoc_rt::check::property("unrolled_matmul_matches_reference")
            .cases(48)
            .run(|g| {
                for n in [1usize, 2, 4] {
                    let a = rand_matrix(g, n, n);
                    let b = rand_matrix(g, n, n);
                    assert!(
                        a.matmul(&b).approx_eq(&matmul_reference(&a, &b), 1e-12),
                        "unrolled {n}x{n} kernel diverged"
                    );
                }
            });
    }

    #[test]
    fn prop_kron_into_matches_reference() {
        epoc_rt::check::property("kron_into_matches_reference")
            .cases(40)
            .run(|g| {
                let (m, k) = (g.usize_in(1, 9), g.usize_in(1, 9));
                let (p, q) = (g.usize_in(1, 9), g.usize_in(1, 9));
                let a = rand_matrix(g, m, k);
                let b = rand_matrix(g, p, q);
                let want = kron_reference(&a, &b);
                assert!(a.kron(&b).approx_eq(&want, 1e-12));
                let mut out = Matrix::zeros(3, 7);
                a.kron_into(&b, &mut out);
                assert!(out.approx_eq(&want, 1e-12));
            });
    }

    #[test]
    fn prop_matvec_into_matches_reference() {
        epoc_rt::check::property("matvec_into_matches_reference")
            .cases(40)
            .run(|g| {
                let m = g.usize_in(1, 33);
                let k = g.usize_in(1, 33);
                let a = rand_matrix(g, m, k);
                let v: Vec<Complex64> = (0..k)
                    .map(|_| c64(g.f64_in(-1.0, 1.0), g.f64_in(-1.0, 1.0)))
                    .collect();
                let col = Matrix::from_vec(k, 1, v.clone());
                let want = matmul_reference(&a, &col);
                let mut out = Vec::new();
                a.matvec_into(&v, &mut out);
                for (i, got) in out.iter().enumerate() {
                    assert!(got.approx_eq(want[(i, 0)], 1e-12));
                }
            });
    }

    #[test]
    fn prop_simd_and_scalar_paths_agree() {
        // The ISSUE-level contract: with the vector path forced on and
        // forced off, matmul/matvec/kron agree to ≤ 1e-12 on random
        // matrices of dims 2..32 (and in fact bit-identically — the
        // kernels share their rounding sequence by construction).
        epoc_rt::check::property("simd_scalar_paths_agree")
            .cases(24)
            .run(|g| {
                let n = g.usize_in(2, 33);
                let a = rand_matrix(g, n, n);
                let b = rand_matrix(g, n, n);
                let v: Vec<Complex64> = (0..n)
                    .map(|_| c64(g.f64_in(-1.0, 1.0), g.f64_in(-1.0, 1.0)))
                    .collect();

                crate::simd::force_simd(Some(false));
                let mm_s = a.matmul(&b);
                let mv_s = a.matvec(&v);
                let kr_s = a.kron(&b);
                let vector_granted = crate::simd::force_simd(Some(true));
                let mm_v = a.matmul(&b);
                let mv_v = a.matvec(&v);
                let kr_v = a.kron(&b);
                crate::simd::force_simd(None);

                if vector_granted {
                    assert!(mm_s.approx_eq(&mm_v, 1e-12), "matmul paths diverged at n={n}");
                    assert_eq!(mm_s, mm_v, "matmul paths not bit-identical at n={n}");
                    assert_eq!(mv_s, mv_v, "matvec paths not bit-identical at n={n}");
                    assert_eq!(kr_s, kr_v, "kron paths not bit-identical at n={n}");
                }
                // Whatever the path, the reference oracle must agree.
                assert!(mm_v.approx_eq(&matmul_reference(&a, &b), 1e-12));
            });
    }

    #[test]
    fn workspace_reuse_across_shapes() {
        // Shrinking and growing the same `out` through mixed shapes must
        // stay correct: `reshape` reuses the allocation.
        let mut out = Matrix::zeros(1, 1);
        for n in [6usize, 2, 4, 17, 3, 64, 5] {
            let a = Matrix::from_fn(n, n, |i, j| c64(i as f64 - 0.5, j as f64 * 0.25));
            let b = Matrix::from_fn(n, n, |i, j| c64(j as f64 * 0.5, -(i as f64)));
            a.matmul_into(&b, &mut out);
            assert!(out.approx_eq(&matmul_reference(&a, &b), 1e-10), "n = {n}");
        }
    }

    #[test]
    fn zero_inner_dimension_product_is_zero() {
        let a = Matrix::zeros(2, 0);
        let b = Matrix::zeros(0, 3);
        let p = a.matmul(&b);
        assert_eq!((p.rows(), p.cols()), (2, 3));
        assert!(p.approx_eq(&Matrix::zeros(2, 3), 0.0));
    }

    #[test]
    fn dagger_into_scale_in_place_copy_from() {
        let a = Matrix::from_fn(3, 2, |i, j| c64(i as f64, j as f64 + 0.5));
        let mut d = Matrix::zeros(1, 1);
        a.dagger_into(&mut d);
        assert!(d.approx_eq(&a.dagger(), 1e-15));

        let mut s = Matrix::zeros(1, 1);
        s.copy_from(&a);
        s.scale_in_place(c64(0.0, 2.0));
        assert!(s.approx_eq(&a.scale(c64(0.0, 2.0)), 1e-15));
    }
}

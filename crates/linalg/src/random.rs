//! Random matrices for tests, benchmarks and synthesis restarts.

use crate::complex::{c64, Complex64};
use crate::matrix::Matrix;
use epoc_rt::rng::Rng;

/// Samples a complex matrix with i.i.d. standard-normal entries
/// (real and imaginary parts independent).
pub fn random_gaussian_matrix(n: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_fn(n, n, |_, _| c64(sample_normal(rng), sample_normal(rng)))
}

/// Samples a Haar-distributed `n × n` unitary.
///
/// Uses the standard Ginibre + QR construction: draw a complex Gaussian
/// matrix, orthonormalize with modified Gram–Schmidt, and fix the phase of
/// each `R` diagonal so the distribution is exactly Haar.
///
/// # Examples
///
/// ```
/// use epoc_linalg::random_unitary;
///
/// let mut rng = epoc_rt::rng::StdRng::seed_from_u64(7);
/// let u = random_unitary(4, &mut rng);
/// assert!(u.is_unitary(1e-10));
/// ```
pub fn random_unitary(n: usize, rng: &mut impl Rng) -> Matrix {
    let g = random_gaussian_matrix(n, rng);
    // Modified Gram–Schmidt on the columns, recording the R diagonal phases.
    let mut cols: Vec<Vec<Complex64>> = (0..n)
        .map(|j| (0..n).map(|i| g[(i, j)]).collect())
        .collect();
    for j in 0..n {
        for k in 0..j {
            // proj = <cols[k], cols[j]>
            let proj: Complex64 = cols[k]
                .iter()
                .zip(&cols[j])
                .map(|(a, b)| a.conj() * *b)
                .sum();
            let ck: Vec<Complex64> = cols[k].clone();
            for (cj, ck) in cols[j].iter_mut().zip(ck) {
                *cj -= proj * ck;
            }
        }
        let norm: f64 = cols[j].iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
        // The leading coefficient before normalization carries the R-diagonal
        // phase; divide it out so the result is Haar rather than QR-biased.
        let lead = cols[j]
            .iter()
            .find(|z| z.abs() > 1e-12)
            .copied()
            .unwrap_or(Complex64::ONE);
        let phase = lead / c64(lead.abs(), 0.0);
        let scale = phase.conj() / norm;
        for z in cols[j].iter_mut() {
            *z *= scale;
        }
    }
    Matrix::from_fn(n, n, |i, j| cols[j][i])
}

/// Samples a random Hermitian matrix with Gaussian entries (GUE-like).
pub fn random_hermitian(n: usize, rng: &mut impl Rng) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        m[(i, i)] = c64(sample_normal(rng), 0.0);
        for j in (i + 1)..n {
            let z = c64(sample_normal(rng) * 0.5f64.sqrt(), sample_normal(rng) * 0.5f64.sqrt());
            m[(i, j)] = z;
            m[(j, i)] = z.conj();
        }
    }
    m
}

/// Standard normal sample via Box–Muller (avoids a rand_distr dependency).
fn sample_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen_f64();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen_f64();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_rt::rng::StdRng;

    #[test]
    fn random_unitary_is_unitary() {
        let mut rng = StdRng::seed_from_u64(42);
        for n in [1, 2, 3, 4, 8] {
            let u = random_unitary(n, &mut rng);
            assert!(u.is_unitary(1e-9), "n={n} not unitary");
        }
    }

    #[test]
    fn random_hermitian_is_hermitian() {
        let mut rng = StdRng::seed_from_u64(1);
        for n in [2, 5, 7] {
            let h = random_hermitian(n, &mut rng);
            assert!(h.is_hermitian(1e-12));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let ua = random_unitary(3, &mut a);
        let ub = random_unitary(3, &mut b);
        assert!(!ua.approx_eq(&ub, 1e-3));
    }

    #[test]
    fn same_seed_reproduces() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert!(random_unitary(4, &mut a).approx_eq(&random_unitary(4, &mut b), 1e-15));
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}

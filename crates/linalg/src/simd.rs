//! Runtime-dispatched SIMD kernels for the dense complex hot loops.
//!
//! Every kernel in this module exists in two forms: a portable scalar body
//! and (on `x86_64`) an AVX2 variant compiled with
//! `#[target_feature(enable = "avx2,fma")]`. The two are **bit-identical by
//! construction**: `Complex64 * Complex64` evaluates
//! `(re·re − im·im, re·im + im·re)` with exactly one rounding per multiply
//! and one per add/sub, which is precisely the lane-wise sequence of the
//! AVX2 `mul / permute / mul / addsub` complex product. The vector code
//! never uses fused multiply-add contraction, so switching dispatch paths
//! cannot change a single output bit — compilation reports stay
//! byte-identical whichever path runs.
//!
//! Dispatch is decided once per process (cached in an atomic): the vector
//! path is used when the CPU reports AVX2+FMA via
//! `is_x86_feature_detected!` and the `EPOC_SIMD` environment variable does
//! not disable it (`EPOC_SIMD=0`/`off`/`scalar` forces the portable
//! fallback; any other value, or unset, means "auto"). Tests and benches
//! can override the decision with [`force_simd`].
//!
//! `unsafe` in this crate is confined to this module's intrinsic shims;
//! every unsafe block is a load/store or lane shuffle on slices whose
//! bounds are checked by the safe wrappers.

use crate::complex::Complex64;
use std::sync::atomic::{AtomicU8, Ordering};

/// Dispatch cache: 0 = undecided, 1 = scalar, 2 = vector.
static MODE: AtomicU8 = AtomicU8::new(0);

/// Returns `true` when the AVX2 kernels are active for this process.
///
/// The first call resolves the mode from CPU detection and the
/// `EPOC_SIMD` environment variable; later calls are a relaxed atomic load.
#[inline]
pub fn simd_active() -> bool {
    match MODE.load(Ordering::Relaxed) {
        0 => resolve(),
        1 => false,
        _ => true,
    }
}

#[cold]
fn resolve() -> bool {
    let disabled = matches!(
        std::env::var("EPOC_SIMD").as_deref(),
        Ok("0") | Ok("off") | Ok("OFF") | Ok("scalar") | Ok("SCALAR")
    );
    let on = !disabled && cpu_supported();
    MODE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

#[cfg(target_arch = "x86_64")]
fn cpu_supported() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn cpu_supported() -> bool {
    false
}

/// Overrides the dispatch decision (test/bench hook).
///
/// `Some(true)` requests the vector path (granted only when the CPU
/// supports it), `Some(false)` forces the scalar fallback, and `None`
/// restores automatic detection. Returns whether the vector path is active
/// after the call. Because both paths are bit-identical, racing overrides
/// from concurrent tests cannot change any computed value.
pub fn force_simd(mode: Option<bool>) -> bool {
    match mode {
        None => {
            MODE.store(0, Ordering::Relaxed);
            simd_active()
        }
        Some(true) => {
            let ok = cpu_supported();
            MODE.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
            ok
        }
        Some(false) => {
            MODE.store(1, Ordering::Relaxed);
            false
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel: split-plane multiply-accumulate (blocked matmul inner loop)
// ---------------------------------------------------------------------------

/// `acc_re[j] += xr·br[j] − xi·bi[j]` and `acc_im[j] += xr·bi[j] + xi·br[j]`
/// for every `j` — one row-times-packed-row update of the blocked matmul.
#[inline]
pub(crate) fn axpy_split(acc_re: &mut [f64], acc_im: &mut [f64], xr: f64, xi: f64, br: &[f64], bi: &[f64]) {
    debug_assert!(acc_re.len() == acc_im.len() && br.len() >= acc_re.len() && bi.len() >= acc_re.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2+FMA availability was checked by `simd_active`.
        unsafe { axpy_split_avx2(acc_re, acc_im, xr, xi, br, bi) };
        return;
    }
    axpy_split_scalar(acc_re, acc_im, xr, xi, br, bi);
}

#[inline]
fn axpy_split_scalar(acc_re: &mut [f64], acc_im: &mut [f64], xr: f64, xi: f64, br: &[f64], bi: &[f64]) {
    for (((ar, ai), &brv), &biv) in acc_re.iter_mut().zip(acc_im.iter_mut()).zip(br).zip(bi) {
        *ar += xr * brv - xi * biv;
        *ai += xr * biv + xi * brv;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_split_avx2(acc_re: &mut [f64], acc_im: &mut [f64], xr: f64, xi: f64, br: &[f64], bi: &[f64]) {
    use std::arch::x86_64::*;
    let n = acc_re.len();
    let vxr = _mm256_set1_pd(xr);
    let vxi = _mm256_set1_pd(xi);
    let (arp, aip) = (acc_re.as_mut_ptr(), acc_im.as_mut_ptr());
    let (brp, bip) = (br.as_ptr(), bi.as_ptr());
    let mut j = 0;
    while j + 4 <= n {
        let vbr = _mm256_loadu_pd(brp.add(j));
        let vbi = _mm256_loadu_pd(bip.add(j));
        let var = _mm256_loadu_pd(arp.add(j));
        let vai = _mm256_loadu_pd(aip.add(j));
        // Same rounding sequence as the scalar body: mul, mul, sub/add, add.
        let nr = _mm256_add_pd(var, _mm256_sub_pd(_mm256_mul_pd(vxr, vbr), _mm256_mul_pd(vxi, vbi)));
        let ni = _mm256_add_pd(vai, _mm256_add_pd(_mm256_mul_pd(vxr, vbi), _mm256_mul_pd(vxi, vbr)));
        _mm256_storeu_pd(arp.add(j), nr);
        _mm256_storeu_pd(aip.add(j), ni);
        j += 4;
    }
    axpy_split_scalar(&mut acc_re[j..], &mut acc_im[j..], xr, xi, &br[j..], &bi[j..]);
}

// ---------------------------------------------------------------------------
// Kernel: 4x4 complex matmul (GRAPE propagator-sized product)
// ---------------------------------------------------------------------------

/// 4×4 complex matrix product `o = a·b` over row-major slices of 16.
#[inline]
pub(crate) fn mm4(a: &[Complex64], b: &[Complex64], o: &mut [Complex64]) {
    debug_assert!(a.len() == 16 && b.len() == 16 && o.len() == 16);
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2+FMA availability was checked by `simd_active`.
        unsafe { mm4_avx2(a, b, o) };
        return;
    }
    mm4_scalar(a, b, o);
}

/// Scalar twin of [`mm4_avx2`]: identical per-element rounding sequence
/// (mul, mul, sub for the real part; mul, mul, add for the imaginary part;
/// accumulated in `k` order from exact zero).
#[inline]
fn mm4_scalar(a: &[Complex64], b: &[Complex64], o: &mut [Complex64]) {
    for i in 0..4 {
        for j in 0..4 {
            let mut re = 0.0;
            let mut im = 0.0;
            for k in 0..4 {
                let x = a[i * 4 + k];
                let y = b[k * 4 + j];
                re += x.re * y.re - x.im * y.im;
                im += x.re * y.im + x.im * y.re;
            }
            o[i * 4 + j] = Complex64::new(re, im);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mm4_avx2(a: &[Complex64], b: &[Complex64], o: &mut [Complex64]) {
    use std::arch::x86_64::*;
    let bp = b.as_ptr() as *const f64;
    // Row k of b as two vectors of two complexes each.
    let mut brow = [[_mm256_setzero_pd(); 2]; 4];
    for (k, row) in brow.iter_mut().enumerate() {
        row[0] = _mm256_loadu_pd(bp.add(k * 8));
        row[1] = _mm256_loadu_pd(bp.add(k * 8 + 4));
    }
    let op = o.as_mut_ptr() as *mut f64;
    for i in 0..4 {
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        for (k, row) in brow.iter().enumerate() {
            let x = a[i * 4 + k];
            let vxr = _mm256_set1_pd(x.re);
            let vxi = _mm256_set1_pd(x.im);
            acc0 = _mm256_add_pd(acc0, cmul_bcast(vxr, vxi, row[0]));
            acc1 = _mm256_add_pd(acc1, cmul_bcast(vxr, vxi, row[1]));
        }
        _mm256_storeu_pd(op.add(i * 8), acc0);
        _mm256_storeu_pd(op.add(i * 8 + 4), acc1);
    }
}

/// `x · v` where `x = xr + i·xi` is broadcast over a vector of two
/// complexes: lanes `[re0, im0, re1, im1]`. The `mul/permute/mul/addsub`
/// sequence rounds exactly like `Complex64::mul`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn cmul_bcast(
    vxr: std::arch::x86_64::__m256d,
    vxi: std::arch::x86_64::__m256d,
    v: std::arch::x86_64::__m256d,
) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::*;
    let t1 = _mm256_mul_pd(vxr, v);
    let vs = _mm256_permute_pd(v, 0b0101); // [im0, re0, im1, re1]
    let t2 = _mm256_mul_pd(vxi, vs);
    // even lanes: t1 − t2 = xr·re − xi·im; odd lanes: t1 + t2 = xr·im + xi·re
    _mm256_addsub_pd(t1, t2)
}

// ---------------------------------------------------------------------------
// Kernel: complex dot product (matvec inner loop)
// ---------------------------------------------------------------------------

/// Dot product `Σ_k row[k]·v[k]` with two interleaved partial accumulators
/// (even-index and odd-index elements), combined as `even + odd` at the
/// end. Both dispatch paths use this exact accumulation scheme, so the
/// result is bit-identical between them (and deterministic, though it
/// differs from a strictly sequential sum).
#[inline]
pub(crate) fn dot_pairs(row: &[Complex64], v: &[Complex64]) -> Complex64 {
    debug_assert_eq!(row.len(), v.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2+FMA availability was checked by `simd_active`.
        return unsafe { dot_pairs_avx2(row, v) };
    }
    dot_pairs_scalar(row, v)
}

#[inline]
fn dot_pairs_scalar(row: &[Complex64], v: &[Complex64]) -> Complex64 {
    let n = row.len();
    let n2 = n & !1;
    let (mut re0, mut im0, mut re1, mut im1) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut k = 0;
    while k < n2 {
        let (m0, x0) = (row[k], v[k]);
        let (m1, x1) = (row[k + 1], v[k + 1]);
        re0 += m0.re * x0.re - m0.im * x0.im;
        im0 += m0.re * x0.im + m0.im * x0.re;
        re1 += m1.re * x1.re - m1.im * x1.im;
        im1 += m1.re * x1.im + m1.im * x1.re;
        k += 2;
    }
    let mut re = re0 + re1;
    let mut im = im0 + im1;
    if n2 < n {
        let (m, x) = (row[n2], v[n2]);
        re += m.re * x.re - m.im * x.im;
        im += m.re * x.im + m.im * x.re;
    }
    Complex64::new(re, im)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_pairs_avx2(row: &[Complex64], v: &[Complex64]) -> Complex64 {
    use std::arch::x86_64::*;
    let n = row.len();
    let n2 = n & !1;
    let rp = row.as_ptr() as *const f64;
    let vp = v.as_ptr() as *const f64;
    let mut acc = _mm256_setzero_pd();
    let mut k = 0;
    while k < n2 {
        let vm = _mm256_loadu_pd(rp.add(2 * k)); // [mr0, mi0, mr1, mi1]
        let vx = _mm256_loadu_pd(vp.add(2 * k)); // [xr0, xi0, xr1, xi1]
        let vmr = _mm256_movedup_pd(vm); // [mr0, mr0, mr1, mr1]
        let vmi = _mm256_permute_pd(vm, 0b1111); // [mi0, mi0, mi1, mi1]
        let t1 = _mm256_mul_pd(vmr, vx);
        let vxs = _mm256_permute_pd(vx, 0b0101); // [xi0, xr0, xi1, xr1]
        let t2 = _mm256_mul_pd(vmi, vxs);
        acc = _mm256_add_pd(acc, _mm256_addsub_pd(t1, t2));
        k += 2;
    }
    // Lanes: [re_even, im_even, re_odd, im_odd] — combine as even + odd,
    // matching the scalar twin's accumulator merge.
    let mut lanes = [0.0f64; 4];
    _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
    let mut re = lanes[0] + lanes[2];
    let mut im = lanes[1] + lanes[3];
    if n2 < n {
        let (m, x) = (row[n2], v[n2]);
        re += m.re * x.re - m.im * x.im;
        im += m.re * x.im + m.im * x.re;
    }
    Complex64::new(re, im)
}

// ---------------------------------------------------------------------------
// Kernel: row scaling (kron inner loop)
// ---------------------------------------------------------------------------

/// `dst[j] = a · src[j]` for every `j` — one scaled-row copy of `kron_into`.
#[inline]
pub(crate) fn cscale_row(dst: &mut [Complex64], src: &[Complex64], a: Complex64) {
    debug_assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2+FMA availability was checked by `simd_active`.
        unsafe { cscale_row_avx2(dst, src, a) };
        return;
    }
    cscale_row_scalar(dst, src, a);
}

#[inline]
fn cscale_row_scalar(dst: &mut [Complex64], src: &[Complex64], a: Complex64) {
    for (d, &r) in dst.iter_mut().zip(src) {
        *d = a * r;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn cscale_row_avx2(dst: &mut [Complex64], src: &[Complex64], a: Complex64) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let n2 = n & !1;
    let var = _mm256_set1_pd(a.re);
    let vai = _mm256_set1_pd(a.im);
    let dp = dst.as_mut_ptr() as *mut f64;
    let sp = src.as_ptr() as *const f64;
    let mut j = 0;
    while j < n2 {
        let v = _mm256_loadu_pd(sp.add(2 * j));
        _mm256_storeu_pd(dp.add(2 * j), cmul_bcast(var, vai, v));
        j += 2;
    }
    if n2 < n {
        dst[n2] = a * src[n2];
    }
}

// ---------------------------------------------------------------------------
// Kernel: 2x2 rotation mix over paired slices (synthesis Givens updates)
// ---------------------------------------------------------------------------

/// Applies a 2×2 complex rotation to a pair of equal-length slices:
/// `x[i] ← g00·x[i] + g01·y[i]`, `y[i] ← g10·x[i] + g11·y[i]`.
///
/// This is the row/column mixing primitive of the synthesis `EvalPlan`
/// evaluator; the AVX2 variant processes two complexes per lane set with
/// the same per-element rounding as the scalar body.
#[inline]
pub fn mix_pair(
    x: &mut [Complex64],
    y: &mut [Complex64],
    g00: Complex64,
    g01: Complex64,
    g10: Complex64,
    g11: Complex64,
) {
    assert_eq!(x.len(), y.len(), "mix_pair: slice lengths differ");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2+FMA availability was checked by `simd_active`.
        unsafe { mix_pair_avx2(x, y, g00, g01, g10, g11) };
        return;
    }
    mix_pair_scalar(x, y, g00, g01, g10, g11);
}

#[inline]
fn mix_pair_scalar(
    x: &mut [Complex64],
    y: &mut [Complex64],
    g00: Complex64,
    g01: Complex64,
    g10: Complex64,
    g11: Complex64,
) {
    for (xv, yv) in x.iter_mut().zip(y.iter_mut()) {
        let a = *xv;
        let b = *yv;
        *xv = g00 * a + g01 * b;
        *yv = g10 * a + g11 * b;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mix_pair_avx2(
    x: &mut [Complex64],
    y: &mut [Complex64],
    g00: Complex64,
    g01: Complex64,
    g10: Complex64,
    g11: Complex64,
) {
    use std::arch::x86_64::*;
    let n = x.len();
    let n2 = n & !1;
    let (g00r, g00i) = (_mm256_set1_pd(g00.re), _mm256_set1_pd(g00.im));
    let (g01r, g01i) = (_mm256_set1_pd(g01.re), _mm256_set1_pd(g01.im));
    let (g10r, g10i) = (_mm256_set1_pd(g10.re), _mm256_set1_pd(g10.im));
    let (g11r, g11i) = (_mm256_set1_pd(g11.re), _mm256_set1_pd(g11.im));
    let xp = x.as_mut_ptr() as *mut f64;
    let yp = y.as_mut_ptr() as *mut f64;
    let mut i = 0;
    while i < n2 {
        let va = _mm256_loadu_pd(xp.add(2 * i));
        let vb = _mm256_loadu_pd(yp.add(2 * i));
        let nx = _mm256_add_pd(cmul_bcast(g00r, g00i, va), cmul_bcast(g01r, g01i, vb));
        let ny = _mm256_add_pd(cmul_bcast(g10r, g10i, va), cmul_bcast(g11r, g11i, vb));
        _mm256_storeu_pd(xp.add(2 * i), nx);
        _mm256_storeu_pd(yp.add(2 * i), ny);
        i += 2;
    }
    if n2 < n {
        let a = x[n2];
        let b = y[n2];
        x[n2] = g00 * a + g01 * b;
        y[n2] = g10 * a + g11 * b;
    }
}

/// Applies a 2×2 rotation to **adjacent** element pairs of one slice:
/// for every even `i`, `(row[i], row[i+1])` is mixed in place. This is the
/// `mask == 1` column-mix case of the synthesis evaluator, where the two
/// columns of each pair sit next to each other in memory.
///
/// `row.len()` must be even.
#[inline]
pub fn mix_adjacent(row: &mut [Complex64], g00: Complex64, g01: Complex64, g10: Complex64, g11: Complex64) {
    assert_eq!(row.len() % 2, 0, "mix_adjacent: odd slice length");
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2+FMA availability was checked by `simd_active`.
        unsafe { mix_adjacent_avx2(row, g00, g01, g10, g11) };
        return;
    }
    mix_adjacent_scalar(row, g00, g01, g10, g11);
}

#[inline]
fn mix_adjacent_scalar(row: &mut [Complex64], g00: Complex64, g01: Complex64, g10: Complex64, g11: Complex64) {
    for pair in row.chunks_exact_mut(2) {
        let a = pair[0];
        let b = pair[1];
        pair[0] = g00 * a + g01 * b;
        pair[1] = g10 * a + g11 * b;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mix_adjacent_avx2(row: &mut [Complex64], g00: Complex64, g01: Complex64, g10: Complex64, g11: Complex64) {
    use std::arch::x86_64::*;
    // Coefficient vectors with g_row0 in the low 128-bit half and g_row1 in
    // the high half, matching the [a, b] complex pair layout of each load.
    let gar = _mm256_set_pd(g10.re, g10.re, g00.re, g00.re);
    let gai = _mm256_set_pd(g10.im, g10.im, g00.im, g00.im);
    let gbr = _mm256_set_pd(g11.re, g11.re, g01.re, g01.re);
    let gbi = _mm256_set_pd(g11.im, g11.im, g01.im, g01.im);
    let p = row.as_mut_ptr() as *mut f64;
    let n = row.len();
    let mut i = 0;
    while i < n {
        let v = _mm256_loadu_pd(p.add(2 * i)); // [a.re, a.im, b.re, b.im]
        let va = _mm256_permute2f128_pd(v, v, 0x00); // [a, a]
        let vb = _mm256_permute2f128_pd(v, v, 0x11); // [b, b]
        // out = [g00·a + g01·b, g10·a + g11·b]
        let out = _mm256_add_pd(cmul_bcast(gar, gai, va), cmul_bcast(gbr, gbi, vb));
        _mm256_storeu_pd(p.add(2 * i), out);
        i += 2;
    }
}

// ---------------------------------------------------------------------------
// Kernel: masked pair-mix trace (synthesis gradient contraction)
// ---------------------------------------------------------------------------

/// The synthesis gradient trace `Tr(prefix · M · embed(q))` contracted
/// directly over the index pairs `(a, a|mask)` that the embedded 2×2 `q`
/// mixes, without forming any product matrix.
///
/// `prefix_t` holds the prefix **transposed** (`prefix_t[b·dim + a] =
/// prefix[a·dim + b]`) and `m` holds the right factor row-major, both of
/// length `dim·dim`; `mask` must be a power of two below `dim`, and `dim` a
/// multiple of `2·mask`. For each row the contraction is
/// `Σ prefix_t[a0]·(m[a0]·q00 + m[a1]·q10) + prefix_t[a1]·(m[a0]·q01 + m[a1]·q11)`
/// over pairs `a1 = a0 | mask`.
///
/// Both dispatch paths split the sum into the same fixed partial
/// accumulators (pair-position parity), combined in the same order at the
/// end, so the result is bit-identical between them — deterministic, though
/// it differs from a strictly sequential left-to-right sum.
#[inline]
pub fn mixed_pair_trace(
    prefix_t: &[Complex64],
    m: &[Complex64],
    dim: usize,
    mask: usize,
    q: &[Complex64; 4],
) -> Complex64 {
    assert!(
        mask.is_power_of_two() && mask < dim && dim.is_multiple_of(2 * mask),
        "mixed_pair_trace: mask {mask} incompatible with dim {dim}"
    );
    assert!(
        prefix_t.len() == dim * dim && m.len() == dim * dim,
        "mixed_pair_trace: slice lengths must be dim²"
    );
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        // SAFETY: AVX2+FMA availability was checked by `simd_active`;
        // bounds were checked above.
        return unsafe { mixed_pair_trace_avx2(prefix_t, m, dim, mask, q) };
    }
    mixed_pair_trace_scalar(prefix_t, m, dim, mask, q)
}

/// Scalar twin of [`mixed_pair_trace_avx2`]: identical per-lane rounding
/// sequence and identical accumulator structure (even/odd pair positions
/// kept separate, merged once at the end).
#[inline]
fn mixed_pair_trace_scalar(
    prefix_t: &[Complex64],
    m: &[Complex64],
    dim: usize,
    mask: usize,
    q: &[Complex64; 4],
) -> Complex64 {
    if mask == 1 {
        // Adjacent pairs: one accumulator for the low-index contribution of
        // each pair, one for the high — the two complex lanes of the
        // vector accumulator.
        let mut acc_e = Complex64::ZERO;
        let mut acc_o = Complex64::ZERO;
        for (row, prow) in m.chunks_exact(dim).zip(prefix_t.chunks_exact(dim)) {
            let mut k = 0;
            while k < dim {
                let y0 = row[k] * q[0] + row[k + 1] * q[2];
                let y1 = row[k] * q[1] + row[k + 1] * q[3];
                acc_e += prow[k] * y0;
                acc_o += prow[k + 1] * y1;
                k += 2;
            }
        }
        return acc_e + acc_o;
    }
    // mask ≥ 2: pair low-halves form contiguous runs [base, base+mask).
    // Four accumulators: (low/high half of the pair) × (even/odd offset
    // within the run) — the four complex lanes of the two vector
    // accumulators.
    let mut a_e = Complex64::ZERO;
    let mut a_o = Complex64::ZERO;
    let mut b_e = Complex64::ZERO;
    let mut b_o = Complex64::ZERO;
    for (row, prow) in m.chunks_exact(dim).zip(prefix_t.chunks_exact(dim)) {
        let mut base = 0;
        while base < dim {
            for off in 0..mask {
                let x0 = row[base + off];
                let x1 = row[base + mask + off];
                let y0 = x0 * q[0] + x1 * q[2];
                let y1 = x0 * q[1] + x1 * q[3];
                let c0 = prow[base + off] * y0;
                let c1 = prow[base + mask + off] * y1;
                if off & 1 == 0 {
                    a_e += c0;
                    b_e += c1;
                } else {
                    a_o += c0;
                    b_o += c1;
                }
            }
            base += 2 * mask;
        }
    }
    (a_e + a_o) + (b_e + b_o)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mixed_pair_trace_avx2(
    prefix_t: &[Complex64],
    m: &[Complex64],
    dim: usize,
    mask: usize,
    q: &[Complex64; 4],
) -> Complex64 {
    use std::arch::x86_64::*;
    let mp = m.as_ptr() as *const f64;
    let pp = prefix_t.as_ptr() as *const f64;
    if mask == 1 {
        // Per pair: load both complexes at once, broadcast each across the
        // register, and form [y0, y1] against the q-columns [q00, q01] and
        // [q10, q11]; the prefix pair then multiplies lanewise. Lane pairs
        // accumulate the even/odd pair positions exactly like the scalar
        // twin's (acc_e, acc_o).
        let qa = _mm256_set_pd(q[1].im, q[1].re, q[0].im, q[0].re); // [q00, q01]
        let qb = _mm256_set_pd(q[3].im, q[3].re, q[2].im, q[2].re); // [q10, q11]
        let mut acc = _mm256_setzero_pd();
        for r in 0..dim {
            let rp = mp.add(2 * r * dim);
            let prp = pp.add(2 * r * dim);
            let mut k = 0;
            while k < dim {
                let v = _mm256_loadu_pd(rp.add(2 * k)); // [x0, x1]
                let va = _mm256_permute2f128_pd(v, v, 0x00); // [x0, x0]
                let vb = _mm256_permute2f128_pd(v, v, 0x11); // [x1, x1]
                let y = _mm256_add_pd(
                    cmul_bcast(_mm256_movedup_pd(va), _mm256_permute_pd(va, 0b1111), qa),
                    cmul_bcast(_mm256_movedup_pd(vb), _mm256_permute_pd(vb, 0b1111), qb),
                );
                let vp = _mm256_loadu_pd(prp.add(2 * k)); // [p0, p1]
                acc = _mm256_add_pd(acc, cmul_elem(vp, y));
                k += 2;
            }
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        return Complex64::new(lanes[0] + lanes[2], lanes[1] + lanes[3]);
    }
    // mask ≥ 2 (always even): walk each contiguous run two pairs at a time.
    // accA collects the low-half contributions, accB the high-half; within
    // each, lane pairs hold even/odd run offsets — the scalar twin's
    // (a_e, a_o, b_e, b_o).
    let q0 = _mm256_set_pd(q[0].im, q[0].re, q[0].im, q[0].re);
    let q1 = _mm256_set_pd(q[1].im, q[1].re, q[1].im, q[1].re);
    let q2 = _mm256_set_pd(q[2].im, q[2].re, q[2].im, q[2].re);
    let q3 = _mm256_set_pd(q[3].im, q[3].re, q[3].im, q[3].re);
    let mut acc_a = _mm256_setzero_pd();
    let mut acc_b = _mm256_setzero_pd();
    for r in 0..dim {
        let rp = mp.add(2 * r * dim);
        let prp = pp.add(2 * r * dim);
        let mut base = 0;
        while base < dim {
            let mut off = 0;
            while off < mask {
                let vx0 = _mm256_loadu_pd(rp.add(2 * (base + off)));
                let vx1 = _mm256_loadu_pd(rp.add(2 * (base + mask + off)));
                let y0 = _mm256_add_pd(cmul_elem(vx0, q0), cmul_elem(vx1, q2));
                let y1 = _mm256_add_pd(cmul_elem(vx0, q1), cmul_elem(vx1, q3));
                let vp0 = _mm256_loadu_pd(prp.add(2 * (base + off)));
                let vp1 = _mm256_loadu_pd(prp.add(2 * (base + mask + off)));
                acc_a = _mm256_add_pd(acc_a, cmul_elem(vp0, y0));
                acc_b = _mm256_add_pd(acc_b, cmul_elem(vp1, y1));
                off += 2;
            }
            base += 2 * mask;
        }
    }
    let mut la = [0.0f64; 4];
    let mut lb = [0.0f64; 4];
    _mm256_storeu_pd(la.as_mut_ptr(), acc_a);
    _mm256_storeu_pd(lb.as_mut_ptr(), acc_b);
    Complex64::new(
        (la[0] + la[2]) + (lb[0] + lb[2]),
        (la[1] + la[3]) + (lb[1] + lb[3]),
    )
}

/// Elementwise complex product of two vectors of two complexes, with `x`
/// as the left operand per lane — rounds exactly like `Complex64::mul`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[inline]
unsafe fn cmul_elem(x: std::arch::x86_64::__m256d, v: std::arch::x86_64::__m256d) -> std::arch::x86_64::__m256d {
    use std::arch::x86_64::*;
    cmul_bcast(_mm256_movedup_pd(x), _mm256_permute_pd(x, 0b1111), v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn run_both<R: PartialEq + std::fmt::Debug>(mut f: impl FnMut() -> R) {
        let prev = simd_active();
        force_simd(Some(false));
        let scalar = f();
        let vector_granted = force_simd(Some(true));
        let vector = f();
        force_simd(None);
        if vector_granted {
            assert_eq!(scalar, vector, "scalar and vector paths disagree");
        }
        let _ = prev;
    }

    fn rand_slice(seed: u64, n: usize) -> Vec<Complex64> {
        // Small deterministic LCG; quality is irrelevant here.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                let mut next = || {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
                };
                c64(next(), next())
            })
            .collect()
    }

    #[test]
    fn axpy_split_paths_bit_identical() {
        for n in [1usize, 3, 4, 7, 8, 16, 31] {
            let br: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
            let bi: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
            run_both(|| {
                let mut ar = vec![0.25f64; n];
                let mut ai = vec![-0.5f64; n];
                axpy_split(&mut ar, &mut ai, 1.7, -0.3, &br, &bi);
                (ar, ai)
            });
        }
    }

    #[test]
    fn mm4_paths_bit_identical() {
        let a = rand_slice(11, 16);
        let b = rand_slice(22, 16);
        run_both(|| {
            let mut o = vec![Complex64::ZERO; 16];
            mm4(&a, &b, &mut o);
            o
        });
    }

    #[test]
    fn dot_pairs_paths_bit_identical() {
        for n in [1usize, 2, 3, 5, 8, 15, 32] {
            let r = rand_slice(n as u64, n);
            let v = rand_slice(n as u64 + 100, n);
            run_both(|| dot_pairs(&r, &v));
        }
    }

    #[test]
    fn cscale_row_paths_bit_identical() {
        for n in [1usize, 2, 5, 8, 17] {
            let src = rand_slice(n as u64 + 7, n);
            run_both(|| {
                let mut dst = vec![Complex64::ZERO; n];
                cscale_row(&mut dst, &src, c64(0.6, -1.2));
                dst
            });
        }
    }

    #[test]
    fn mix_kernels_paths_bit_identical() {
        let g = [c64(0.8, 0.1), c64(-0.1, 0.55), c64(0.3, -0.2), c64(0.9, 0.05)];
        for n in [1usize, 2, 3, 6, 9, 16] {
            let x0 = rand_slice(n as u64 + 40, n);
            let y0 = rand_slice(n as u64 + 80, n);
            run_both(|| {
                let mut x = x0.clone();
                let mut y = y0.clone();
                mix_pair(&mut x, &mut y, g[0], g[1], g[2], g[3]);
                (x, y)
            });
        }
        for n in [2usize, 4, 8, 16] {
            let r0 = rand_slice(n as u64 + 13, n);
            run_both(|| {
                let mut r = r0.clone();
                mix_adjacent(&mut r, g[0], g[1], g[2], g[3]);
                r
            });
        }
    }

    #[test]
    fn mix_adjacent_matches_mix_pair_semantics() {
        let g = [c64(0.5, 0.5), c64(-0.5, 0.5), c64(0.5, -0.5), c64(0.5, 0.5)];
        let mut row = rand_slice(3, 8);
        let mut xs: Vec<Complex64> = row.iter().step_by(2).copied().collect();
        let mut ys: Vec<Complex64> = row.iter().skip(1).step_by(2).copied().collect();
        mix_adjacent(&mut row, g[0], g[1], g[2], g[3]);
        mix_pair(&mut xs, &mut ys, g[0], g[1], g[2], g[3]);
        for i in 0..4 {
            assert_eq!(row[2 * i], xs[i]);
            assert_eq!(row[2 * i + 1], ys[i]);
        }
    }

    #[test]
    fn mixed_pair_trace_paths_bit_identical() {
        let q = [c64(0.7, -0.2), c64(0.1, 0.4), c64(-0.3, 0.6), c64(0.5, 0.2)];
        for dim in [2usize, 4, 8, 16] {
            let pt = rand_slice(dim as u64 + 3, dim * dim);
            let m = rand_slice(dim as u64 + 300, dim * dim);
            let mut mask = 1;
            while mask < dim {
                run_both(|| mixed_pair_trace(&pt, &m, dim, mask, &q));
                mask *= 2;
            }
        }
    }

    #[test]
    fn mixed_pair_trace_matches_naive_contraction() {
        let q = [c64(0.7, -0.2), c64(0.1, 0.4), c64(-0.3, 0.6), c64(0.5, 0.2)];
        for dim in [2usize, 4, 8] {
            let pt = rand_slice(dim as u64 + 9, dim * dim);
            let m = rand_slice(dim as u64 + 900, dim * dim);
            let mut mask = 1;
            while mask < dim {
                // Naive strictly sequential reference over all pairs.
                let mut want = Complex64::ZERO;
                for r in 0..dim {
                    for a0 in 0..dim {
                        if a0 & mask != 0 {
                            continue;
                        }
                        let a1 = a0 | mask;
                        let y0 = m[r * dim + a0] * q[0] + m[r * dim + a1] * q[2];
                        let y1 = m[r * dim + a0] * q[1] + m[r * dim + a1] * q[3];
                        want += pt[r * dim + a0] * y0 + pt[r * dim + a1] * y1;
                    }
                }
                let got = mixed_pair_trace(&pt, &m, dim, mask, &q);
                assert!(
                    (got - want).abs() < 1e-12,
                    "dim={dim} mask={mask}: {got:?} vs {want:?}"
                );
                mask *= 2;
            }
        }
    }

    #[test]
    fn force_simd_round_trips() {
        let auto = force_simd(None);
        assert!(!force_simd(Some(false)));
        assert!(!simd_active());
        let granted = force_simd(Some(true));
        assert_eq!(granted, simd_active());
        assert_eq!(force_simd(None), auto);
    }
}

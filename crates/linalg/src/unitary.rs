//! Unitary-specific metrics and utilities.
//!
//! Pulse generation constantly asks three questions about unitaries:
//!
//! 1. *How close are `A` and `B` as quantum operations?* — answered up to
//!    global phase by [`phase_invariant_fidelity`] / [`phase_invariant_distance`].
//! 2. *Are `A` and `B` the same operation?* — [`approx_eq_up_to_phase`].
//! 3. *Can I use `A` as a cache key that ignores global phase?* —
//!    [`UnitaryKey`], the fingerprint EPOC's pulse library is indexed by
//!    (the paper's "detection of unitary similarity with global phase").

use crate::complex::c64;
use crate::matrix::Matrix;

/// Normalized Hilbert–Schmidt overlap `|Tr(A†·B)| / d` in `[0, 1]`.
///
/// Equal to 1 exactly when `A = e^{iφ}·B`; this is the standard
/// phase-invariant gate fidelity proxy used by QSearch-style synthesis and
/// by GRAPE cost functions.
///
/// # Panics
///
/// Panics if the shapes differ or are not square.
pub fn phase_invariant_fidelity(a: &Matrix, b: &Matrix) -> f64 {
    assert!(a.is_square() && b.is_square(), "fidelity needs square matrices");
    assert_eq!(a.rows(), b.rows(), "dimension mismatch");
    let d = a.rows() as f64;
    a.hs_inner(b).abs() / d
}

/// Phase-invariant distance `√(1 − |Tr(A†B)|/d)` in `[0, 1]`.
///
/// This is the cost function of the paper's Algorithm 2 (synthesis) and the
/// per-pulse distance in the ESP fidelity estimate (Eq. 3).
pub fn phase_invariant_distance(a: &Matrix, b: &Matrix) -> f64 {
    (1.0 - phase_invariant_fidelity(a, b)).max(0.0).sqrt()
}

/// `true` when `A ≈ e^{iφ}·B` for some global phase `φ`, to tolerance `tol`
/// on the phase-invariant distance.
pub fn approx_eq_up_to_phase(a: &Matrix, b: &Matrix, tol: f64) -> bool {
    a.rows() == b.rows() && a.cols() == b.cols() && phase_invariant_distance(a, b) <= tol
}

/// Removes the global phase from a unitary, fixing a canonical representative.
///
/// The phase is chosen so that the entry of largest modulus becomes real
/// and positive; ties are broken by the first such entry in row-major order.
/// Any two unitaries equal up to global phase canonicalize to (numerically)
/// the same matrix.
pub fn canonicalize_phase(u: &Matrix) -> Matrix {
    let mut best = 0usize;
    let mut best_abs = -1.0f64;
    for (idx, z) in u.as_slice().iter().enumerate() {
        let a = z.abs();
        // Strictly-greater with a tolerance keeps the choice stable for
        // matrices that differ only by phase and float noise.
        if a > best_abs + 1e-9 {
            best_abs = a;
            best = idx;
        }
    }
    if best_abs <= 0.0 {
        return u.clone();
    }
    let z = u.as_slice()[best];
    let phase = z / c64(z.abs(), 0.0);
    u.scale(phase.conj())
}

/// The global phase `φ` (in radians) such that `a ≈ e^{iφ}·b`, estimated from
/// the Hilbert–Schmidt inner product. Only meaningful when the two are in
/// fact phase-equivalent.
pub fn relative_phase(a: &Matrix, b: &Matrix) -> f64 {
    b.hs_inner(a).arg()
}

/// A hashable, global-phase-invariant fingerprint of a unitary.
///
/// Entries of the phase-canonicalized matrix are quantized to a grid of
/// width [`UnitaryKey::QUANTUM`]; two unitaries produce the same key when
/// they are equal up to global phase and well inside the quantization grid.
/// EPOC uses this as the index of the pulse library, which raises cache hit
/// rates versus the phase-sensitive keys of AccQOC/PAQOC.
///
/// # Examples
///
/// ```
/// use epoc_linalg::{Matrix, UnitaryKey, c64, Complex64};
///
/// let x = Matrix::from_rows(&[
///     &[Complex64::ZERO, Complex64::ONE],
///     &[Complex64::ONE, Complex64::ZERO],
/// ]);
/// let gx = x.scale(Complex64::cis(1.234)); // same gate, different phase
/// assert_eq!(UnitaryKey::new(&x), UnitaryKey::new(&gx));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitaryKey {
    dim: u32,
    cells: Vec<(i32, i32)>,
}

impl UnitaryKey {
    /// Quantization grid width for key construction.
    pub const QUANTUM: f64 = 1e-6;

    /// Rebuilds a key from its raw parts, the inverse of
    /// [`UnitaryKey::cells`]. Used by the pulse-library persistence layer
    /// to restore keys from disk without re-deriving them from a matrix.
    pub fn from_parts(dim: usize, cells: Vec<(i32, i32)>) -> Self {
        Self { dim: dim as u32, cells }
    }

    /// The quantized cells of the fingerprint, row-major `(re, im)` pairs.
    pub fn cells(&self) -> &[(i32, i32)] {
        &self.cells
    }

    /// Builds the phase-invariant key of a unitary.
    pub fn new(u: &Matrix) -> Self {
        let canon = canonicalize_phase(u);
        let q = Self::QUANTUM;
        let cells = canon
            .as_slice()
            .iter()
            .map(|z| {
                let re = (z.re / q).round();
                let im = (z.im / q).round();
                // Avoid -0.0 style signed-zero mismatches.
                (re as i32, im as i32)
            })
            .collect();
        Self {
            dim: u.rows() as u32,
            cells,
        }
    }

    /// Dimension of the keyed unitary.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }
}

/// A phase-*sensitive* key, as used by the AccQOC/PAQOC baselines.
///
/// Identical construction to [`UnitaryKey`] but without phase
/// canonicalization — provided so the cache-hit-rate ablation can compare
/// the two policies.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaseSensitiveKey {
    dim: u32,
    cells: Vec<(i32, i32)>,
}

impl PhaseSensitiveKey {
    /// Builds the phase-sensitive key of a unitary.
    pub fn new(u: &Matrix) -> Self {
        let q = UnitaryKey::QUANTUM;
        let cells = u
            .as_slice()
            .iter()
            .map(|z| ((z.re / q).round() as i32, (z.im / q).round() as i32))
            .collect();
        Self {
            dim: u.rows() as u32,
            cells,
        }
    }

    /// Rebuilds a key from its raw parts (see [`UnitaryKey::from_parts`]).
    pub fn from_parts(dim: usize, cells: Vec<(i32, i32)>) -> Self {
        Self { dim: dim as u32, cells }
    }

    /// The quantized cells of the fingerprint, row-major `(re, im)` pairs.
    pub fn cells(&self) -> &[(i32, i32)] {
        &self.cells
    }

    /// Dimension of the keyed unitary.
    pub fn dim(&self) -> usize {
        self.dim as usize
    }
}

/// Average gate fidelity of a noisy implementation `V` of target `U` for
/// `n`-qubit gates: `(|Tr(U†V)|² + d) / (d² + d)`.
///
/// A standard figure of merit relating the HS overlap to state-averaged
/// fidelity.
pub fn average_gate_fidelity(u: &Matrix, v: &Matrix) -> f64 {
    let d = u.rows() as f64;
    let tr = u.hs_inner(v).abs();
    (tr * tr + d) / (d * d + d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use std::f64::consts::PI;

    fn pauli_x() -> Matrix {
        Matrix::from_rows(&[
            &[Complex64::ZERO, Complex64::ONE],
            &[Complex64::ONE, Complex64::ZERO],
        ])
    }

    fn hadamard() -> Matrix {
        let s = std::f64::consts::FRAC_1_SQRT_2;
        Matrix::from_rows(&[
            &[c64(s, 0.0), c64(s, 0.0)],
            &[c64(s, 0.0), c64(-s, 0.0)],
        ])
    }

    #[test]
    fn fidelity_of_identical_is_one() {
        let h = hadamard();
        assert!((phase_invariant_fidelity(&h, &h) - 1.0).abs() < 1e-12);
        assert!(phase_invariant_distance(&h, &h) < 1e-7);
    }

    #[test]
    fn fidelity_is_phase_invariant() {
        let h = hadamard();
        let g = h.scale(Complex64::cis(0.77));
        assert!((phase_invariant_fidelity(&h, &g) - 1.0).abs() < 1e-12);
        assert!(approx_eq_up_to_phase(&h, &g, 1e-9));
    }

    #[test]
    fn distance_of_orthogonal_gates() {
        // Tr(X†Z) = 0 so fidelity 0, distance 1.
        let x = pauli_x();
        let z = Matrix::from_diag(&[Complex64::ONE, c64(-1.0, 0.0)]);
        assert!(phase_invariant_fidelity(&x, &z).abs() < 1e-12);
        assert!((phase_invariant_distance(&x, &z) - 1.0).abs() < 1e-12);
        assert!(!approx_eq_up_to_phase(&x, &z, 0.5));
    }

    #[test]
    fn canonicalize_removes_phase() {
        let h = hadamard();
        for phi in [0.1, 1.0, -2.3, PI] {
            let g = h.scale(Complex64::cis(phi));
            assert!(canonicalize_phase(&g).approx_eq(&canonicalize_phase(&h), 1e-9));
        }
    }

    #[test]
    fn relative_phase_recovered() {
        let h = hadamard();
        let phi = 0.9;
        let g = h.scale(Complex64::cis(phi));
        assert!((relative_phase(&g, &h) - phi).abs() < 1e-9);
    }

    #[test]
    fn keys_collide_only_up_to_phase() {
        let x = pauli_x();
        let xp = x.scale(Complex64::cis(2.0));
        let h = hadamard();
        assert_eq!(UnitaryKey::new(&x), UnitaryKey::new(&xp));
        assert_ne!(UnitaryKey::new(&x), UnitaryKey::new(&h));
        // Phase-sensitive keys separate the two phases.
        assert_ne!(PhaseSensitiveKey::new(&x), PhaseSensitiveKey::new(&xp));
        assert_eq!(PhaseSensitiveKey::new(&x), PhaseSensitiveKey::new(&x.clone()));
    }

    #[test]
    fn key_stable_under_noise() {
        let h = hadamard();
        let noisy = Matrix::from_fn(2, 2, |i, j| h[(i, j)] + c64(1e-10, -1e-10));
        assert_eq!(UnitaryKey::new(&h), UnitaryKey::new(&noisy));
    }

    #[test]
    fn average_gate_fidelity_bounds() {
        let h = hadamard();
        assert!((average_gate_fidelity(&h, &h) - 1.0).abs() < 1e-12);
        let x = pauli_x();
        let f = average_gate_fidelity(&h, &x);
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn key_dim_reported() {
        let k = UnitaryKey::new(&Matrix::identity(4));
        assert_eq!(k.dim(), 4);
    }
}

//! Property-based tests for the linear-algebra core.

use epoc_linalg::{
    c64, canonicalize_phase, eigh, expm, expm_ih, phase_invariant_distance, random_hermitian,
    random_unitary, Complex64, Matrix, UnitaryKey,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_complex() -> impl Strategy<Value = Complex64> {
    (-2.0..2.0f64, -2.0..2.0f64).prop_map(|(re, im)| c64(re, im))
}

fn matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(small_complex(), n * n)
        .prop_map(move |v| Matrix::from_vec(n, n, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_mul_commutative(a in small_complex(), b in small_complex()) {
        prop_assert!((a * b).approx_eq(b * a, 1e-12));
    }

    #[test]
    fn complex_mul_associative(a in small_complex(), b in small_complex(), c in small_complex()) {
        prop_assert!(((a * b) * c).approx_eq(a * (b * c), 1e-9));
    }

    #[test]
    fn complex_conj_is_involution(a in small_complex()) {
        prop_assert_eq!(a.conj().conj(), a);
    }

    #[test]
    fn complex_abs_multiplicative(a in small_complex(), b in small_complex()) {
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }

    #[test]
    fn matmul_associative(a in matrix(3), b in matrix(3), c in matrix(3)) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn matmul_distributes_over_add(a in matrix(3), b in matrix(3), c in matrix(3)) {
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn dagger_is_involution(a in matrix(4)) {
        prop_assert!(a.dagger().dagger().approx_eq(&a, 1e-15));
    }

    #[test]
    fn trace_cyclic(a in matrix(3), b in matrix(3)) {
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        prop_assert!(t1.approx_eq(t2, 1e-8));
    }

    #[test]
    fn kron_respects_dagger(a in matrix(2), b in matrix(2)) {
        let lhs = a.kron(&b).dagger();
        let rhs = a.dagger().kron(&b.dagger());
        prop_assert!(lhs.approx_eq(&rhs, 1e-12));
    }

    #[test]
    fn frobenius_triangle_inequality(a in matrix(3), b in matrix(3)) {
        let sum = (&a + &b).frobenius_norm();
        prop_assert!(sum <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    }

    #[test]
    fn eigh_reconstructs_random_hermitian(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hermitian(4, &mut rng);
        let e = eigh(&h).unwrap();
        prop_assert!(e.reconstruct().approx_eq(&h, 1e-8));
        prop_assert!(e.vectors.is_unitary(1e-8));
    }

    #[test]
    fn expm_ih_is_unitary(seed in 0u64..500, t in 0.0..5.0f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hermitian(3, &mut rng);
        let u = expm_ih(&h, t).unwrap();
        prop_assert!(u.is_unitary(1e-9));
    }

    #[test]
    fn expm_inverse_cancels(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hermitian(3, &mut rng).scale(c64(0.0, -1.0));
        let e = expm(&h);
        let einv = expm(&h.scale_re(-1.0));
        prop_assert!(e.matmul(&einv).approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn unitary_key_invariant_under_global_phase(seed in 0u64..500, phi in -3.1..3.1f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(3, &mut rng);
        let v = u.scale(Complex64::cis(phi));
        prop_assert_eq!(UnitaryKey::new(&u), UnitaryKey::new(&v));
    }

    #[test]
    fn canonicalize_is_idempotent(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(3, &mut rng);
        let c1 = canonicalize_phase(&u);
        let c2 = canonicalize_phase(&c1);
        prop_assert!(c1.approx_eq(&c2, 1e-10));
    }

    #[test]
    fn distance_symmetric(sa in 0u64..200, sb in 0u64..200) {
        let mut ra = StdRng::seed_from_u64(sa);
        let mut rb = StdRng::seed_from_u64(sb.wrapping_add(1_000_000));
        let a = random_unitary(3, &mut ra);
        let b = random_unitary(3, &mut rb);
        let d1 = phase_invariant_distance(&a, &b);
        let d2 = phase_invariant_distance(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-10);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&d1));
    }

    #[test]
    fn embed_preserves_unitarity(seed in 0u64..200, q in 0usize..3) {
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(2, &mut rng);
        let e = u.embed(&[q], 3);
        prop_assert!(e.is_unitary(1e-9));
    }

    #[test]
    fn embed_composes_like_matmul(seed in 0u64..100) {
        // embed(A)·embed(B) = embed(A·B) when acting on the same qubit.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_unitary(2, &mut rng);
        let b = random_unitary(2, &mut rng);
        let lhs = a.embed(&[1], 3).matmul(&b.embed(&[1], 3));
        let rhs = a.matmul(&b).embed(&[1], 3);
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }
}

//! Property-based tests for the linear-algebra core.
//!
//! Ported from `proptest!` macros to `epoc_rt::check`, preserving the
//! 64-case counts.

use epoc_linalg::{
    c64, canonicalize_phase, eigh, expm, expm_ih, phase_invariant_distance, random_hermitian,
    random_unitary, Complex64, Matrix, UnitaryKey,
};
use epoc_rt::check::{property, Gen};
use epoc_rt::rng::StdRng;

fn small_complex(g: &mut Gen) -> Complex64 {
    c64(g.f64_in(-2.0, 2.0), g.f64_in(-2.0, 2.0))
}

fn matrix(g: &mut Gen, n: usize) -> Matrix {
    let v: Vec<Complex64> = (0..n * n).map(|_| small_complex(g)).collect();
    Matrix::from_vec(n, n, v)
}

#[test]
fn complex_mul_commutative() {
    property("complex_mul_commutative").cases(64).run(|g| {
        let a = small_complex(g);
        let b = small_complex(g);
        assert!((a * b).approx_eq(b * a, 1e-12));
    });
}

#[test]
fn complex_mul_associative() {
    property("complex_mul_associative").cases(64).run(|g| {
        let a = small_complex(g);
        let b = small_complex(g);
        let c = small_complex(g);
        assert!(((a * b) * c).approx_eq(a * (b * c), 1e-9));
    });
}

#[test]
fn complex_conj_is_involution() {
    property("complex_conj_is_involution").cases(64).run(|g| {
        let a = small_complex(g);
        assert_eq!(a.conj().conj(), a);
    });
}

#[test]
fn complex_abs_multiplicative() {
    property("complex_abs_multiplicative").cases(64).run(|g| {
        let a = small_complex(g);
        let b = small_complex(g);
        assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    });
}

#[test]
fn matmul_associative() {
    property("matmul_associative").cases(64).run(|g| {
        let a = matrix(g, 3);
        let b = matrix(g, 3);
        let c = matrix(g, 3);
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        assert!(lhs.approx_eq(&rhs, 1e-8));
    });
}

#[test]
fn matmul_distributes_over_add() {
    property("matmul_distributes_over_add").cases(64).run(|g| {
        let a = matrix(g, 3);
        let b = matrix(g, 3);
        let c = matrix(g, 3);
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        assert!(lhs.approx_eq(&rhs, 1e-8));
    });
}

#[test]
fn dagger_is_involution() {
    property("dagger_is_involution").cases(64).run(|g| {
        let a = matrix(g, 4);
        assert!(a.dagger().dagger().approx_eq(&a, 1e-15));
    });
}

#[test]
fn trace_cyclic() {
    property("trace_cyclic").cases(64).run(|g| {
        let a = matrix(g, 3);
        let b = matrix(g, 3);
        let t1 = a.matmul(&b).trace();
        let t2 = b.matmul(&a).trace();
        assert!(t1.approx_eq(t2, 1e-8));
    });
}

#[test]
fn kron_respects_dagger() {
    property("kron_respects_dagger").cases(64).run(|g| {
        let a = matrix(g, 2);
        let b = matrix(g, 2);
        let lhs = a.kron(&b).dagger();
        let rhs = a.dagger().kron(&b.dagger());
        assert!(lhs.approx_eq(&rhs, 1e-12));
    });
}

#[test]
fn frobenius_triangle_inequality() {
    property("frobenius_triangle_inequality").cases(64).run(|g| {
        let a = matrix(g, 3);
        let b = matrix(g, 3);
        let sum = (&a + &b).frobenius_norm();
        assert!(sum <= a.frobenius_norm() + b.frobenius_norm() + 1e-9);
    });
}

#[test]
fn eigh_reconstructs_random_hermitian() {
    property("eigh_reconstructs_random_hermitian").cases(64).run(|g| {
        let seed = g.u64_in(0, 500);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hermitian(4, &mut rng);
        let e = eigh(&h).unwrap();
        assert!(e.reconstruct().approx_eq(&h, 1e-8), "seed={seed}");
        assert!(e.vectors.is_unitary(1e-8), "seed={seed}");
    });
}

#[test]
fn expm_ih_is_unitary() {
    property("expm_ih_is_unitary").cases(64).run(|g| {
        let seed = g.u64_in(0, 500);
        let t = g.f64_in(0.0, 5.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hermitian(3, &mut rng);
        let u = expm_ih(&h, t).unwrap();
        assert!(u.is_unitary(1e-9), "seed={seed} t={t}");
    });
}

#[test]
fn expm_inverse_cancels() {
    property("expm_inverse_cancels").cases(64).run(|g| {
        let seed = g.u64_in(0, 200);
        let mut rng = StdRng::seed_from_u64(seed);
        let h = random_hermitian(3, &mut rng).scale(c64(0.0, -1.0));
        let e = expm(&h);
        let einv = expm(&h.scale_re(-1.0));
        assert!(
            e.matmul(&einv).approx_eq(&Matrix::identity(3), 1e-9),
            "seed={seed}"
        );
    });
}

#[test]
fn unitary_key_invariant_under_global_phase() {
    property("unitary_key_invariant_under_global_phase")
        .cases(64)
        .run(|g| {
            let seed = g.u64_in(0, 500);
            let phi = g.f64_in(-3.1, 3.1);
            let mut rng = StdRng::seed_from_u64(seed);
            let u = random_unitary(3, &mut rng);
            let v = u.scale(Complex64::cis(phi));
            assert_eq!(UnitaryKey::new(&u), UnitaryKey::new(&v), "seed={seed} phi={phi}");
        });
}

#[test]
fn canonicalize_is_idempotent() {
    property("canonicalize_is_idempotent").cases(64).run(|g| {
        let seed = g.u64_in(0, 300);
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(3, &mut rng);
        let c1 = canonicalize_phase(&u);
        let c2 = canonicalize_phase(&c1);
        assert!(c1.approx_eq(&c2, 1e-10), "seed={seed}");
    });
}

#[test]
fn distance_symmetric() {
    property("distance_symmetric").cases(64).run(|g| {
        let sa = g.u64_in(0, 200);
        let sb = g.u64_in(0, 200);
        let mut ra = StdRng::seed_from_u64(sa);
        let mut rb = StdRng::seed_from_u64(sb.wrapping_add(1_000_000));
        let a = random_unitary(3, &mut ra);
        let b = random_unitary(3, &mut rb);
        let d1 = phase_invariant_distance(&a, &b);
        let d2 = phase_invariant_distance(&b, &a);
        assert!((d1 - d2).abs() < 1e-10, "sa={sa} sb={sb}");
        assert!((0.0..=1.0 + 1e-9).contains(&d1), "sa={sa} sb={sb}");
    });
}

#[test]
fn embed_preserves_unitarity() {
    property("embed_preserves_unitarity").cases(64).run(|g| {
        let seed = g.u64_in(0, 200);
        let q = g.usize_in(0, 3);
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(2, &mut rng);
        let e = u.embed(&[q], 3);
        assert!(e.is_unitary(1e-9), "seed={seed} q={q}");
    });
}

#[test]
fn embed_composes_like_matmul() {
    property("embed_composes_like_matmul").cases(64).run(|g| {
        let seed = g.u64_in(0, 100);
        // embed(A)·embed(B) = embed(A·B) when acting on the same qubit.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_unitary(2, &mut rng);
        let b = random_unitary(2, &mut rng);
        let lhs = a.embed(&[1], 3).matmul(&b.embed(&[1], 3));
        let rhs = a.matmul(&b).embed(&[1], 3);
        assert!(lhs.approx_eq(&rhs, 1e-9), "seed={seed}");
    });
}

//! Circuit blocks: contiguous chunks of a circuit restricted to a qubit
//! subset, the unit of work handed to synthesis and to QOC.

use epoc_circuit::{Circuit, Gate, Operation};
use epoc_linalg::Matrix;

/// A circuit block: a local sub-circuit plus the global qubits it lives on.
///
/// The local circuit uses wire indices `0..qubits.len()`; wire `i`
/// corresponds to global qubit `qubits[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    qubits: Vec<usize>,
    circuit: Circuit,
}

impl Block {
    /// Creates a block from sorted global qubits and a local circuit.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is unsorted/duplicated or the circuit register
    /// size does not match.
    pub fn new(qubits: Vec<usize>, circuit: Circuit) -> Self {
        assert_eq!(
            circuit.n_qubits(),
            qubits.len(),
            "local circuit register must match qubit list"
        );
        for w in qubits.windows(2) {
            assert!(w[0] < w[1], "block qubits must be sorted and unique");
        }
        Self { qubits, circuit }
    }

    /// The global qubit indices (sorted).
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The local circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of qubits the block spans.
    pub fn n_qubits(&self) -> usize {
        self.qubits.len()
    }

    /// Number of gates in the block.
    pub fn len(&self) -> usize {
        self.circuit.len()
    }

    /// `true` when the block holds no gates.
    pub fn is_empty(&self) -> bool {
        self.circuit.is_empty()
    }

    /// The block's unitary matrix (dimension `2^n_qubits`).
    ///
    /// # Panics
    ///
    /// Panics for blocks larger than 12 qubits.
    pub fn unitary(&self) -> Matrix {
        self.circuit.unitary()
    }

    /// Converts the block to a single opaque gate application on the
    /// global register.
    ///
    /// # Panics
    ///
    /// Panics for blocks larger than 12 qubits (dense unitary limit).
    pub fn to_operation(&self, label: &str) -> Operation {
        Operation::new(Gate::unitary(label, self.unitary()), self.qubits.clone())
    }

    /// Maps a local operation to global qubit indices.
    pub fn globalize(&self, op: &Operation) -> Operation {
        Operation::new(
            op.gate.clone(),
            op.qubits.iter().map(|&q| self.qubits[q]).collect(),
        )
    }
}

/// An ordered partition of a circuit into blocks.
///
/// Flattening the blocks in order reproduces the original circuit's
/// semantics (validated by [`Partition::to_circuit`] + the test suites).
#[derive(Debug, Clone)]
pub struct Partition {
    n_qubits: usize,
    blocks: Vec<Block>,
}

impl Partition {
    /// Creates a partition over an `n_qubits` register.
    pub fn new(n_qubits: usize, blocks: Vec<Block>) -> Self {
        for b in &blocks {
            if let Some(&max) = b.qubits().iter().max() {
                assert!(max < n_qubits, "block qubit out of range");
            }
        }
        Self { n_qubits, blocks }
    }

    /// The blocks in execution order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Register size.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total gate count across blocks.
    pub fn total_gates(&self) -> usize {
        self.blocks.iter().map(Block::len).sum()
    }

    /// Flattens the partition back into a plain circuit (for validation).
    pub fn to_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for b in &self.blocks {
            for op in b.circuit().ops() {
                let g = b.globalize(op);
                c.push_op(g);
            }
        }
        c
    }

    /// Converts every block into one opaque unitary gate, yielding the
    /// "block circuit" QOC consumes.
    ///
    /// # Panics
    ///
    /// Panics if any block exceeds the 12-qubit dense-unitary limit.
    pub fn to_block_circuit(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        for (i, b) in self.blocks.iter().enumerate() {
            if b.is_empty() {
                continue;
            }
            c.push_op(b.to_operation(&format!("blk{i}")));
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::{circuits_equivalent, Gate};

    fn sample_block() -> Block {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        Block::new(vec![1, 3], c)
    }

    #[test]
    fn block_accessors() {
        let b = sample_block();
        assert_eq!(b.n_qubits(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.qubits(), &[1, 3]);
        assert!(b.unitary().is_unitary(1e-10));
    }

    #[test]
    fn globalize_maps_qubits() {
        let b = sample_block();
        let op = b.globalize(&b.circuit().ops()[1]);
        assert_eq!(op.qubits, vec![1, 3]);
    }

    #[test]
    fn to_operation_is_opaque() {
        let b = sample_block();
        let op = b.to_operation("blk");
        assert!(matches!(op.gate, Gate::Unitary { .. }));
        assert_eq!(op.qubits, vec![1, 3]);
    }

    #[test]
    fn partition_round_trip_semantics() {
        // Build a 4-qubit circuit, split by hand into two blocks, flatten.
        let mut full = Circuit::new(4);
        full.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::T, &[2])
            .push(Gate::CX, &[2, 3]);
        let mut c1 = Circuit::new(2);
        c1.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        let mut c2 = Circuit::new(2);
        c2.push(Gate::T, &[0]).push(Gate::CX, &[0, 1]);
        let p = Partition::new(4, vec![Block::new(vec![0, 1], c1), Block::new(vec![2, 3], c2)]);
        assert_eq!(p.total_gates(), 4);
        assert!(circuits_equivalent(&full, &p.to_circuit(), 1e-9));
        // Block circuit also equivalent.
        assert!(circuits_equivalent(&full, &p.to_block_circuit(), 1e-7));
        assert_eq!(p.to_block_circuit().len(), 2);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn block_rejects_unsorted_qubits() {
        Block::new(vec![3, 1], Circuit::new(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_rejects_out_of_range() {
        let b = Block::new(vec![5], Circuit::new(1));
        Partition::new(2, vec![b]);
    }
}

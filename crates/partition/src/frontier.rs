//! Incremental per-qubit frontier tracking.
//!
//! Both partitioners repeatedly ask "what is the earliest unconsumed
//! operation on qubit q?". Recomputing that by scanning the whole op list
//! per query is O(n²) over a partition run; this tracker answers it in
//! amortized O(1) with per-qubit cursors over precomputed op lists.

use epoc_circuit::Operation;

/// Amortized-O(1) "earliest unconsumed op on qubit q" queries.
pub(crate) struct FrontierTracker {
    by_qubit: Vec<Vec<usize>>,
    cursor: Vec<usize>,
}

impl FrontierTracker {
    /// Indexes the operations of a circuit by qubit.
    pub(crate) fn new(n_qubits: usize, ops: &[Operation]) -> Self {
        let mut by_qubit = vec![Vec::new(); n_qubits];
        for (i, op) in ops.iter().enumerate() {
            for &q in &op.qubits {
                by_qubit[q].push(i);
            }
        }
        Self {
            cursor: vec![0; n_qubits],
            by_qubit,
        }
    }

    /// The earliest unconsumed op index touching `q`, advancing the cursor
    /// past consumed entries.
    pub(crate) fn frontier(&mut self, q: usize, consumed: &[bool]) -> Option<usize> {
        let list = &self.by_qubit[q];
        let cur = &mut self.cursor[q];
        while *cur < list.len() && consumed[list[*cur]] {
            *cur += 1;
        }
        list.get(*cur).copied()
    }

    /// `true` when op `i` is *ready*: it is the frontier of every qubit it
    /// touches.
    pub(crate) fn is_ready(&mut self, i: usize, op: &Operation, consumed: &[bool]) -> bool {
        op.qubits
            .iter()
            .all(|&q| self.frontier(q, consumed) == Some(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::{Circuit, Gate};

    #[test]
    fn frontier_advances_past_consumed() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::H, &[1]);
        let ops = c.ops().to_vec();
        let mut t = FrontierTracker::new(2, &ops);
        let mut consumed = vec![false; 3];
        assert_eq!(t.frontier(0, &consumed), Some(0));
        assert_eq!(t.frontier(1, &consumed), Some(1));
        assert!(t.is_ready(0, &ops[0], &consumed));
        assert!(!t.is_ready(1, &ops[1], &consumed)); // waits on H(q0)
        consumed[0] = true;
        assert_eq!(t.frontier(0, &consumed), Some(1));
        assert!(t.is_ready(1, &ops[1], &consumed));
        consumed[1] = true;
        assert_eq!(t.frontier(0, &consumed), None);
        assert_eq!(t.frontier(1, &consumed), Some(2));
    }
}

//! The paper's Algorithm 1: greedy circuit partitioning.
//!
//! Horizontal cutting groups qubits by interaction (a qubit plus its
//! circuit-graph neighbors, capped at the qubit limit); vertical cutting
//! fills each group's block with ready gates until the gate limit. The
//! consumption order respects per-qubit program order, so concatenating
//! blocks in creation order reproduces the circuit exactly.

use crate::block::{Block, Partition};
use epoc_circuit::{Circuit, Operation};
use std::collections::BTreeSet;

/// Configuration for the greedy partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionConfig {
    /// Maximum number of qubits per block (the paper uses up to 8; QOC
    /// cost grows exponentially with this).
    pub max_qubits: usize,
    /// Maximum number of gates per block (the `limit` of Algorithm 1's
    /// vertical cut).
    pub max_gates: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        Self {
            max_qubits: 4,
            max_gates: 24,
        }
    }
}

/// Partitions a circuit into blocks with the greedy algorithm.
///
/// Every gate lands in exactly one block; blocks concatenated in order
/// reproduce the input circuit gate-for-gate.
///
/// # Panics
///
/// Panics if `config.max_qubits == 0` or `config.max_gates == 0`, or if
/// the circuit contains a gate wider than `max_qubits`.
pub fn greedy_partition(circuit: &Circuit, config: PartitionConfig) -> Partition {
    let _span = epoc_rt::telemetry::span("partition", "greedy_partition");
    assert!(config.max_qubits >= 1, "max_qubits must be positive");
    assert!(config.max_gates >= 1, "max_gates must be positive");
    let n = circuit.n_qubits();
    let ops = circuit.ops();
    for op in ops {
        assert!(
            op.qubits.len() <= config.max_qubits,
            "gate {} spans {} qubits > max_qubits {}",
            op.gate,
            op.qubits.len(),
            config.max_qubits
        );
    }
    let mut consumed = vec![false; ops.len()];
    let mut n_consumed = 0usize;
    let mut blocks: Vec<Block> = Vec::new();
    let mut tracker = crate::frontier::FrontierTracker::new(n, ops);

    while n_consumed < ops.len() {
        let groups = group_qubits(circuit, &consumed, config.max_qubits);
        let mut progressed = false;
        for group in groups {
            let group_set: BTreeSet<usize> = group.iter().copied().collect();
            let mut taken: Vec<usize> = Vec::new();
            // Fill the block: repeatedly take the earliest ready op whose
            // qubits all lie in the group. A ready op is the frontier of
            // every qubit it touches, so the group's qubit frontiers are
            // the only candidates.
            loop {
                if taken.len() >= config.max_gates {
                    break;
                }
                let mut pick: Option<usize> = None;
                for &q in &group {
                    let Some(i) = tracker.frontier(q, &consumed) else {
                        continue;
                    };
                    if !ops[i].qubits.iter().all(|qq| group_set.contains(qq)) {
                        continue;
                    }
                    if !tracker.is_ready(i, &ops[i], &consumed) {
                        continue;
                    }
                    pick = Some(pick.map_or(i, |p: usize| p.min(i)));
                }
                match pick {
                    Some(i) => {
                        consumed[i] = true;
                        n_consumed += 1;
                        taken.push(i);
                        progressed = true;
                    }
                    None => break,
                }
            }
            if !taken.is_empty() {
                blocks.push(make_block(ops, &taken));
            }
        }
        if !progressed {
            // Safety net: the globally earliest unconsumed op is always
            // ready; emit it as a singleton block.
            let i = consumed
                .iter()
                .position(|&c| !c)
                .expect("gates remain but none found");
            consumed[i] = true;
            n_consumed += 1;
            blocks.push(make_block(ops, &[i]));
        }
    }
    crate::record_partition_telemetry("partition", &blocks);
    Partition::new(n, blocks)
}

/// Horizontal cut (Algorithm 1's `GroupQubits`): repeatedly pop a qubit
/// with pending gates and group it with its most-interacting circuit
/// neighbors, capped at `limit`.
fn group_qubits(circuit: &Circuit, consumed: &[bool], limit: usize) -> Vec<Vec<usize>> {
    let n = circuit.n_qubits();
    // Interaction counts over unconsumed multi-qubit gates.
    let mut weight = vec![vec![0usize; n]; n];
    let mut pending = vec![false; n];
    for (i, op) in circuit.ops().iter().enumerate() {
        if consumed[i] {
            continue;
        }
        for &q in &op.qubits {
            pending[q] = true;
        }
        for (a_idx, &a) in op.qubits.iter().enumerate() {
            for &b in &op.qubits[a_idx + 1..] {
                weight[a][b] += 1;
                weight[b][a] += 1;
            }
        }
    }
    let mut unassigned: BTreeSet<usize> =
        (0..n).filter(|&q| pending[q]).collect();
    let mut groups = Vec::new();
    while let Some(&q) = unassigned.iter().next() {
        unassigned.remove(&q);
        let mut group = vec![q];
        // Sort remaining candidates by interaction weight with the group.
        loop {
            if group.len() >= limit {
                break;
            }
            let best = unassigned
                .iter()
                .map(|&cand| {
                    let w: usize = group.iter().map(|&g| weight[g][cand]).sum();
                    (w, cand)
                })
                .filter(|&(w, _)| w > 0)
                .max_by_key(|&(w, cand)| (w, std::cmp::Reverse(cand)));
            match best {
                Some((_, cand)) => {
                    unassigned.remove(&cand);
                    group.push(cand);
                }
                None => break,
            }
        }
        group.sort_unstable();
        groups.push(group);
    }
    groups
}

/// Builds a block from the taken op indices (in consumption order).
fn make_block(ops: &[Operation], taken: &[usize]) -> Block {
    let mut qubits: Vec<usize> = taken
        .iter()
        .flat_map(|&i| ops[i].qubits.iter().copied())
        .collect();
    qubits.sort_unstable();
    qubits.dedup();
    let mut local = Circuit::new(qubits.len());
    for &i in taken {
        let mapped: Vec<usize> = ops[i]
            .qubits
            .iter()
            .map(|q| qubits.binary_search(q).expect("qubit in block"))
            .collect();
        local.push(ops[i].gate.clone(), &mapped);
    }
    Block::new(qubits, local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::{circuits_equivalent, generators, Gate};

    fn check_partition(c: &Circuit, config: PartitionConfig) -> Partition {
        let p = greedy_partition(c, config);
        // Every gate exactly once.
        assert_eq!(p.total_gates(), c.len());
        // Respect limits.
        for b in p.blocks() {
            assert!(b.n_qubits() <= config.max_qubits, "qubit limit violated");
            assert!(b.len() <= config.max_gates, "gate limit violated");
            assert!(!b.is_empty());
        }
        // Semantics preserved.
        if c.n_qubits() <= 8 {
            assert!(
                circuits_equivalent(c, &p.to_circuit(), 1e-8),
                "partition broke semantics"
            );
        }
        p
    }

    #[test]
    fn partitions_ghz() {
        let c = generators::ghz(4);
        let p = check_partition(&c, PartitionConfig { max_qubits: 2, max_gates: 8 });
        assert!(p.len() >= 2);
    }

    #[test]
    fn partitions_random_circuits() {
        for seed in 0..10u64 {
            let c = generators::random_circuit(5, 30, seed);
            check_partition(&c, PartitionConfig { max_qubits: 3, max_gates: 10 });
        }
    }

    #[test]
    fn partitions_qft() {
        let c = generators::qft(5);
        check_partition(&c, PartitionConfig { max_qubits: 4, max_gates: 12 });
    }

    #[test]
    fn partitions_with_tight_gate_limit() {
        let c = generators::random_circuit(4, 24, 3);
        let p = check_partition(&c, PartitionConfig { max_qubits: 4, max_gates: 2 });
        assert!(p.len() >= 12);
    }

    #[test]
    fn partitions_with_wide_limits_single_block_possible() {
        let c = generators::ghz(3);
        let p = check_partition(&c, PartitionConfig { max_qubits: 8, max_gates: 100 });
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn block_circuit_equivalent() {
        let c = generators::random_circuit(4, 20, 7);
        let p = greedy_partition(&c, PartitionConfig { max_qubits: 3, max_gates: 8 });
        assert!(circuits_equivalent(&c, &p.to_block_circuit(), 1e-7));
    }

    #[test]
    fn empty_circuit_gives_empty_partition() {
        let p = greedy_partition(&Circuit::new(3), PartitionConfig::default());
        assert!(p.is_empty());
    }

    #[test]
    fn three_qubit_gates_fit() {
        let mut c = Circuit::new(4);
        c.push(Gate::CCX, &[0, 1, 2]).push(Gate::CX, &[2, 3]);
        check_partition(&c, PartitionConfig { max_qubits: 3, max_gates: 5 });
    }

    #[test]
    #[should_panic(expected = "spans")]
    fn rejects_gates_wider_than_limit() {
        let mut c = Circuit::new(3);
        c.push(Gate::CCX, &[0, 1, 2]);
        greedy_partition(&c, PartitionConfig { max_qubits: 2, max_gates: 4 });
    }

    #[test]
    fn deep_narrow_blocks() {
        // A long single-qubit chain fills one block up to the gate limit.
        let mut c = Circuit::new(1);
        for i in 0..25 {
            c.push(Gate::RZ(0.1 * i as f64), &[0]);
        }
        let p = check_partition(&c, PartitionConfig { max_qubits: 1, max_gates: 10 });
        assert_eq!(p.len(), 3); // 10 + 10 + 5
    }
}

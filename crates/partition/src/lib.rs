//! # epoc-partition — circuit partitioning for the EPOC pipeline
//!
//! Implements the paper's Algorithm 1 ([`greedy_partition`]: horizontal
//! qubit grouping + vertical gate filling), the §3.3 regrouping pass
//! ([`regroup`], [`regroup_to_blocks`]) that aggregates synthesized VUG
//! streams into QOC-sized unitaries, and the PAQOC-style coarse-grained
//! baseline partitioner ([`paqoc_partition`]) the evaluation compares
//! against.
//!
//! ## Example
//!
//! ```
//! use epoc_circuit::generators;
//! use epoc_partition::{greedy_partition, PartitionConfig};
//!
//! let c = generators::ghz(6);
//! let p = greedy_partition(&c, PartitionConfig { max_qubits: 3, max_gates: 8 });
//! assert_eq!(p.total_gates(), c.len());
//! for block in p.blocks() {
//!     assert!(block.n_qubits() <= 3);
//! }
//! ```

#![warn(missing_docs)]

mod block;
mod frontier;
mod greedy;
mod paqoc;
mod regroup;

pub use block::{Block, Partition};
pub use greedy::{greedy_partition, PartitionConfig};
pub use paqoc::{mine_patterns, paqoc_partition, PaqocConfig, PatternKey};
pub use regroup::{regroup, regroup_to_blocks, RegroupConfig, RegroupStats};

/// Records block-count and per-block shape telemetry for a finished
/// partitioning pass under the `<prefix>.*` metric names. One counter add
/// plus two histogram samples per block; free when telemetry is disabled.
pub(crate) fn record_partition_telemetry(prefix: &'static str, blocks: &[Block]) {
    use epoc_rt::telemetry;
    if !telemetry::is_enabled() {
        return;
    }
    let (blocks_name, qubits_name, gates_name) = match prefix {
        "regroup" => (
            "regroup.blocks",
            "regroup.block_qubits",
            "regroup.block_gates",
        ),
        _ => (
            "partition.blocks",
            "partition.block_qubits",
            "partition.block_gates",
        ),
    };
    telemetry::counter_add(blocks_name, blocks.len() as u64);
    for block in blocks {
        telemetry::histogram_record(qubits_name, block.n_qubits() as u64);
        telemetry::histogram_record(gates_name, block.circuit().len() as u64);
    }
}

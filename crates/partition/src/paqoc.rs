//! PAQOC-style coarse-grained baseline partitioner.
//!
//! Reimplements the comparator the paper measures against (Chen et al.,
//! HPCA 2023): gate-level grouping that is **bound by the circuit's gate
//! structure** — blocks are runs of program-order-consecutive gates on a
//! small fixed qubit set (≤ 2 by default, as in AccQOC's uniform two-qubit
//! subcircuits), with frequent-pattern mining to model its custom-basis
//! pulse cache. No ZX optimization, no synthesis, no global-phase-aware
//! matching — exactly the coarseness EPOC's fine-grained pipeline improves
//! on.

use crate::block::{Block, Partition};
use epoc_circuit::{Circuit, Gate};
use std::collections::HashMap;

/// Configuration of the PAQOC-like partitioner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaqocConfig {
    /// Maximum qubits per pattern block (2 in AccQOC/PAQOC).
    pub max_qubits: usize,
    /// Maximum gates per pattern block.
    pub max_gates: usize,
}

impl Default for PaqocConfig {
    fn default() -> Self {
        Self {
            max_qubits: 2,
            max_gates: 6,
        }
    }
}

/// Partitions a circuit the PAQOC way: scan gates in program order; each
/// block starts at the first unconsumed gate and absorbs subsequent
/// *ready* gates whose qubits stay inside the block's qubit set (fixed
/// once `max_qubits` distinct qubits are touched).
///
/// Unlike [`crate::greedy_partition`], no interaction-graph grouping is
/// done and blocks cannot reach past an intervening gate on another group
/// — the gate-structure-bound behavior the paper criticizes.
///
/// # Panics
///
/// Panics if a gate is wider than `max_qubits`.
pub fn paqoc_partition(circuit: &Circuit, config: PaqocConfig) -> Partition {
    let ops = circuit.ops();
    for op in ops {
        assert!(
            op.qubits.len() <= config.max_qubits,
            "gate {} wider than PAQOC pattern limit",
            op.gate
        );
    }
    let n = circuit.n_qubits();
    let mut consumed = vec![false; ops.len()];
    let mut blocks = Vec::new();
    let mut n_consumed = 0usize;
    let mut tracker = crate::frontier::FrontierTracker::new(n, ops);
    // Position of the earliest unconsumed op, maintained incrementally.
    let mut scan_from = 0usize;

    while n_consumed < ops.len() {
        // Seed: earliest unconsumed gate.
        while scan_from < ops.len() && consumed[scan_from] {
            scan_from += 1;
        }
        let seed = scan_from;
        let mut qubits: Vec<usize> = ops[seed].qubits.clone();
        qubits.sort_unstable();
        let mut taken = vec![seed];
        consumed[seed] = true;
        n_consumed += 1;
        // Absorb the earliest ready gate that keeps the qubit set within
        // the limits. Ready gates are per-qubit frontiers, so only the
        // frontiers of qubits near the block are candidates.
        'absorb: loop {
            if taken.len() >= config.max_gates {
                break;
            }
            let mut pick: Option<(usize, Vec<usize>)> = None;
            for q in 0..n {
                let Some(i) = tracker.frontier(q, &consumed) else {
                    continue;
                };
                if let Some((best, _)) = &pick {
                    if i >= *best {
                        continue;
                    }
                }
                // Would the qubit set stay within limits?
                let mut new_qubits = qubits.clone();
                for &oq in &ops[i].qubits {
                    if !new_qubits.contains(&oq) {
                        new_qubits.push(oq);
                    }
                }
                if new_qubits.len() > config.max_qubits {
                    continue;
                }
                if !tracker.is_ready(i, &ops[i], &consumed) {
                    continue;
                }
                new_qubits.sort_unstable();
                pick = Some((i, new_qubits));
            }
            match pick {
                Some((i, new_qubits)) => {
                    qubits = new_qubits;
                    consumed[i] = true;
                    n_consumed += 1;
                    taken.push(i);
                    continue 'absorb;
                }
                None => break,
            }
        }
        // Build the local circuit.
        let mut local = Circuit::new(qubits.len());
        for &i in &taken {
            let mapped: Vec<usize> = ops[i]
                .qubits
                .iter()
                .map(|q| qubits.binary_search(q).expect("in block"))
                .collect();
            local.push(ops[i].gate.clone(), &mapped);
        }
        blocks.push(Block::new(qubits, local));
    }
    Partition::new(n, blocks)
}

/// A structural fingerprint of a block's local circuit: gate names, local
/// wiring and quantized parameters. Used to model PAQOC's pattern-mined
/// custom basis (identical patterns hit the same pulse-cache entry).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatternKey(Vec<(String, Vec<usize>, Vec<i64>)>);

impl PatternKey {
    /// Builds the pattern key of a local circuit.
    pub fn of(circuit: &Circuit) -> Self {
        let entries = circuit
            .ops()
            .iter()
            .map(|op| {
                let params: Vec<i64> = match &op.gate {
                    Gate::Unitary { .. } => vec![],
                    g => g
                        .params()
                        .iter()
                        .map(|p| (p / 1e-9).round() as i64)
                        .collect(),
                };
                (op.gate.name().to_string(), op.qubits.clone(), params)
            })
            .collect();
        Self(entries)
    }
}

/// Mines pattern frequencies across a partition: how many blocks share
/// each structural pattern. High-frequency patterns are the ones PAQOC
/// promotes to its custom basis.
pub fn mine_patterns(partition: &Partition) -> HashMap<PatternKey, usize> {
    let mut counts = HashMap::new();
    for b in partition.blocks() {
        *counts.entry(PatternKey::of(b.circuit())).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::{circuits_equivalent, generators};

    #[test]
    fn paqoc_preserves_semantics() {
        for seed in 0..8u64 {
            let c = generators::random_circuit(4, 20, seed);
            let p = paqoc_partition(&c, PaqocConfig::default());
            assert_eq!(p.total_gates(), c.len());
            assert!(circuits_equivalent(&c, &p.to_circuit(), 1e-8), "seed {seed}");
            for b in p.blocks() {
                assert!(b.n_qubits() <= 2);
                assert!(b.len() <= 6);
            }
        }
    }

    #[test]
    fn paqoc_stays_two_qubit_while_greedy_grows() {
        // PAQOC's pattern blocks are capped at two qubits; the greedy
        // partitioner at the same gate budget forms wider blocks.
        let c = generators::qaoa(6, 2, 3);
        let paqoc = paqoc_partition(&c, PaqocConfig::default());
        assert!(paqoc.blocks().iter().all(|b| b.n_qubits() <= 2));
        assert!(circuits_equivalent(&c, &paqoc.to_circuit(), 1e-8));
        let greedy = crate::greedy_partition(
            &c,
            crate::PartitionConfig {
                max_qubits: 3,
                max_gates: 16,
            },
        );
        assert!(
            greedy.blocks().iter().any(|b| b.n_qubits() == 3),
            "greedy never used its wider budget"
        );
    }

    #[test]
    fn pattern_mining_counts_repeats() {
        // GHZ chains produce repeated CX patterns.
        let c = generators::ghz(8);
        let p = paqoc_partition(&c, PaqocConfig { max_qubits: 2, max_gates: 1 });
        let patterns = mine_patterns(&p);
        // 7 CX blocks share one pattern; 1 H block has another.
        assert_eq!(patterns.len(), 2);
        let max = patterns.values().max().copied().unwrap_or(0);
        assert_eq!(max, 7);
    }

    #[test]
    fn pattern_key_distinguishes_params() {
        let mut a = Circuit::new(1);
        a.push(epoc_circuit::Gate::RZ(0.3), &[0]);
        let mut b = Circuit::new(1);
        b.push(epoc_circuit::Gate::RZ(0.4), &[0]);
        assert_ne!(PatternKey::of(&a), PatternKey::of(&b));
        assert_eq!(PatternKey::of(&a), PatternKey::of(&a.clone()));
    }

    #[test]
    fn empty_circuit() {
        let p = paqoc_partition(&Circuit::new(2), PaqocConfig::default());
        assert!(p.is_empty());
    }
}

//! The paper's §3.3 regrouping pass.
//!
//! Synthesis emits fine-grained VUGs (1–2 qubit unitaries) and CNOTs —
//! too small for QOC to beat calibrated per-gate pulses. Regrouping
//! aggregates the synthesized stream back into blocks of a few qubits so
//! each QOC invocation optimizes a unitary large enough to profit, while
//! staying small enough to keep GRAPE tractable.

use crate::block::Partition;
use crate::paqoc::{paqoc_partition, PaqocConfig};
use epoc_circuit::Circuit;

/// Configuration for regrouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegroupConfig {
    /// Maximum qubits per regrouped unitary (paper: up to 8; default 3 to
    /// keep GRAPE runs fast on a laptop).
    pub max_qubits: usize,
    /// Maximum gates absorbed per regrouped unitary.
    pub max_gates: usize,
}

impl Default for RegroupConfig {
    fn default() -> Self {
        Self {
            max_qubits: 2,
            max_gates: 8,
        }
    }
}

/// Statistics of a regrouping pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegroupStats {
    /// Gates in the input stream.
    pub gates_in: usize,
    /// Opaque blocks in the output.
    pub blocks_out: usize,
    /// Mean gates absorbed per block.
    pub mean_gates_per_block: f64,
    /// Mean qubits per block.
    pub mean_qubits_per_block: f64,
}

/// Regroups a (typically synthesized) circuit into a partition of blocks
/// sized for QOC.
///
/// Uses the sequential seed-and-absorb scan rather than the
/// interaction-graph grouping of [`crate::greedy_partition`]: for the
/// small block widths QOC wants (2–3 qubits), program-order scanning
/// produces far fewer, fuller blocks, which directly translates into
/// fewer pulses.
pub fn regroup(circuit: &Circuit, config: RegroupConfig) -> Partition {
    let _span = epoc_rt::telemetry::span("partition", "regroup");
    let p = paqoc_partition(
        circuit,
        PaqocConfig {
            max_qubits: config.max_qubits,
            max_gates: config.max_gates,
        },
    );
    crate::record_partition_telemetry("regroup", p.blocks());
    p
}

/// Regroups and converts to a circuit of opaque unitary blocks, returning
/// the block circuit plus statistics.
pub fn regroup_to_blocks(circuit: &Circuit, config: RegroupConfig) -> (Circuit, RegroupStats) {
    let p = regroup(circuit, config);
    let blocks_out = p.len();
    let stats = RegroupStats {
        gates_in: circuit.len(),
        blocks_out,
        mean_gates_per_block: if blocks_out == 0 {
            0.0
        } else {
            circuit.len() as f64 / blocks_out as f64
        },
        mean_qubits_per_block: if blocks_out == 0 {
            0.0
        } else {
            p.blocks().iter().map(|b| b.n_qubits()).sum::<usize>() as f64 / blocks_out as f64
        },
    };
    (p.to_block_circuit(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::{circuits_equivalent, generators, Gate};

    #[test]
    fn regroup_preserves_semantics() {
        let c = generators::random_circuit(4, 24, 2);
        let (blocks, stats) = regroup_to_blocks(&c, RegroupConfig::default());
        assert!(circuits_equivalent(&c, &blocks, 1e-7));
        assert_eq!(stats.gates_in, 24);
        assert!(stats.blocks_out < 24, "no aggregation happened");
        assert!(stats.mean_gates_per_block > 1.0);
    }

    #[test]
    fn regroup_block_structure() {
        let c = generators::ghz(6);
        let p = regroup(&c, RegroupConfig { max_qubits: 2, max_gates: 8 });
        for b in p.blocks() {
            assert!(b.n_qubits() <= 2);
            assert!(b.len() <= 8);
        }
        assert!(circuits_equivalent(&c, &p.to_circuit(), 1e-8));
    }

    #[test]
    fn regroup_handles_opaque_gates() {
        // Regrouping runs on synthesized streams containing opaque VUGs.
        let mut c = epoc_circuit::Circuit::new(3);
        c.push(Gate::unitary("vug", Gate::H.unitary_matrix()), &[0]);
        c.push(Gate::CX, &[0, 1]);
        c.push(Gate::unitary("vug", Gate::T.unitary_matrix()), &[1]);
        c.push(Gate::CX, &[1, 2]);
        let (blocks, stats) = regroup_to_blocks(&c, RegroupConfig { max_qubits: 3, max_gates: 10 });
        assert_eq!(stats.blocks_out, 1);
        assert!(circuits_equivalent(&c, &blocks, 1e-7));
    }

    #[test]
    fn empty_input() {
        let (blocks, stats) = regroup_to_blocks(&epoc_circuit::Circuit::new(2), RegroupConfig::default());
        assert!(blocks.is_empty());
        assert_eq!(stats.blocks_out, 0);
        assert_eq!(stats.mean_gates_per_block, 0.0);
    }
}

//! Decoherence-aware fidelity estimation.
//!
//! The paper's introduction frames latency reduction through coherence
//! time: a circuit only succeeds if its pulse schedule fits well inside
//! T1/T2. This module extends the bare ESP product (Eq. 3) with the
//! exponential decay each qubit accumulates over the schedule's makespan,
//! quantifying how EPOC's latency reductions translate into fidelity.

use crate::schedule::PulseSchedule;

/// Per-qubit coherence parameters (ns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceModel {
    /// Amplitude-damping time constant T1.
    pub t1: f64,
    /// Dephasing time constant T2 (≤ 2·T1 physically).
    pub t2: f64,
}

impl Default for CoherenceModel {
    /// IBM-like transmon numbers: T1 = 100 µs, T2 = 80 µs.
    fn default() -> Self {
        Self {
            t1: 100_000.0,
            t2: 80_000.0,
        }
    }
}

impl CoherenceModel {
    /// Creates a model, validating positivity and `t2 ≤ 2·t1`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive times or unphysical `t2 > 2·t1`.
    pub fn new(t1: f64, t2: f64) -> Self {
        assert!(t1 > 0.0 && t2 > 0.0, "coherence times must be positive");
        assert!(t2 <= 2.0 * t1 + 1e-9, "T2 cannot exceed 2·T1");
        Self { t1, t2 }
    }

    /// Single-qubit survival factor over a time `t`:
    /// `(1/3)·(e^{-t/T1} + 2·e^{-t/T2})` — the average-fidelity decay of
    /// the combined amplitude-damping + dephasing channel.
    pub fn survival(&self, t: f64) -> f64 {
        ((-t / self.t1).exp() + 2.0 * (-t / self.t2).exp()) / 3.0
    }

    /// Decoherence factor of a whole schedule: the product of each
    /// qubit's survival over the schedule makespan. Idle time decoheres
    /// exactly like busy time — which is why latency matters.
    pub fn schedule_decay(&self, schedule: &PulseSchedule) -> f64 {
        let latency = schedule.latency();
        if latency <= 0.0 {
            return 1.0;
        }
        // Only qubits that actually participate decohere *relevantly*
        // (idle spectators carry no circuit state).
        let mut active = vec![false; schedule.n_qubits()];
        for p in schedule.pulses() {
            for &q in &p.qubits {
                active[q] = true;
            }
        }
        let n_active = active.iter().filter(|&&a| a).count();
        self.survival(latency).powi(n_active as i32)
    }

    /// ESP including decoherence: `Eq. 3 product × schedule decay`.
    pub fn esp_with_decoherence(&self, schedule: &PulseSchedule) -> f64 {
        schedule.esp() * self.schedule_decay(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{PulsePayload, ScheduledPulse};

    fn schedule_with(latency: f64, qubits: usize) -> PulseSchedule {
        let mut s = PulseSchedule::new(qubits);
        for q in 0..qubits {
            s.push(ScheduledPulse {
                qubits: vec![q],
                start: 0.0,
                duration: latency,
                fidelity: 0.999,
                label: "p".into(),
                payload: PulsePayload::Opaque,
            });
        }
        s
    }

    #[test]
    fn survival_monotone_decreasing() {
        let m = CoherenceModel::default();
        assert!((m.survival(0.0) - 1.0).abs() < 1e-12);
        assert!(m.survival(1000.0) > m.survival(10_000.0));
        assert!(m.survival(10_000.0) > m.survival(100_000.0));
    }

    #[test]
    fn empty_schedule_no_decay() {
        let m = CoherenceModel::default();
        assert_eq!(m.schedule_decay(&PulseSchedule::new(3)), 1.0);
    }

    #[test]
    fn longer_schedules_decay_more() {
        let m = CoherenceModel::default();
        let short = schedule_with(100.0, 2);
        let long = schedule_with(10_000.0, 2);
        assert!(m.schedule_decay(&short) > m.schedule_decay(&long));
    }

    #[test]
    fn more_active_qubits_decay_more() {
        let m = CoherenceModel::default();
        let narrow = schedule_with(1000.0, 2);
        let wide = schedule_with(1000.0, 6);
        assert!(m.schedule_decay(&narrow) > m.schedule_decay(&wide));
    }

    #[test]
    fn esp_with_decoherence_below_bare_esp() {
        let m = CoherenceModel::default();
        let s = schedule_with(5000.0, 3);
        assert!(m.esp_with_decoherence(&s) < s.esp());
        assert!(m.esp_with_decoherence(&s) > 0.0);
    }

    #[test]
    fn idle_spectators_do_not_count() {
        let m = CoherenceModel::default();
        let mut s = PulseSchedule::new(10);
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 0.0,
            duration: 1000.0,
            fidelity: 1.0,
            label: "x".into(),
            payload: PulsePayload::Opaque,
        });
        // One active qubit despite the 10-qubit register.
        let expect = m.survival(1000.0);
        assert!((m.schedule_decay(&s) - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "T2 cannot exceed")]
    fn rejects_unphysical_t2() {
        CoherenceModel::new(100.0, 300.0);
    }
}

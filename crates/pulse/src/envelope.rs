//! Pulse envelope shapes.
//!
//! The physical signal sent to a qubit is a carrier modulated by an
//! envelope. Calibrated gates use analytic envelopes (Gaussian, DRAG,
//! flat-top); GRAPE emits piecewise-constant envelopes. All shapes share
//! the [`Envelope`] interface so schedules can mix them.

/// An envelope shape: amplitude as a function of time over `[0, duration]`.
#[derive(Debug, Clone, PartialEq)]
pub enum Envelope {
    /// Constant amplitude.
    Square {
        /// Amplitude (rad/ns).
        amplitude: f64,
        /// Duration (ns).
        duration: f64,
    },
    /// Gaussian centered at `duration/2` with the given standard deviation.
    Gaussian {
        /// Peak amplitude (rad/ns).
        amplitude: f64,
        /// Duration (ns).
        duration: f64,
        /// Standard deviation (ns).
        sigma: f64,
    },
    /// Derivative-removal-by-adiabatic-gate: Gaussian with a scaled
    /// derivative on the quadrature channel (the in-phase part is returned
    /// by [`Envelope::sample`]; the quadrature by
    /// [`Envelope::sample_quadrature`]).
    Drag {
        /// Peak amplitude (rad/ns).
        amplitude: f64,
        /// Duration (ns).
        duration: f64,
        /// Standard deviation (ns).
        sigma: f64,
        /// DRAG coefficient β.
        beta: f64,
    },
    /// Piecewise-constant samples of fixed slot width (GRAPE output).
    PiecewiseConstant {
        /// Amplitudes per slot (rad/ns).
        samples: Vec<f64>,
        /// Slot width (ns).
        dt: f64,
    },
}

impl Envelope {
    /// Total duration (ns).
    pub fn duration(&self) -> f64 {
        match self {
            Envelope::Square { duration, .. }
            | Envelope::Gaussian { duration, .. }
            | Envelope::Drag { duration, .. } => *duration,
            Envelope::PiecewiseConstant { samples, dt } => samples.len() as f64 * dt,
        }
    }

    /// In-phase amplitude at time `t` (0 outside `[0, duration]`).
    pub fn sample(&self, t: f64) -> f64 {
        if t < 0.0 || t > self.duration() {
            return 0.0;
        }
        match self {
            Envelope::Square { amplitude, .. } => *amplitude,
            Envelope::Gaussian {
                amplitude,
                duration,
                sigma,
            }
            | Envelope::Drag {
                amplitude,
                duration,
                sigma,
                ..
            } => {
                let x = (t - duration / 2.0) / sigma;
                amplitude * (-0.5 * x * x).exp()
            }
            Envelope::PiecewiseConstant { samples, dt } => {
                let idx = ((t / dt) as usize).min(samples.len().saturating_sub(1));
                samples.get(idx).copied().unwrap_or(0.0)
            }
        }
    }

    /// Quadrature amplitude at `t` (non-zero only for DRAG).
    pub fn sample_quadrature(&self, t: f64) -> f64 {
        match self {
            Envelope::Drag {
                amplitude,
                duration,
                sigma,
                beta,
            } => {
                if t < 0.0 || t > self.duration() {
                    return 0.0;
                }
                let x = (t - duration / 2.0) / sigma;
                // β · d/dt Gaussian
                -beta * amplitude * x / sigma * (-0.5 * x * x).exp()
            }
            _ => 0.0,
        }
    }

    /// Integrated rotation angle `∫ A(t) dt` (numerically, 0.1 ns steps;
    /// exact for square and piecewise-constant).
    pub fn area(&self) -> f64 {
        match self {
            Envelope::Square {
                amplitude,
                duration,
            } => amplitude * duration,
            Envelope::PiecewiseConstant { samples, dt } => {
                samples.iter().sum::<f64>() * dt
            }
            _ => {
                let d = self.duration();
                let steps = (d / 0.1).ceil() as usize;
                let h = d / steps as f64;
                (0..steps)
                    .map(|i| self.sample((i as f64 + 0.5) * h) * h)
                    .sum()
            }
        }
    }

    /// Maximum absolute amplitude.
    pub fn peak(&self) -> f64 {
        match self {
            Envelope::Square { amplitude, .. }
            | Envelope::Gaussian { amplitude, .. }
            | Envelope::Drag { amplitude, .. } => amplitude.abs(),
            Envelope::PiecewiseConstant { samples, .. } => {
                samples.iter().fold(0.0f64, |m, &s| m.max(s.abs()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn square_area_is_exact() {
        let e = Envelope::Square {
            amplitude: 0.1,
            duration: 31.4,
        };
        assert!((e.area() - 0.1 * 31.4).abs() < 1e-12);
        assert_eq!(e.sample(10.0), 0.1);
        assert_eq!(e.sample(-1.0), 0.0);
        assert_eq!(e.sample(32.0), 0.0);
    }

    #[test]
    fn gaussian_peaks_at_center() {
        let e = Envelope::Gaussian {
            amplitude: 0.2,
            duration: 40.0,
            sigma: 10.0,
        };
        assert!((e.sample(20.0) - 0.2).abs() < 1e-12);
        assert!(e.sample(0.0) < e.sample(20.0));
        assert!((e.sample(10.0) - e.sample(30.0)).abs() < 1e-12);
    }

    #[test]
    fn gaussian_area_close_to_analytic() {
        let (a, d, s) = (0.2, 60.0, 8.0);
        let e = Envelope::Gaussian {
            amplitude: a,
            duration: d,
            sigma: s,
        };
        // ≈ a·σ·√(2π) when tails fit inside the window.
        let analytic = a * s * (2.0 * PI).sqrt();
        assert!((e.area() - analytic).abs() < 1e-2 * analytic);
    }

    #[test]
    fn drag_quadrature_antisymmetric() {
        let e = Envelope::Drag {
            amplitude: 0.2,
            duration: 40.0,
            sigma: 10.0,
            beta: 0.5,
        };
        let q1 = e.sample_quadrature(15.0);
        let q2 = e.sample_quadrature(25.0);
        assert!((q1 + q2).abs() < 1e-12, "not antisymmetric: {q1} {q2}");
        assert_eq!(e.sample_quadrature(20.0), 0.0);
        // In-phase equals plain Gaussian.
        assert!((e.sample(20.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pwc_samples_and_area() {
        let e = Envelope::PiecewiseConstant {
            samples: vec![0.1, -0.2, 0.3],
            dt: 2.0,
        };
        assert_eq!(e.duration(), 6.0);
        assert_eq!(e.sample(1.0), 0.1);
        assert_eq!(e.sample(3.0), -0.2);
        assert_eq!(e.sample(5.9), 0.3);
        assert!((e.area() - 0.4).abs() < 1e-12);
        assert!((e.peak() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn non_drag_quadrature_is_zero() {
        let e = Envelope::Square {
            amplitude: 1.0,
            duration: 1.0,
        };
        assert_eq!(e.sample_quadrature(0.5), 0.0);
    }
}

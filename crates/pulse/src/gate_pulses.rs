//! Gate-based pulse generation (the traditional workflow of Figure 1).
//!
//! Every basis gate maps to a calibrated pulse with fixed duration,
//! fidelity, and envelope; RZ is a virtual frame update. This is the
//! "gate-based" comparator of Table 1.

use crate::envelope::Envelope;
use crate::schedule::{schedule_circuit, PulseCost, PulseSchedule};
use epoc_circuit::{Circuit, Gate, Operation};
use epoc_qoc::GateDurationTable;

/// Calibrated per-gate fidelities for the gate-based baseline
/// (NISQ-typical numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateFidelityTable {
    /// Single-qubit physical pulse fidelity.
    pub single: f64,
    /// Virtual RZ fidelity (exact).
    pub rz: f64,
    /// Two-qubit gate fidelity.
    pub two: f64,
    /// Three-qubit (decomposed) gate fidelity.
    pub three: f64,
}

impl Default for GateFidelityTable {
    fn default() -> Self {
        Self {
            single: 0.9996,
            rz: 1.0,
            two: 0.9930,
            three: 0.9930f64.powi(6) * 0.9996f64.powi(8),
        }
    }
}

impl GateFidelityTable {
    /// Fidelity of one gate's calibrated pulse.
    pub fn gate(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::RZ(_) | Gate::Phase(_) | Gate::Z | Gate::S | Gate::Sdg | Gate::T
            | Gate::Tdg | Gate::I => self.rz,
            g if g.arity() == 1 => self.single,
            Gate::Swap => self.two.powi(3),
            g if g.arity() == 2 => self.two,
            _ => self.three,
        }
    }
}

/// The calibrated pulse tables for a device.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GatePulseTables {
    /// Durations.
    pub durations: GateDurationTable,
    /// Fidelities.
    pub fidelities: GateFidelityTable,
}

impl GatePulseTables {
    /// The [`PulseCost`] of one operation under these tables.
    pub fn cost(&self, op: &Operation) -> PulseCost {
        PulseCost {
            duration: self.durations.gate(&op.gate),
            fidelity: self.fidelities.gate(&op.gate),
        }
    }
}

/// Generates the gate-based pulse schedule for a circuit: one calibrated
/// pulse per physical gate, ASAP-placed.
pub fn gate_based_schedule(circuit: &Circuit, tables: &GatePulseTables) -> PulseSchedule {
    schedule_circuit(circuit, |op| tables.cost(op))
}

/// The calibrated envelope a basis gate would use (for waveform export
/// and plotting; latency/fidelity come from the tables).
pub fn calibrated_envelope(gate: &Gate, tables: &GatePulseTables) -> Option<Envelope> {
    let duration = tables.durations.gate(gate);
    if duration <= 0.0 {
        return None; // virtual gate
    }
    match gate.arity() {
        1 => Some(Envelope::Drag {
            amplitude: std::f64::consts::PI / duration,
            duration,
            sigma: duration / 4.0,
            beta: 0.2,
        }),
        _ => Some(Envelope::Square {
            amplitude: std::f64::consts::PI / (2.0 * duration),
            duration,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::generators;

    #[test]
    fn ghz_gate_based_latency() {
        // GHZ(3): H then 2 serial CX: 35.5 + 2·300 = 635.5.
        let s = gate_based_schedule(&generators::ghz(3), &GatePulseTables::default());
        assert!((s.latency() - 635.5).abs() < 1e-9);
        assert!(s.is_valid());
    }

    #[test]
    fn rz_is_free() {
        let mut c = Circuit::new(1);
        c.push(Gate::RZ(1.0), &[0]);
        let s = gate_based_schedule(&c, &GatePulseTables::default());
        assert!(s.is_empty());
        assert_eq!(s.latency(), 0.0);
        assert_eq!(s.esp(), 1.0);
    }

    #[test]
    fn esp_reflects_gate_counts() {
        let t = GatePulseTables::default();
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        let s = gate_based_schedule(&c, &t);
        let expect = t.fidelities.single * t.fidelities.two;
        assert!((s.esp() - expect).abs() < 1e-12);
    }

    #[test]
    fn envelope_for_single_qubit_is_drag() {
        let t = GatePulseTables::default();
        match calibrated_envelope(&Gate::X, &t) {
            Some(Envelope::Drag { duration, .. }) => assert!((duration - 35.5).abs() < 1e-9),
            other => panic!("unexpected envelope {other:?}"),
        }
        assert!(calibrated_envelope(&Gate::RZ(0.4), &t).is_none());
    }

    #[test]
    fn fidelity_table_classification() {
        let f = GateFidelityTable::default();
        assert_eq!(f.gate(&Gate::T), 1.0);
        assert_eq!(f.gate(&Gate::H), f.single);
        assert_eq!(f.gate(&Gate::CX), f.two);
        assert!(f.gate(&Gate::CCX) < f.two);
    }
}

//! # epoc-pulse — pulse schedules, envelopes, latency and ESP fidelity
//!
//! The scheduling layer of the EPOC reproduction: pulse envelope shapes
//! ([`Envelope`]), ASAP placement of pulses on qubit lines
//! ([`schedule_circuit`], [`PulseSchedule`]) with the latency and Eq.-3
//! ESP-fidelity metrics the paper reports, and the calibrated gate-based
//! pulse generator ([`gate_based_schedule`]) used as the traditional-flow
//! comparator in Table 1.
//!
//! ## Example
//!
//! ```
//! use epoc_circuit::generators;
//! use epoc_pulse::{gate_based_schedule, GatePulseTables};
//!
//! let schedule = gate_based_schedule(&generators::ghz(3), &GatePulseTables::default());
//! assert!(schedule.latency() > 600.0); // H + two serial CNOTs
//! assert!(schedule.esp() < 1.0);
//! ```

#![warn(missing_docs)]

mod coherence;
mod envelope;
mod gate_pulses;
mod schedule;

pub use coherence::CoherenceModel;
pub use envelope::Envelope;
pub use gate_pulses::{
    calibrated_envelope, gate_based_schedule, GateFidelityTable, GatePulseTables,
};
pub use schedule::{
    schedule_circuit, FrameUpdate, PulseCost, PulsePayload, PulseSchedule, ScheduledPulse,
};

//! Pulse schedules: pulses placed on qubit lines in time.
//!
//! The compiler's final artifact. Latency is the makespan of the ASAP
//! schedule; ESP fidelity is the product of per-pulse fidelities (the
//! paper's Eq. 3).

use epoc_circuit::{Circuit, Operation};
use epoc_rt::json::Json;

/// One pulse placed in the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledPulse {
    /// Global qubits the pulse drives.
    pub qubits: Vec<usize>,
    /// Start time (ns).
    pub start: f64,
    /// Duration (ns).
    pub duration: f64,
    /// Pulse fidelity used in the ESP estimate.
    pub fidelity: f64,
    /// Display label (gate/block name).
    pub label: String,
}

impl ScheduledPulse {
    /// End time (ns).
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// The pulse as a JSON value (field order matches the struct).
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push(
                "qubits",
                Json::Arr(self.qubits.iter().map(|&q| Json::from(q)).collect()),
            )
            .push("start", self.start)
            .push("duration", self.duration)
            .push("fidelity", self.fidelity)
            .push("label", self.label.as_str())
    }
}

/// A pulse schedule over an `n`-qubit device.
#[derive(Debug, Clone, Default)]
pub struct PulseSchedule {
    n_qubits: usize,
    pulses: Vec<ScheduledPulse>,
}

impl PulseSchedule {
    /// Creates an empty schedule.
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            pulses: Vec::new(),
        }
    }

    /// Register size.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The scheduled pulses in insertion order.
    pub fn pulses(&self) -> &[ScheduledPulse] {
        &self.pulses
    }

    /// Number of pulses.
    pub fn len(&self) -> usize {
        self.pulses.len()
    }

    /// `true` when no pulses are scheduled.
    pub fn is_empty(&self) -> bool {
        self.pulses.is_empty()
    }

    /// Appends a pulse (caller is responsible for overlap discipline —
    /// use [`schedule_circuit`] for ASAP placement).
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or the duration is negative.
    pub fn push(&mut self, pulse: ScheduledPulse) {
        assert!(
            pulse.qubits.iter().all(|&q| q < self.n_qubits),
            "pulse qubit out of range"
        );
        assert!(pulse.duration >= 0.0, "negative duration");
        self.pulses.push(pulse);
    }

    /// Total latency: the latest pulse end time (0 for an empty schedule).
    pub fn latency(&self) -> f64 {
        self.pulses.iter().map(ScheduledPulse::end).fold(0.0, f64::max)
    }

    /// Estimated success probability: `Π (fidelity_i)` — the paper's Eq. 3
    /// with per-pulse fidelities.
    pub fn esp(&self) -> f64 {
        self.pulses.iter().map(|p| p.fidelity).product()
    }

    /// Fraction of qubit-line time occupied by pulses (the "utilization
    /// rate of the qubit lines" the paper optimizes).
    pub fn utilization(&self) -> f64 {
        let total = self.latency() * self.n_qubits as f64;
        if total <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .pulses
            .iter()
            .map(|p| p.duration * p.qubits.len() as f64)
            .sum();
        busy / total
    }

    /// The schedule as a JSON value (used by the compilation report).
    pub fn to_json_value(&self) -> Json {
        Json::obj().push("n_qubits", self.n_qubits).push(
            "pulses",
            Json::Arr(self.pulses.iter().map(ScheduledPulse::to_json_value).collect()),
        )
    }

    /// `true` when no two pulses overlap on any qubit line.
    pub fn is_valid(&self) -> bool {
        for (i, a) in self.pulses.iter().enumerate() {
            for b in &self.pulses[i + 1..] {
                if a.qubits.iter().any(|q| b.qubits.contains(q)) {
                    let disjoint = a.end() <= b.start + 1e-9 || b.end() <= a.start + 1e-9;
                    if !disjoint {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Duration and fidelity assigned to one operation by a cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseCost {
    /// Pulse duration (ns).
    pub duration: f64,
    /// Pulse fidelity.
    pub fidelity: f64,
}

/// ASAP-schedules a circuit: each operation starts as soon as all its
/// qubit lines are free. `cost` maps each operation to its pulse duration
/// and fidelity (zero-duration ops — virtual RZs — are skipped entirely).
pub fn schedule_circuit(circuit: &Circuit, mut cost: impl FnMut(&Operation) -> PulseCost) -> PulseSchedule {
    let mut schedule = PulseSchedule::new(circuit.n_qubits());
    let mut line_free = vec![0.0f64; circuit.n_qubits()];
    for op in circuit.ops() {
        let c = cost(op);
        if c.duration <= 0.0 {
            continue; // virtual gate: no pulse, no time
        }
        let start = op
            .qubits
            .iter()
            .map(|&q| line_free[q])
            .fold(0.0f64, f64::max);
        for &q in &op.qubits {
            line_free[q] = start + c.duration;
        }
        schedule.push(ScheduledPulse {
            qubits: op.qubits.clone(),
            start,
            duration: c.duration,
            fidelity: c.fidelity,
            label: op.gate.name().to_string(),
        });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;

    fn unit_cost(_: &Operation) -> PulseCost {
        PulseCost {
            duration: 10.0,
            fidelity: 0.99,
        }
    }

    #[test]
    fn empty_schedule() {
        let s = PulseSchedule::new(2);
        assert_eq!(s.latency(), 0.0);
        assert_eq!(s.esp(), 1.0);
        assert_eq!(s.utilization(), 0.0);
        assert!(s.is_valid());
    }

    #[test]
    fn parallel_gates_share_time() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::H, &[1]);
        let s = schedule_circuit(&c, unit_cost);
        assert_eq!(s.latency(), 10.0);
        assert!(s.is_valid());
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependent_gates_serialize() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]).push(Gate::H, &[1]);
        let s = schedule_circuit(&c, unit_cost);
        assert_eq!(s.latency(), 30.0);
        assert!(s.is_valid());
        assert_eq!(s.pulses()[1].start, 10.0);
        assert_eq!(s.pulses()[2].start, 20.0);
    }

    #[test]
    fn zero_duration_ops_skipped() {
        let mut c = Circuit::new(1);
        c.push(Gate::RZ(0.3), &[0]).push(Gate::X, &[0]);
        let s = schedule_circuit(&c, |op| PulseCost {
            duration: if matches!(op.gate, Gate::RZ(_)) { 0.0 } else { 20.0 },
            fidelity: 1.0,
        });
        assert_eq!(s.len(), 1);
        assert_eq!(s.latency(), 20.0);
    }

    #[test]
    fn esp_multiplies_fidelities() {
        let mut c = Circuit::new(1);
        c.push(Gate::X, &[0]).push(Gate::X, &[0]);
        let s = schedule_circuit(&c, |_| PulseCost {
            duration: 5.0,
            fidelity: 0.9,
        });
        assert!((s.esp() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn validity_detects_overlap() {
        let mut s = PulseSchedule::new(1);
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 0.0,
            duration: 10.0,
            fidelity: 1.0,
            label: "a".into(),
        });
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 5.0,
            duration: 10.0,
            fidelity: 1.0,
            label: "b".into(),
        });
        assert!(!s.is_valid());
    }

    #[test]
    fn utilization_counts_multi_qubit_pulses() {
        let mut c = Circuit::new(2);
        c.push(Gate::CX, &[0, 1]);
        let s = schedule_circuit(&c, unit_cost);
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_range() {
        let mut s = PulseSchedule::new(1);
        s.push(ScheduledPulse {
            qubits: vec![3],
            start: 0.0,
            duration: 1.0,
            fidelity: 1.0,
            label: "x".into(),
        });
    }
}

//! Pulse schedules: pulses placed on qubit lines in time.
//!
//! The compiler's final artifact. Latency is the makespan of the ASAP
//! schedule; ESP fidelity is the product of per-pulse fidelities (the
//! paper's Eq. 3).

use epoc_circuit::{Circuit, Operation};
use epoc_linalg::Matrix;
use epoc_qoc::PulseWaveform;
use epoc_rt::json::Json;
use std::sync::Arc;

/// What a scheduled pulse physically is — the replay information the
/// pulse-level simulator (`epoc-sim`) needs to drive the block through
/// the device Hamiltonian.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PulsePayload {
    /// No replay information (e.g. a modeled block too wide for a dense
    /// unitary). Schedules containing opaque pulses cannot be simulated.
    #[default]
    Opaque,
    /// A GRAPE control waveform on the block-local device (channel-major,
    /// local qubit order).
    Waveform(Arc<PulseWaveform>),
    /// Digital fallback: the block's dense local unitary, applied as one
    /// exact step (used for modeled blocks whose unitary is known).
    Unitary(Arc<Matrix>),
}

impl PulsePayload {
    /// Short kind tag used in the JSON dump.
    pub fn kind(&self) -> &'static str {
        match self {
            PulsePayload::Opaque => "opaque",
            PulsePayload::Waveform(_) => "waveform",
            PulsePayload::Unitary(_) => "unitary",
        }
    }

    /// `true` when the payload carries a control waveform.
    pub fn is_waveform(&self) -> bool {
        matches!(self, PulsePayload::Waveform(_))
    }
}

/// One pulse placed in the schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledPulse {
    /// Global qubits the pulse drives.
    pub qubits: Vec<usize>,
    /// Start time (ns).
    pub start: f64,
    /// Duration (ns).
    pub duration: f64,
    /// Pulse fidelity used in the ESP estimate.
    pub fidelity: f64,
    /// Display label (gate/block name).
    pub label: String,
    /// Replay information for the simulator.
    pub payload: PulsePayload,
}

/// A zero-duration virtual operation (an RZ-only block or gate) that the
/// scheduler drops from the physical timeline. The pulse hardware absorbs
/// these as frame changes, but the simulator must still apply their
/// unitaries to compose the correct total evolution, so the schedule
/// records them separately from the pulses (keeping latency, ESP, and
/// pulse counts untouched).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameUpdate {
    /// Global qubits the frame update acts on.
    pub qubits: Vec<usize>,
    /// The time (ns) at which it logically applies: after every earlier
    /// pulse on its qubit lines and before every later one.
    pub time: f64,
    /// The virtual block's dense local unitary, when known.
    pub unitary: Option<Arc<Matrix>>,
    /// Display label (gate/block name).
    pub label: String,
}

impl FrameUpdate {
    /// The frame as a JSON value (the unitary serializes as its kind only).
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push(
                "qubits",
                Json::Arr(self.qubits.iter().map(|&q| Json::from(q)).collect()),
            )
            .push("time", self.time)
            .push("label", self.label.as_str())
            .push("unitary", self.unitary.is_some())
    }
}

impl ScheduledPulse {
    /// End time (ns).
    pub fn end(&self) -> f64 {
        self.start + self.duration
    }

    /// The pulse as a JSON value (field order matches the struct).
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push(
                "qubits",
                Json::Arr(self.qubits.iter().map(|&q| Json::from(q)).collect()),
            )
            .push("start", self.start)
            .push("duration", self.duration)
            .push("fidelity", self.fidelity)
            .push("label", self.label.as_str())
            .push("payload", self.payload.kind())
    }
}

/// A pulse schedule over an `n`-qubit device.
#[derive(Debug, Clone, Default)]
pub struct PulseSchedule {
    n_qubits: usize,
    pulses: Vec<ScheduledPulse>,
    frames: Vec<FrameUpdate>,
}

impl PulseSchedule {
    /// Creates an empty schedule.
    pub fn new(n_qubits: usize) -> Self {
        Self {
            n_qubits,
            pulses: Vec::new(),
            frames: Vec::new(),
        }
    }

    /// Register size.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The scheduled pulses in insertion order.
    pub fn pulses(&self) -> &[ScheduledPulse] {
        &self.pulses
    }

    /// The virtual frame updates in insertion order (block order — at
    /// equal times on a shared qubit line a frame always precedes the
    /// pulse starting there, because physical pulses advance the line).
    pub fn frames(&self) -> &[FrameUpdate] {
        &self.frames
    }

    /// Number of pulses.
    pub fn len(&self) -> usize {
        self.pulses.len()
    }

    /// `true` when no pulses are scheduled.
    pub fn is_empty(&self) -> bool {
        self.pulses.is_empty()
    }

    /// Number of pulses carrying a control waveform payload (the ones a
    /// hardware profile conditions at emission).
    pub fn waveform_count(&self) -> usize {
        self.pulses.iter().filter(|p| p.payload.is_waveform()).count()
    }

    /// Appends a pulse (caller is responsible for overlap discipline —
    /// use [`schedule_circuit`] for ASAP placement).
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or the duration is negative.
    pub fn push(&mut self, pulse: ScheduledPulse) {
        assert!(
            pulse.qubits.iter().all(|&q| q < self.n_qubits),
            "pulse qubit out of range"
        );
        assert!(pulse.duration >= 0.0, "negative duration");
        self.pulses.push(pulse);
    }

    /// Appends a virtual frame update.
    ///
    /// # Panics
    ///
    /// Panics if a qubit is out of range or the time is negative.
    pub fn push_frame(&mut self, frame: FrameUpdate) {
        assert!(
            frame.qubits.iter().all(|&q| q < self.n_qubits),
            "frame qubit out of range"
        );
        assert!(frame.time >= 0.0, "negative frame time");
        self.frames.push(frame);
    }

    /// Total latency: the latest pulse end time (0 for an empty schedule).
    pub fn latency(&self) -> f64 {
        self.pulses.iter().map(ScheduledPulse::end).fold(0.0, f64::max)
    }

    /// Estimated success probability: `Π (fidelity_i)` — the paper's Eq. 3
    /// with per-pulse fidelities.
    pub fn esp(&self) -> f64 {
        self.pulses.iter().map(|p| p.fidelity).product()
    }

    /// Fraction of qubit-line time occupied by pulses (the "utilization
    /// rate of the qubit lines" the paper optimizes).
    pub fn utilization(&self) -> f64 {
        let total = self.latency() * self.n_qubits as f64;
        if total <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .pulses
            .iter()
            .map(|p| p.duration * p.qubits.len() as f64)
            .sum();
        busy / total
    }

    /// The schedule as a JSON value (used by the compilation report).
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .push("n_qubits", self.n_qubits)
            .push(
                "pulses",
                Json::Arr(self.pulses.iter().map(ScheduledPulse::to_json_value).collect()),
            )
            .push(
                "frames",
                Json::Arr(self.frames.iter().map(FrameUpdate::to_json_value).collect()),
            )
    }

    /// `true` when no two pulses overlap on any qubit line.
    pub fn is_valid(&self) -> bool {
        for (i, a) in self.pulses.iter().enumerate() {
            for b in &self.pulses[i + 1..] {
                if a.qubits.iter().any(|q| b.qubits.contains(q)) {
                    let disjoint = a.end() <= b.start + 1e-9 || b.end() <= a.start + 1e-9;
                    if !disjoint {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Duration and fidelity assigned to one operation by a cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseCost {
    /// Pulse duration (ns).
    pub duration: f64,
    /// Pulse fidelity.
    pub fidelity: f64,
}

/// ASAP-schedules a circuit: each operation starts as soon as all its
/// qubit lines are free. `cost` maps each operation to its pulse duration
/// and fidelity (zero-duration ops — virtual RZs — are skipped entirely).
pub fn schedule_circuit(circuit: &Circuit, mut cost: impl FnMut(&Operation) -> PulseCost) -> PulseSchedule {
    let mut schedule = PulseSchedule::new(circuit.n_qubits());
    let mut line_free = vec![0.0f64; circuit.n_qubits()];
    for op in circuit.ops() {
        let c = cost(op);
        let start = op
            .qubits
            .iter()
            .map(|&q| line_free[q])
            .fold(0.0f64, f64::max);
        if c.duration <= 0.0 {
            // Virtual gate: no pulse, no time — but the simulator still
            // needs its unitary to compose the correct evolution.
            schedule.push_frame(FrameUpdate {
                qubits: op.qubits.clone(),
                time: start,
                unitary: Some(Arc::new(op.gate.unitary_matrix())),
                label: op.gate.name().to_string(),
            });
            continue;
        }
        for &q in &op.qubits {
            line_free[q] = start + c.duration;
        }
        schedule.push(ScheduledPulse {
            qubits: op.qubits.clone(),
            start,
            duration: c.duration,
            fidelity: c.fidelity,
            label: op.gate.name().to_string(),
            payload: PulsePayload::Unitary(Arc::new(op.gate.unitary_matrix())),
        });
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;

    fn unit_cost(_: &Operation) -> PulseCost {
        PulseCost {
            duration: 10.0,
            fidelity: 0.99,
        }
    }

    #[test]
    fn empty_schedule() {
        let s = PulseSchedule::new(2);
        assert_eq!(s.latency(), 0.0);
        assert_eq!(s.esp(), 1.0);
        assert_eq!(s.utilization(), 0.0);
        assert!(s.is_valid());
    }

    #[test]
    fn parallel_gates_share_time() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::H, &[1]);
        let s = schedule_circuit(&c, unit_cost);
        assert_eq!(s.latency(), 10.0);
        assert!(s.is_valid());
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependent_gates_serialize() {
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]).push(Gate::H, &[1]);
        let s = schedule_circuit(&c, unit_cost);
        assert_eq!(s.latency(), 30.0);
        assert!(s.is_valid());
        assert_eq!(s.pulses()[1].start, 10.0);
        assert_eq!(s.pulses()[2].start, 20.0);
    }

    #[test]
    fn zero_duration_ops_skipped() {
        let mut c = Circuit::new(1);
        c.push(Gate::RZ(0.3), &[0]).push(Gate::X, &[0]);
        let s = schedule_circuit(&c, |op| PulseCost {
            duration: if matches!(op.gate, Gate::RZ(_)) { 0.0 } else { 20.0 },
            fidelity: 1.0,
        });
        assert_eq!(s.len(), 1);
        assert_eq!(s.latency(), 20.0);
    }

    #[test]
    fn esp_multiplies_fidelities() {
        let mut c = Circuit::new(1);
        c.push(Gate::X, &[0]).push(Gate::X, &[0]);
        let s = schedule_circuit(&c, |_| PulseCost {
            duration: 5.0,
            fidelity: 0.9,
        });
        assert!((s.esp() - 0.81).abs() < 1e-12);
    }

    #[test]
    fn validity_detects_overlap() {
        let mut s = PulseSchedule::new(1);
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 0.0,
            duration: 10.0,
            fidelity: 1.0,
            label: "a".into(),
            payload: PulsePayload::Opaque,
        });
        s.push(ScheduledPulse {
            qubits: vec![0],
            start: 5.0,
            duration: 10.0,
            fidelity: 1.0,
            label: "b".into(),
            payload: PulsePayload::Opaque,
        });
        assert!(!s.is_valid());
    }

    #[test]
    fn utilization_counts_multi_qubit_pulses() {
        let mut c = Circuit::new(2);
        c.push(Gate::CX, &[0, 1]);
        let s = schedule_circuit(&c, unit_cost);
        assert!((s.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_range() {
        let mut s = PulseSchedule::new(1);
        s.push(ScheduledPulse {
            qubits: vec![3],
            start: 0.0,
            duration: 1.0,
            fidelity: 1.0,
            label: "x".into(),
            payload: PulsePayload::Opaque,
        });
    }
}

//! Property-based tests for pulse schedules and envelopes.

use epoc_circuit::generators;
use epoc_pulse::{
    gate_based_schedule, schedule_circuit, CoherenceModel, Envelope, GatePulseTables, PulseCost,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn asap_schedules_are_always_valid(
        n in 2usize..6,
        gates in 0usize..40,
        seed in 0u64..10_000,
    ) {
        let c = generators::random_circuit(n.max(2), gates.max(1), seed);
        let s = gate_based_schedule(&c, &GatePulseTables::default());
        prop_assert!(s.is_valid(), "overlapping pulses");
        prop_assert!(s.latency() >= 0.0);
        prop_assert!((0.0..=1.0).contains(&s.esp()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&s.utilization()));
    }

    #[test]
    fn latency_bounded_by_serial_sum(
        seed in 0u64..5_000,
        dur in 1.0..100.0f64,
    ) {
        let c = generators::random_circuit(3, 12, seed);
        let s = schedule_circuit(&c, |_| PulseCost { duration: dur, fidelity: 1.0 });
        // Latency is at most fully-serial execution, at least one pulse.
        prop_assert!(s.latency() <= dur * c.len() as f64 + 1e-9);
        prop_assert!(s.latency() >= dur - 1e-9);
    }

    #[test]
    fn latency_at_least_critical_path_lower_bound(seed in 0u64..5_000) {
        // With unit durations, latency ≥ depth of the circuit.
        let c = generators::random_circuit(3, 15, seed);
        let s = schedule_circuit(&c, |_| PulseCost { duration: 1.0, fidelity: 1.0 });
        prop_assert!(s.latency() + 1e-9 >= c.depth() as f64);
    }

    #[test]
    fn coherence_decay_monotone(t1a in 1_000.0..50_000.0f64, factor in 1.1..5.0f64) {
        let c = generators::ghz(4);
        let s = gate_based_schedule(&c, &GatePulseTables::default());
        let short = CoherenceModel::new(t1a, 0.8 * t1a);
        let long = CoherenceModel::new(t1a * factor, 0.8 * t1a * factor);
        // Longer coherence → less decay.
        prop_assert!(long.schedule_decay(&s) >= short.schedule_decay(&s));
    }

    #[test]
    fn gaussian_envelope_bounded_by_peak(
        amp in 0.01..1.0f64,
        dur in 10.0..100.0f64,
        t in 0.0..100.0f64,
    ) {
        let e = Envelope::Gaussian { amplitude: amp, duration: dur, sigma: dur / 4.0 };
        prop_assert!(e.sample(t).abs() <= e.peak() + 1e-12);
    }

    #[test]
    fn pwc_round_trips_samples(samples in proptest::collection::vec(-0.5..0.5f64, 1..20)) {
        let e = Envelope::PiecewiseConstant { samples: samples.clone(), dt: 2.0 };
        for (i, &v) in samples.iter().enumerate() {
            let t = (i as f64 + 0.5) * 2.0;
            prop_assert!((e.sample(t) - v).abs() < 1e-12);
        }
        let total: f64 = samples.iter().sum::<f64>() * 2.0;
        prop_assert!((e.area() - total).abs() < 1e-9);
    }
}

#[test]
fn benchmark_suite_schedules_validate() {
    for b in generators::benchmark_suite() {
        let lowered = epoc_circuit::lower_to_basis(&b.circuit);
        let s = gate_based_schedule(&lowered, &GatePulseTables::default());
        assert!(s.is_valid(), "{} schedule overlaps", b.name);
        assert!(s.latency() > 0.0, "{} empty schedule", b.name);
    }
}

//! Property-based tests for pulse schedules and envelopes.
//!
//! Ported from `proptest!` macros to `epoc_rt::check`, preserving the
//! 48-case counts.

use epoc_circuit::generators;
use epoc_pulse::{
    gate_based_schedule, schedule_circuit, CoherenceModel, Envelope, GatePulseTables, PulseCost,
};
use epoc_rt::check::property;

#[test]
fn asap_schedules_are_always_valid() {
    property("asap_schedules_are_always_valid").cases(48).run(|g| {
        let n = g.usize_in(2, 6);
        let gates = g.usize_in(0, 40);
        let seed = g.u64_in(0, 10_000);
        let c = generators::random_circuit(n.max(2), gates.max(1), seed);
        let s = gate_based_schedule(&c, &GatePulseTables::default());
        assert!(s.is_valid(), "overlapping pulses (n={n} gates={gates} seed={seed})");
        assert!(s.latency() >= 0.0);
        assert!((0.0..=1.0).contains(&s.esp()));
        assert!((0.0..=1.0 + 1e-9).contains(&s.utilization()));
    });
}

#[test]
fn latency_bounded_by_serial_sum() {
    property("latency_bounded_by_serial_sum").cases(48).run(|g| {
        let seed = g.u64_in(0, 5_000);
        let dur = g.f64_in(1.0, 100.0);
        let c = generators::random_circuit(3, 12, seed);
        let s = schedule_circuit(&c, |_| PulseCost { duration: dur, fidelity: 1.0 });
        // Latency is at most fully-serial execution, at least one pulse.
        assert!(s.latency() <= dur * c.len() as f64 + 1e-9, "seed={seed} dur={dur}");
        assert!(s.latency() >= dur - 1e-9, "seed={seed} dur={dur}");
    });
}

#[test]
fn latency_at_least_critical_path_lower_bound() {
    property("latency_at_least_critical_path_lower_bound")
        .cases(48)
        .run(|g| {
            let seed = g.u64_in(0, 5_000);
            // With unit durations, latency ≥ depth of the circuit.
            let c = generators::random_circuit(3, 15, seed);
            let s = schedule_circuit(&c, |_| PulseCost { duration: 1.0, fidelity: 1.0 });
            assert!(s.latency() + 1e-9 >= c.depth() as f64, "seed={seed}");
        });
}

#[test]
fn coherence_decay_monotone() {
    property("coherence_decay_monotone").cases(48).run(|g| {
        let t1a = g.f64_in(1_000.0, 50_000.0);
        let factor = g.f64_in(1.1, 5.0);
        let c = generators::ghz(4);
        let s = gate_based_schedule(&c, &GatePulseTables::default());
        let short = CoherenceModel::new(t1a, 0.8 * t1a);
        let long = CoherenceModel::new(t1a * factor, 0.8 * t1a * factor);
        // Longer coherence → less decay.
        assert!(
            long.schedule_decay(&s) >= short.schedule_decay(&s),
            "t1a={t1a} factor={factor}"
        );
    });
}

#[test]
fn gaussian_envelope_bounded_by_peak() {
    property("gaussian_envelope_bounded_by_peak").cases(48).run(|g| {
        let amp = g.f64_in(0.01, 1.0);
        let dur = g.f64_in(10.0, 100.0);
        let t = g.f64_in(0.0, 100.0);
        let e = Envelope::Gaussian { amplitude: amp, duration: dur, sigma: dur / 4.0 };
        assert!(e.sample(t).abs() <= e.peak() + 1e-12, "amp={amp} dur={dur} t={t}");
    });
}

#[test]
fn pwc_round_trips_samples() {
    property("pwc_round_trips_samples").cases(48).run(|g| {
        let samples = g.vec(1, 20, |g| g.f64_in(-0.5, 0.5));
        let e = Envelope::PiecewiseConstant { samples: samples.clone(), dt: 2.0 };
        for (i, &v) in samples.iter().enumerate() {
            let t = (i as f64 + 0.5) * 2.0;
            assert!((e.sample(t) - v).abs() < 1e-12);
        }
        let total: f64 = samples.iter().sum::<f64>() * 2.0;
        assert!((e.area() - total).abs() < 1e-9);
    });
}

#[test]
fn benchmark_suite_schedules_validate() {
    for b in generators::benchmark_suite() {
        let lowered = epoc_circuit::lower_to_basis(&b.circuit);
        let s = gate_based_schedule(&lowered, &GatePulseTables::default());
        assert!(s.is_valid(), "{} schedule overlaps", b.name);
        assert!(s.latency() > 0.0, "{} empty schedule", b.name);
    }
}

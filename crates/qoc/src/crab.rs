//! CRAB — chopped random-basis quantum optimization (Caneva et al. 2011).
//!
//! The second standard QOC algorithm the paper's §2.4 describes. Instead
//! of optimizing every time slot independently (GRAPE), CRAB expands each
//! control in a small randomized Fourier basis and optimizes the few
//! coefficients with a derivative-free Nelder–Mead simplex — far fewer
//! parameters, no gradients, and naturally smooth pulses.

use crate::device::DeviceModel;
use crate::grape::propagate;
use epoc_linalg::Matrix;
use epoc_rt::rng::StdRng;
use epoc_rt::rng::Rng;

/// CRAB configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct CrabConfig {
    /// Fourier components per control channel.
    pub n_components: usize,
    /// Nelder–Mead iterations.
    pub max_iters: usize,
    /// Stop when infidelity drops below this.
    pub infidelity_threshold: f64,
    /// Random restarts (each re-draws the chopped frequencies).
    pub restarts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CrabConfig {
    fn default() -> Self {
        Self {
            n_components: 4,
            max_iters: 600,
            infidelity_threshold: 1e-4,
            restarts: 3,
            seed: 0xC4AB,
        }
    }
}

/// Result of a CRAB run.
#[derive(Debug, Clone)]
pub struct CrabResult {
    /// Optimized piecewise-constant controls (sampled from the Fourier
    /// expansion), `controls[channel][slot]`.
    pub controls: Vec<Vec<f64>>,
    /// Achieved phase-invariant fidelity.
    pub fidelity: f64,
    /// Total pulse duration (ns).
    pub duration: f64,
    /// Cost-function evaluations used.
    pub evaluations: usize,
}

/// Runs CRAB to implement `target` on `device` within `n_slots` slots.
///
/// # Panics
///
/// Panics if the target dimension mismatches the device or `n_slots == 0`.
pub fn crab(
    device: &DeviceModel,
    target: &Matrix,
    n_slots: usize,
    config: &CrabConfig,
) -> CrabResult {
    assert!(n_slots > 0, "need at least one slot");
    assert_eq!(target.rows(), device.dim(), "target dimension mismatch");
    let n_ctrl = device.controls().len();
    let nc = config.n_components;
    let dim = device.dim() as f64;
    let a_max = device.max_amplitude();
    let duration = n_slots as f64 * device.dt();

    let mut best_controls: Option<Vec<Vec<f64>>> = None;
    let mut best_fid = -1.0;
    let mut evaluations = 0usize;

    for restart in 0..config.restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64 * 7919));
        // Chopped random frequencies: ω_k = 2π k (1 + r)/T, r ∈ (−½, ½).
        let freqs: Vec<Vec<f64>> = (0..n_ctrl)
            .map(|_| {
                (1..=nc)
                    .map(|k| {
                        2.0 * std::f64::consts::PI * (k as f64 + rng.gen_f64() - 0.5)
                            / duration
                    })
                    .collect()
            })
            .collect();
        // Parameters: per channel, per component, (a_k, b_k) coefficients.
        let n_params = n_ctrl * nc * 2;
        let sample_controls = |params: &[f64]| -> Vec<Vec<f64>> {
            let mut out = vec![vec![0.0f64; n_slots]; n_ctrl];
            for j in 0..n_ctrl {
                for (s, slot) in out[j].iter_mut().enumerate() {
                    let t = (s as f64 + 0.5) * device.dt();
                    let mut v = 0.0;
                    for k in 0..nc {
                        let a = params[(j * nc + k) * 2];
                        let b = params[(j * nc + k) * 2 + 1];
                        let w = freqs[j][k];
                        v += a * (w * t).sin() + b * (w * t).cos();
                    }
                    // Keep within drive bounds with a smooth squash.
                    *slot = a_max * (v / a_max).tanh();
                }
            }
            out
        };
        let mut evals_here = 0usize;
        let mut cost = |params: &[f64]| -> f64 {
            evals_here += 1;
            let controls = sample_controls(params);
            // A propagator failure is costed worse than any valid point
            // (infidelity ≤ 1), steering the simplex away from it.
            let Ok(u) = propagate(device, &controls) else {
                return 2.0;
            };
            let f = target.dagger().matmul(&u).trace().abs() / dim;
            1.0 - f
        };

        // Nelder–Mead simplex.
        let init: Vec<f64> = (0..n_params)
            .map(|_| (rng.gen_f64() - 0.5) * a_max)
            .collect();
        let (params, c) = nelder_mead(
            &mut cost,
            &init,
            0.3 * a_max,
            config.max_iters,
            config.infidelity_threshold,
        );
        evaluations += evals_here;
        let fid = 1.0 - c;
        if fid > best_fid {
            best_fid = fid;
            best_controls = Some(sample_controls(&params));
            if c < config.infidelity_threshold {
                break;
            }
        }
    }
    CrabResult {
        controls: best_controls.expect("at least one restart"),
        fidelity: best_fid,
        duration,
        evaluations,
    }
}

/// Minimal Nelder–Mead implementation; returns (best point, best cost).
fn nelder_mead(
    cost: &mut impl FnMut(&[f64]) -> f64,
    init: &[f64],
    step: f64,
    max_iters: usize,
    target_cost: f64,
) -> (Vec<f64>, f64) {
    let n = init.len();
    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);
    // Initial simplex: init + per-axis offsets.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    simplex.push((init.to_vec(), cost(init)));
    for i in 0..n {
        let mut p = init.to_vec();
        p[i] += step;
        let c = cost(&p);
        simplex.push((p, c));
    }
    for _ in 0..max_iters {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        if simplex[0].1 < target_cost {
            break;
        }
        // Centroid of all but worst.
        let mut centroid = vec![0.0f64; n];
        for (p, _) in &simplex[..n] {
            for (c, x) in centroid.iter_mut().zip(p) {
                *c += x / n as f64;
            }
        }
        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let fr = cost(&reflect);
        if fr < simplex[0].1 {
            // Try expansion.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let fe = cost(&expand);
            simplex[n] = if fe < fr { (expand, fe) } else { (reflect, fr) };
        } else if fr < simplex[n - 1].1 {
            simplex[n] = (reflect, fr);
        } else {
            // Contraction.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let fc = cost(&contract);
            if fc < worst.1 {
                simplex[n] = (contract, fc);
            } else {
                // Shrink toward best.
                let best = simplex[0].0.clone();
                for entry in simplex.iter_mut().skip(1) {
                    let p: Vec<f64> = best
                        .iter()
                        .zip(&entry.0)
                        .map(|(b, x)| b + sigma * (x - b))
                        .collect();
                    let c = cost(&p);
                    *entry = (p, c);
                }
            }
        }
    }
    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    simplex[0].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;

    #[test]
    fn crab_reaches_single_qubit_gates() {
        let d = DeviceModel::transmon_line(1).unwrap();
        for gate in [Gate::X, Gate::H] {
            let r = crab(
                &d,
                &gate.unitary_matrix(),
                30,
                &CrabConfig {
                    restarts: 4,
                    max_iters: 800,
                    ..Default::default()
                },
            );
            assert!(
                r.fidelity > 0.99,
                "{gate}: CRAB fidelity {}",
                r.fidelity
            );
        }
    }

    #[test]
    fn crab_controls_respect_bounds() {
        let d = DeviceModel::transmon_line(1).unwrap();
        let r = crab(&d, &Gate::Sx.unitary_matrix(), 20, &CrabConfig::default());
        for ch in &r.controls {
            for &a in ch {
                assert!(a.abs() <= d.max_amplitude() + 1e-9);
            }
        }
        assert_eq!(r.duration, 40.0);
        assert!(r.evaluations > 0);
    }

    #[test]
    fn crab_smoothness() {
        // Fourier-basis pulses are smooth: adjacent-slot jumps stay small
        // relative to the amplitude bound.
        let d = DeviceModel::transmon_line(1).unwrap();
        let r = crab(&d, &Gate::X.unitary_matrix(), 40, &CrabConfig::default());
        let max_jump = r.controls[0]
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .fold(0.0f64, f64::max);
        assert!(
            max_jump < 0.8 * d.max_amplitude(),
            "jump {max_jump} too large"
        );
    }

    #[test]
    fn nelder_mead_minimizes_quadratic() {
        let mut cost = |p: &[f64]| (p[0] - 1.0).powi(2) + (p[1] + 2.0).powi(2);
        let (p, c) = nelder_mead(&mut cost, &[0.0, 0.0], 0.5, 400, 1e-12);
        assert!(c < 1e-6, "cost {c}");
        assert!((p[0] - 1.0).abs() < 1e-3);
        assert!((p[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn crab_too_short_fails_gracefully() {
        let d = DeviceModel::transmon_line(1).unwrap();
        let r = crab(&d, &Gate::X.unitary_matrix(), 2, &CrabConfig::default());
        assert!(r.fidelity < 0.9);
    }
}

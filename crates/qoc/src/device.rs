//! Simulated superconducting device model.
//!
//! The paper runs GRAPE against transmon hardware Hamiltonians. Real
//! hardware is unavailable here, so pulses are optimized against a
//! qubit-level rotating-frame model (see DESIGN.md's substitution table):
//!
//! * **drift**: staggered qubit detunings `δ_q/2 · Z_q` plus always-on
//!   exchange coupling `g (X_a X_b + Y_a Y_b)/2` along a line topology;
//! * **controls**: per-qubit X and Y microwave drives with bounded
//!   amplitude.
//!
//! Units: time in nanoseconds, angular frequencies in rad/ns.

use epoc_circuit::Gate;
use epoc_linalg::Matrix;
use std::f64::consts::PI;

/// Widest register the dense transmon model supports (64×64 matrices are
/// the practical GRAPE ceiling here).
pub const MAX_MODEL_QUBITS: usize = 6;

/// A typed error from device-model construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceError {
    /// The requested register width falls outside the dense model's
    /// supported range (`1..=`[`MAX_MODEL_QUBITS`]).
    UnsupportedWidth {
        /// The width that was requested.
        n_qubits: usize,
        /// The widest supported register.
        max: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::UnsupportedWidth { n_qubits, max } => write!(
                f,
                "transmon model supports 1..={max} qubits, got {n_qubits}"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A control Hamiltonian channel.
#[derive(Debug, Clone)]
pub struct ControlChannel {
    /// Display label (`"X0"`, `"Y2"`, …).
    pub label: String,
    /// The Hamiltonian term this channel drives (full block dimension).
    pub hamiltonian: Matrix,
}

/// The device model GRAPE optimizes against.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    n_qubits: usize,
    drift: Matrix,
    controls: Vec<ControlChannel>,
    max_amplitude: f64,
    dt: f64,
}

impl DeviceModel {
    /// Standard transmon-like line-coupled model on `n` qubits.
    ///
    /// Parameters (rad/ns): detuning step `2π·0.01·q`, exchange coupling
    /// `2π·0.002` between adjacent qubits, drive amplitude bound
    /// `2π·0.02`, slot width 2 ns.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnsupportedWidth`] if `n == 0` or
    /// `n > `[`MAX_MODEL_QUBITS`] — the simulator and GRAPE share the same
    /// dense ceiling and must fail gracefully rather than panic.
    pub fn transmon_line(n: usize) -> Result<Self, DeviceError> {
        if n == 0 || n > MAX_MODEL_QUBITS {
            return Err(DeviceError::UnsupportedWidth {
                n_qubits: n,
                max: MAX_MODEL_QUBITS,
            });
        }
        let dim = 1usize << n;
        let z = Gate::Z.unitary_matrix();
        let x = Gate::X.unitary_matrix();
        let y = Gate::Y.unitary_matrix();

        let mut drift = Matrix::zeros(dim, dim);
        for q in 0..n {
            let delta = 2.0 * PI * 0.01 * q as f64;
            if delta != 0.0 {
                drift += &z.embed(&[q], n).scale_re(delta / 2.0);
            }
        }
        let g = 2.0 * PI * 0.002;
        for q in 0..n.saturating_sub(1) {
            let xx = x.embed(&[q], n).matmul(&x.embed(&[q + 1], n));
            let yy = y.embed(&[q], n).matmul(&y.embed(&[q + 1], n));
            drift += &(&xx + &yy).scale_re(g / 2.0);
        }

        let mut controls = Vec::with_capacity(2 * n);
        for q in 0..n {
            controls.push(ControlChannel {
                label: format!("X{q}"),
                hamiltonian: x.embed(&[q], n).scale_re(0.5),
            });
            controls.push(ControlChannel {
                label: format!("Y{q}"),
                hamiltonian: y.embed(&[q], n).scale_re(0.5),
            });
        }
        Ok(Self {
            n_qubits: n,
            drift,
            controls,
            max_amplitude: 2.0 * PI * 0.02,
            dt: 2.0,
        })
    }

    /// Builds a custom model.
    ///
    /// # Panics
    ///
    /// Panics if the drift is not Hermitian/square, a control is not
    /// Hermitian, dimensions mismatch, or `dt`/`max_amplitude` are not
    /// positive.
    pub fn new(
        n_qubits: usize,
        drift: Matrix,
        controls: Vec<ControlChannel>,
        max_amplitude: f64,
        dt: f64,
    ) -> Self {
        let dim = 1usize << n_qubits;
        assert_eq!(drift.rows(), dim, "drift dimension mismatch");
        assert!(drift.is_hermitian(1e-9), "drift must be Hermitian");
        for c in &controls {
            assert_eq!(c.hamiltonian.rows(), dim, "control dimension mismatch");
            assert!(c.hamiltonian.is_hermitian(1e-9), "controls must be Hermitian");
        }
        assert!(max_amplitude > 0.0, "amplitude bound must be positive");
        assert!(dt > 0.0, "dt must be positive");
        Self {
            n_qubits,
            drift,
            controls,
            max_amplitude,
            dt,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        1 << self.n_qubits
    }

    /// The drift Hamiltonian.
    pub fn drift(&self) -> &Matrix {
        &self.drift
    }

    /// The control channels.
    pub fn controls(&self) -> &[ControlChannel] {
        &self.controls
    }

    /// Drive amplitude bound (rad/ns).
    pub fn max_amplitude(&self) -> f64 {
        self.max_amplitude
    }

    /// GRAPE slot width (ns).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Total Hamiltonian at the given control amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len()` differs from the channel count.
    pub fn hamiltonian(&self, amplitudes: &[f64]) -> Matrix {
        let mut h = Matrix::zeros(0, 0);
        self.hamiltonian_into(amplitudes, &mut h);
        h
    }

    /// Total Hamiltonian at the given control amplitudes, written into
    /// `out` (allocation reused — the GRAPE iteration loop rebuilds a slot
    /// Hamiltonian every pass).
    ///
    /// # Panics
    ///
    /// Panics if `amplitudes.len()` differs from the channel count.
    pub fn hamiltonian_into(&self, amplitudes: &[f64], out: &mut Matrix) {
        assert_eq!(
            amplitudes.len(),
            self.controls.len(),
            "amplitude count mismatch"
        );
        out.copy_from(&self.drift);
        for (c, &a) in self.controls.iter().zip(amplitudes) {
            if a != 0.0 {
                for (o, h) in out.as_mut_slice().iter_mut().zip(c.hamiltonian.as_slice()) {
                    *o = epoc_linalg::c64(o.re + h.re * a, o.im + h.im * a);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmon_line_shapes() {
        for n in 1..=3 {
            let d = DeviceModel::transmon_line(n).unwrap();
            assert_eq!(d.n_qubits(), n);
            assert_eq!(d.dim(), 1 << n);
            assert_eq!(d.controls().len(), 2 * n);
            assert!(d.drift().is_hermitian(1e-12));
            for c in d.controls() {
                assert!(c.hamiltonian.is_hermitian(1e-12));
            }
        }
    }

    #[test]
    fn hamiltonian_combines_channels() {
        let d = DeviceModel::transmon_line(1).unwrap();
        let h = d.hamiltonian(&[0.3, 0.0]);
        // H = drift + 0.3·X/2: check the off-diagonal.
        assert!((h[(0, 1)].re - 0.15).abs() < 1e-12);
        assert!(h.is_hermitian(1e-12));
    }

    #[test]
    fn single_qubit_drift_is_zero_detuning() {
        // Qubit 0 has zero detuning by construction.
        let d = DeviceModel::transmon_line(1).unwrap();
        assert!(d.drift().frobenius_norm() < 1e-12);
    }

    #[test]
    fn coupling_present_for_two_qubits() {
        let d = DeviceModel::transmon_line(2).unwrap();
        assert!(d.drift().frobenius_norm() > 1e-6);
    }

    #[test]
    fn rejects_out_of_range_widths() {
        for n in [0, 7, 9] {
            let err = DeviceModel::transmon_line(n).unwrap_err();
            assert_eq!(
                err,
                DeviceError::UnsupportedWidth {
                    n_qubits: n,
                    max: MAX_MODEL_QUBITS
                }
            );
            assert!(err.to_string().contains("1..=6"), "message: {err}");
        }
    }

    #[test]
    #[should_panic(expected = "Hermitian")]
    fn custom_model_validates_drift() {
        let mut bad = Matrix::zeros(2, 2);
        bad[(0, 1)] = epoc_linalg::c64(1.0, 0.0);
        DeviceModel::new(1, bad, vec![], 1.0, 1.0);
    }
}

//! Minimal-duration pulse search (the AccQOC/PAQOC binary-search protocol).
//!
//! For a target unitary, find the smallest slot count whose GRAPE run
//! reaches the fidelity threshold: grow the upper bound geometrically
//! until GRAPE succeeds, then binary-search the success boundary.

use crate::device::DeviceModel;
use crate::grape::{grape_with_cancel, GrapeConfig, GrapeError, GrapeResult};
use epoc_linalg::Matrix;
use epoc_rt::cancel::CancelScope;

/// How the GRAPE backend escalates when a duration search comes back
/// below the fidelity threshold. Each escalation is one recovery-ladder
/// rung: restarts with perturbed seeds first, then a larger slot cap,
/// then (unless `strict`) a digital fallback handled by the synthesizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrapeRecoveryPolicy {
    /// Restart-escalation rungs: each doubles the GRAPE restart count and
    /// perturbs the seed before re-running the search.
    pub restart_escalations: usize,
    /// Slot-escalation rungs: each doubles the slot cap (longer pulses).
    pub slot_escalations: usize,
    /// Fail with a typed error instead of degrading to the digital
    /// fallback when every escalation rung is exhausted.
    pub strict: bool,
}

impl Default for GrapeRecoveryPolicy {
    fn default() -> Self {
        Self {
            restart_escalations: 1,
            slot_escalations: 1,
            strict: false,
        }
    }
}

/// Configuration for the duration search.
#[derive(Debug, Clone, PartialEq)]
pub struct DurationSearchConfig {
    /// Pulse fidelity that counts as success.
    pub fidelity_threshold: f64,
    /// Initial slot-count guess.
    pub initial_slots: usize,
    /// Hard cap on slots (safety bound for unreachable targets).
    pub max_slots: usize,
    /// GRAPE settings for each probe.
    pub grape: GrapeConfig,
    /// Escalation ladder applied by the synthesizer when the search fails.
    pub recovery: GrapeRecoveryPolicy,
}

impl Default for DurationSearchConfig {
    fn default() -> Self {
        Self {
            fidelity_threshold: 0.999,
            initial_slots: 8,
            max_slots: 512,
            grape: GrapeConfig::default(),
            recovery: GrapeRecoveryPolicy::default(),
        }
    }
}

/// A pulse found by the duration search.
#[derive(Debug, Clone)]
pub struct PulseSolution {
    /// The successful GRAPE run at the minimal slot count found.
    pub result: GrapeResult,
    /// Slot count of the solution.
    pub n_slots: usize,
    /// Total GRAPE probes spent.
    pub probes: usize,
    /// GRAPE iterations spent across every probe of the search (including
    /// failed probes and discarded restarts).
    pub total_iterations: usize,
}

/// Error from [`minimize_duration`].
#[derive(Debug, Clone, PartialEq)]
pub struct SearchDurationError {
    /// Best fidelity reached at the slot cap.
    pub best_fidelity: f64,
    /// The slot cap that was tried.
    pub max_slots: usize,
    /// GRAPE probes spent before giving up.
    pub probes: usize,
    /// GRAPE iterations spent across every probe before giving up.
    pub total_iterations: usize,
}

impl std::fmt::Display for SearchDurationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no pulse reached the fidelity threshold within {} slots (best {:.6})",
            self.max_slots, self.best_fidelity
        )
    }
}

impl std::error::Error for SearchDurationError {}

/// Error from [`minimize_duration`].
#[derive(Debug, Clone, PartialEq)]
pub enum DurationError {
    /// No slot count up to the cap reached the fidelity threshold — a
    /// *soft* failure the recovery ladder can escalate.
    Unconverged(SearchDurationError),
    /// A GRAPE probe failed outright (bad inputs or numerical breakdown)
    /// — a *hard* failure escalation cannot fix.
    Grape(GrapeError),
}

impl std::fmt::Display for DurationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unconverged(e) => e.fmt(f),
            Self::Grape(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DurationError {}

impl From<GrapeError> for DurationError {
    fn from(e: GrapeError) -> Self {
        Self::Grape(e)
    }
}

/// Finds a (near-)minimal-duration pulse implementing `target`.
///
/// # Errors
///
/// Returns [`DurationError::Unconverged`] when even `max_slots` slots
/// cannot reach the fidelity threshold, and [`DurationError::Grape`] when
/// a probe fails outright.
pub fn minimize_duration(
    device: &DeviceModel,
    target: &Matrix,
    config: &DurationSearchConfig,
) -> Result<PulseSolution, DurationError> {
    minimize_duration_with_cancel(device, target, config, &CancelScope::none())
}

/// [`minimize_duration`] with a cooperative-cancellation scope threaded
/// into every GRAPE probe. The scope's budget spans the *whole* search
/// (all probes share one counter), so a budgeted search degrades exactly
/// once per block regardless of worker count or probe order.
///
/// # Errors
///
/// All of [`minimize_duration`]'s errors; a hard cancel surfaces as
/// [`DurationError::Grape`] wrapping [`GrapeError::Canceled`].
pub fn minimize_duration_with_cancel(
    device: &DeviceModel,
    target: &Matrix,
    config: &DurationSearchConfig,
    cancel: &CancelScope,
) -> Result<PulseSolution, DurationError> {
    let _span = epoc_rt::telemetry::span("qoc", "duration_search");
    let mut probes = 0usize;
    let mut total_iterations = 0usize;
    let run =
        |slots: usize, probes: &mut usize, iters: &mut usize| -> Result<GrapeResult, GrapeError> {
            *probes += 1;
            epoc_rt::telemetry::counter_add("grape.probes", 1);
            let r = grape_with_cancel(device, target, slots, &config.grape, cancel)?;
            *iters += r.total_iterations;
            Ok(r)
        };
    // Phase 1: geometric growth until success.
    let mut hi = config.initial_slots.max(1);
    let mut hi_result;
    loop {
        let r = run(hi, &mut probes, &mut total_iterations)?;
        if r.fidelity >= config.fidelity_threshold {
            hi_result = r;
            break;
        }
        if hi >= config.max_slots {
            return Err(DurationError::Unconverged(SearchDurationError {
                best_fidelity: r.fidelity,
                max_slots: config.max_slots,
                probes,
                total_iterations,
            }));
        }
        hi = (hi * 2).min(config.max_slots);
    }
    // Phase 2: binary search the boundary in (lo_fail, hi_success].
    let mut lo = hi / 2; // last known-failing count (or 0)
    let mut best_slots = hi;
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        let r = run(mid, &mut probes, &mut total_iterations)?;
        if r.fidelity >= config.fidelity_threshold {
            hi = mid;
            best_slots = mid;
            hi_result = r;
        } else {
            lo = mid;
        }
    }
    Ok(PulseSolution {
        result: hi_result,
        n_slots: best_slots,
        probes,
        total_iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;

    #[test]
    fn finds_minimal_x_duration() {
        let d = DeviceModel::transmon_line(1).unwrap();
        let sol = minimize_duration(
            &d,
            &Gate::X.unitary_matrix(),
            &DurationSearchConfig {
                initial_slots: 4,
                ..Default::default()
            },
        )
        .expect("X is reachable");
        // Analytic minimum: π / a_max = 25 ns = 12.5 slots → ≥ 13 slots.
        assert!(sol.n_slots >= 12, "too short: {}", sol.n_slots);
        assert!(sol.n_slots <= 20, "binary search missed: {}", sol.n_slots);
        assert!(sol.result.fidelity >= 0.999);
        assert!(sol.probes >= 3);
    }

    #[test]
    fn identity_needs_minimal_slots() {
        let d = DeviceModel::transmon_line(1).unwrap();
        let sol = minimize_duration(
            &d,
            &Matrix::identity(2),
            &DurationSearchConfig {
                initial_slots: 2,
                ..Default::default()
            },
        )
        .expect("identity is trivially reachable");
        assert!(sol.n_slots <= 2);
    }

    #[test]
    fn unreachable_target_errors() {
        let d = DeviceModel::transmon_line(1).unwrap();
        let err = minimize_duration(
            &d,
            &Gate::X.unitary_matrix(),
            &DurationSearchConfig {
                initial_slots: 1,
                max_slots: 4, // 8 ns < 25 ns minimum
                ..Default::default()
            },
        )
        .unwrap_err();
        let DurationError::Unconverged(err) = err else {
            panic!("expected a soft non-convergence, got {err}");
        };
        assert!(err.best_fidelity < 0.999);
        assert_eq!(err.max_slots, 4);
    }

    #[test]
    fn rz_cheap_z_rotations() {
        // Z rotations only need drive time proportional to angle via
        // X/Y composite; still reachable.
        let d = DeviceModel::transmon_line(1).unwrap();
        let sol = minimize_duration(
            &d,
            &Gate::S.unitary_matrix(),
            &DurationSearchConfig::default(),
        )
        .expect("S reachable");
        assert!(sol.result.fidelity >= 0.999);
    }
}

//! GRAPE — gradient ascent pulse engineering.
//!
//! Piecewise-constant controls over `n_slots` time slots of width
//! `device.dt()`. Each slot's propagator is `exp(-i·dt·H(u))` computed
//! exactly through the Hermitian eigendecomposition, and the gradient of
//! the phase-invariant fidelity uses the exact Fréchet derivative of the
//! matrix exponential in that eigenbasis (Khaneja et al. 2005, with the
//! exact rather than first-order propagator derivative). A first-order
//! gradient mode is kept for the ablation study.

use crate::device::DeviceModel;
use epoc_linalg::{c64, eigh, Complex64, Matrix};
use epoc_rt::rng::Rng;

/// Gradient flavor for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradientMode {
    /// Exact propagator derivative in the eigenbasis (default).
    Exact,
    /// The original GRAPE first-order approximation `dU ≈ −i·dt·H_j·U`.
    FirstOrder,
}

/// GRAPE optimizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GrapeConfig {
    /// Maximum Adam iterations.
    pub max_iters: usize,
    /// Target infidelity: stop when `1 − F` drops below this.
    pub infidelity_threshold: f64,
    /// Initial learning rate (amplitude units per step).
    pub learning_rate: f64,
    /// Gradient flavor.
    pub gradient: GradientMode,
    /// RNG seed for the initial controls.
    pub seed: u64,
    /// Random restarts.
    pub restarts: usize,
}

impl Default for GrapeConfig {
    fn default() -> Self {
        Self {
            max_iters: 300,
            infidelity_threshold: 1e-4,
            learning_rate: 0.02,
            gradient: GradientMode::Exact,
            seed: 0x6A7E,
            restarts: 2,
        }
    }
}

/// The outcome of a GRAPE run.
#[derive(Debug, Clone)]
pub struct GrapeResult {
    /// Optimized controls: `controls[channel][slot]` in rad/ns.
    pub controls: Vec<Vec<f64>>,
    /// Phase-invariant gate fidelity `|Tr(U_target†·U)|/d` achieved.
    pub fidelity: f64,
    /// Total pulse duration in ns (`n_slots · dt`).
    pub duration: f64,
    /// Iterations consumed (across the best restart).
    pub iterations: usize,
    /// The realized propagator.
    pub unitary: Matrix,
}

/// Runs GRAPE to implement `target` on `device` within `n_slots` slots.
///
/// # Panics
///
/// Panics if `target` has the wrong dimension or `n_slots == 0`.
pub fn grape(
    device: &DeviceModel,
    target: &Matrix,
    n_slots: usize,
    config: &GrapeConfig,
) -> GrapeResult {
    assert!(n_slots > 0, "need at least one time slot");
    assert_eq!(target.rows(), device.dim(), "target dimension mismatch");
    let n_ctrl = device.controls().len();
    let dt = device.dt();
    let dim = device.dim() as f64;
    let a_max = device.max_amplitude();

    use epoc_rt::rng::StdRng;
    let mut best: Option<(Vec<Vec<f64>>, f64, usize)> = None;

    for restart in 0..config.restarts.max(1) {
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
        // Smooth random initialization well inside the bounds.
        let mut u: Vec<Vec<f64>> = (0..n_ctrl)
            .map(|_| {
                (0..n_slots)
                    .map(|_| (rng.gen_f64() - 0.5) * a_max)
                    .collect()
            })
            .collect();
        let mut m = vec![vec![0.0f64; n_slots]; n_ctrl];
        let mut v = vec![vec![0.0f64; n_slots]; n_ctrl];
        let (b1, b2, eps) = (0.9, 0.999, 1e-10);
        let mut fidelity = 0.0;
        let mut iters_used = 0;
        for step in 1..=config.max_iters {
            iters_used = step;
            let (f, grad) = fidelity_and_gradient(device, target, &u, config.gradient);
            fidelity = f;
            if 1.0 - f < config.infidelity_threshold {
                break;
            }
            for j in 0..n_ctrl {
                for s in 0..n_slots {
                    // Ascent on fidelity.
                    let g = grad[j][s] / dim;
                    m[j][s] = b1 * m[j][s] + (1.0 - b1) * g;
                    v[j][s] = b2 * v[j][s] + (1.0 - b2) * g * g;
                    let mh = m[j][s] / (1.0 - b1.powi(step as i32));
                    let vh = v[j][s] / (1.0 - b2.powi(step as i32));
                    u[j][s] += config.learning_rate * mh / (vh.sqrt() + eps);
                    u[j][s] = u[j][s].clamp(-a_max, a_max);
                }
            }
        }
        let better = match &best {
            None => true,
            Some((_, bf, _)) => fidelity > *bf,
        };
        if better {
            best = Some((u, fidelity, iters_used));
            if 1.0 - fidelity < config.infidelity_threshold {
                break;
            }
        }
    }
    let (controls, fidelity, iterations) = best.expect("at least one restart ran");
    let unitary = propagate(device, &controls);
    GrapeResult {
        controls,
        fidelity,
        duration: n_slots as f64 * dt,
        iterations,
        unitary,
    }
}

/// Total propagator for the given piecewise-constant controls.
pub fn propagate(device: &DeviceModel, controls: &[Vec<f64>]) -> Matrix {
    let n_slots = controls.first().map_or(0, Vec::len);
    let mut u = Matrix::identity(device.dim());
    for s in 0..n_slots {
        let amps: Vec<f64> = controls.iter().map(|c| c[s]).collect();
        let h = device.hamiltonian(&amps);
        let (us, _) = epoc_linalg::expm_hermitian_propagator(&h, device.dt())
            .expect("device Hamiltonians are Hermitian");
        u = us.matmul(&u);
    }
    u
}

/// Phase-invariant fidelity `|Tr(A†U)|/d` and its gradient w.r.t. every
/// control amplitude.
fn fidelity_and_gradient(
    device: &DeviceModel,
    target: &Matrix,
    controls: &[Vec<f64>],
    mode: GradientMode,
) -> (f64, Vec<Vec<f64>>) {
    let n_ctrl = controls.len();
    let n_slots = controls[0].len();
    let dt = device.dt();
    let dim = device.dim();

    // Slot propagators and eigensystems.
    let mut slot_props: Vec<Matrix> = Vec::with_capacity(n_slots);
    let mut eigs = Vec::with_capacity(n_slots);
    for s in 0..n_slots {
        let amps: Vec<f64> = controls.iter().map(|c| c[s]).collect();
        let h = device.hamiltonian(&amps);
        let e = eigh(&h).expect("Hermitian");
        let us = e.map(|l| Complex64::cis(-l * dt));
        slot_props.push(us);
        eigs.push(e);
    }
    // prefix[s] = U_{s-1}···U_0 (prefix[0] = I)
    let mut prefix = Vec::with_capacity(n_slots + 1);
    prefix.push(Matrix::identity(dim));
    for p in &slot_props {
        let last = prefix.last().expect("non-empty");
        prefix.push(p.matmul(last));
    }
    // suffix[s] = U_{last}···U_{s+1}
    let mut suffix = vec![Matrix::identity(dim); n_slots + 1];
    for s in (0..n_slots).rev() {
        suffix[s] = suffix[s + 1].matmul(&slot_props[s]);
    }
    let total = &prefix[n_slots];
    let adag = target.dagger();
    let f_complex = adag.matmul(total).trace();
    let fabs = f_complex.abs().max(1e-300);
    let fidelity = fabs / dim as f64;

    let mut grad = vec![vec![0.0f64; n_slots]; n_ctrl];
    for s in 0..n_slots {
        // For each channel: derivative of the slot propagator.
        for (j, channel) in device.controls().iter().enumerate() {
            let du = match mode {
                GradientMode::Exact => {
                    let e = &eigs[s];
                    let vdag = e.vectors.dagger();
                    let hj_eig = vdag.matmul(&channel.hamiltonian).matmul(&e.vectors);
                    let n = dim;
                    let mut core = Matrix::zeros(n, n);
                    for a in 0..n {
                        for b in 0..n {
                            let la = e.values[a];
                            let lb = e.values[b];
                            let phi = if (la - lb).abs() < 1e-10 {
                                // f'(λ) with f = e^{-i dt λ}
                                Complex64::cis(-la * dt) * c64(0.0, -dt)
                            } else {
                                (Complex64::cis(-la * dt) - Complex64::cis(-lb * dt))
                                    / c64(la - lb, 0.0)
                            };
                            core[(a, b)] = hj_eig[(a, b)] * phi;
                        }
                    }
                    e.vectors.matmul(&core).matmul(&vdag)
                }
                GradientMode::FirstOrder => channel
                    .hamiltonian
                    .matmul(&slot_props[s])
                    .scale(c64(0.0, -dt)),
            };
            // dF/du = Re(conj(f)·Tr(A† · suffix · dU · prefix)) / |f|
            let m = adag.matmul(&suffix[s + 1]).matmul(&du).matmul(&prefix[s]);
            let df = m.trace();
            grad[j][s] = (f_complex.conj() * df).re / fabs;
        }
    }
    (fidelity, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;
    use epoc_linalg::phase_invariant_fidelity;

    fn device1() -> DeviceModel {
        DeviceModel::transmon_line(1)
    }

    #[test]
    fn propagate_zero_controls_single_qubit() {
        let d = device1();
        let u = propagate(&d, &vec![vec![0.0; 5]; 2]);
        // Qubit 0 has no detuning: free evolution is identity.
        assert!(u.approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let d = device1();
        let target = Gate::X.unitary_matrix();
        let controls = vec![vec![0.05, -0.02, 0.04], vec![0.01, 0.03, -0.05]];
        let (f0, grad) = fidelity_and_gradient(&d, &target, &controls, GradientMode::Exact);
        let h = 1e-7;
        for j in 0..2 {
            for s in 0..3 {
                let mut c2 = controls.clone();
                c2[j][s] += h;
                let (f1, _) = fidelity_and_gradient(&d, &target, &c2, GradientMode::Exact);
                let dim = 2.0;
                let fd = (f1 - f0) / h * dim; // fidelity_and_gradient returns |f|/d but grad of |f|
                let an = grad[j][s];
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "({j},{s}): fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn grape_reaches_x_gate() {
        let d = device1();
        let target = Gate::X.unitary_matrix();
        // π rotation at max amp 0.1257 rad/ns on X/2 → ≥ 50ns; 30 slots × 2ns = 60ns.
        let r = grape(&d, &target, 30, &GrapeConfig::default());
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
        assert!(
            phase_invariant_fidelity(&r.unitary, &target) > 0.999,
            "realized unitary mismatch"
        );
        // Controls respect bounds.
        for ch in &r.controls {
            for &a in ch {
                assert!(a.abs() <= d.max_amplitude() + 1e-12);
            }
        }
    }

    #[test]
    fn grape_reaches_hadamard() {
        let d = device1();
        let r = grape(&d, &Gate::H.unitary_matrix(), 30, &GrapeConfig::default());
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
    }

    #[test]
    fn grape_fails_when_too_short() {
        let d = device1();
        // 2 slots × 2ns at amp 0.1257: max angle 0.5 rad — X is unreachable.
        let r = grape(&d, &Gate::X.unitary_matrix(), 2, &GrapeConfig::default());
        assert!(r.fidelity < 0.9, "unexpectedly high fidelity {}", r.fidelity);
    }

    #[test]
    fn grape_two_qubit_identity_is_easy() {
        let d = DeviceModel::transmon_line(2);
        // The always-on coupling must be echoed away, which needs time:
        // 40 slots (80 ns) suffice to refocus it; 20 do not.
        let r = grape(
            &d,
            &Matrix::identity(4),
            40,
            &GrapeConfig {
                max_iters: 400,
                learning_rate: 0.01,
                ..Default::default()
            },
        );
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
    }

    #[test]
    fn first_order_gradient_also_converges() {
        let d = device1();
        let r = grape(
            &d,
            &Gate::Sx.unitary_matrix(),
            20,
            &GrapeConfig {
                gradient: GradientMode::FirstOrder,
                ..Default::default()
            },
        );
        assert!(r.fidelity > 0.99, "fidelity {}", r.fidelity);
    }

    #[test]
    fn duration_reported() {
        let d = device1();
        let r = grape(&d, &Matrix::identity(2), 7, &GrapeConfig::default());
        assert!((r.duration - 14.0).abs() < 1e-12);
    }
}

//! GRAPE — gradient ascent pulse engineering.
//!
//! Piecewise-constant controls over `n_slots` time slots of width
//! `device.dt()`. Each slot's propagator is `exp(-i·dt·H(u))` computed
//! exactly through the Hermitian eigendecomposition, and the gradient of
//! the phase-invariant fidelity uses the exact Fréchet derivative of the
//! matrix exponential in that eigenbasis (Khaneja et al. 2005, with the
//! exact rather than first-order propagator derivative). A first-order
//! gradient mode is kept for the ablation study.

use crate::device::DeviceModel;
use epoc_linalg::{c64, eigh_into, Complex64, HermitianEig, Matrix};
use epoc_rt::faults;
use epoc_rt::pool::parallel_for_mut;
use epoc_rt::rng::Rng;

/// A GRAPE failure. Bad inputs and numerical breakdowns are errors;
/// *not converging* is not — that is a low [`GrapeResult::fidelity`],
/// which the recovery ladder upstream knows how to escalate.
#[derive(Debug, Clone, PartialEq)]
pub enum GrapeError {
    /// `n_slots` was zero — there is no pulse to optimize.
    NoSlots,
    /// Target dimension does not match the device Hilbert space.
    DimensionMismatch {
        /// Rows of the target unitary.
        target: usize,
        /// Device Hilbert-space dimension.
        device: usize,
    },
    /// A numerical routine (eigendecomposition / propagator exponential)
    /// failed on a slot Hamiltonian.
    Numerical(String),
    /// The run was cancelled hard (explicit cancel or a wall-clock
    /// deadline). Unlike non-convergence this aborts the job: the
    /// recovery ladder must not retry past a deadline.
    Canceled(epoc_rt::cancel::CancelReason),
}

impl std::fmt::Display for GrapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoSlots => write!(f, "GRAPE needs at least one time slot"),
            Self::DimensionMismatch { target, device } => write!(
                f,
                "target dimension {target} does not match device dimension {device}"
            ),
            Self::Numerical(msg) => write!(f, "GRAPE numerical failure: {msg}"),
            Self::Canceled(reason) => write!(f, "GRAPE run {reason}"),
        }
    }
}

impl std::error::Error for GrapeError {}

/// Deterministic fingerprint of a matrix for fault-injection keys: the
/// same target draws the same injected fate at any worker count.
pub fn fault_fingerprint(m: &Matrix) -> u64 {
    let mut h = faults::mix(0, m.rows() as u64);
    for z in m.as_slice() {
        h = faults::mix(h, z.re.to_bits());
        h = faults::mix(h, z.im.to_bits());
    }
    h
}

/// Gradient flavor for the ablation bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradientMode {
    /// Exact propagator derivative in the eigenbasis (default).
    Exact,
    /// The original GRAPE first-order approximation `dU ≈ −i·dt·H_j·U`.
    FirstOrder,
}

/// GRAPE optimizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GrapeConfig {
    /// Maximum Adam iterations.
    pub max_iters: usize,
    /// Target infidelity: stop when `1 − F` drops below this.
    pub infidelity_threshold: f64,
    /// Initial learning rate (amplitude units per step).
    pub learning_rate: f64,
    /// Gradient flavor.
    pub gradient: GradientMode,
    /// RNG seed for the initial controls.
    pub seed: u64,
    /// Random restarts.
    pub restarts: usize,
    /// Worker threads for the per-slot phases (eigendecomposition /
    /// propagator and gradient evaluation). Every slot is independent and
    /// written to its own workspace entry, so results are bit-identical at
    /// any worker count. `1` (the default) runs on the calling thread.
    pub workers: usize,
    /// Reuse each slot's eigensystem (and derived propagator / Fréchet
    /// phase matrix) across iterations while that slot's control
    /// amplitudes are **bit-identical** to the previous evaluation, and
    /// hoist the drift-Hamiltonian eigendecomposition out of the
    /// iteration loop for all-zero slots. Because the cache key is exact
    /// (`f64::to_bits` equality) a hit replays exactly what recomputation
    /// would produce, so the optimization trajectory is bit-identical with
    /// the cache on or off. Default `true`; set `false` to force the
    /// always-recompute path.
    pub eig_cache: bool,
    /// Control-electronics model to optimize *under* (default `None` =
    /// ideal electronics). When set (and not an identity profile), each
    /// iteration evaluates the fidelity on the **conditioned** controls
    /// `C(u)` (slew-clip → quantize → filter → crosstalk, see `epoc-hw`)
    /// and pulls the gradient back through the straight-through
    /// estimator: the linear stages are transposed exactly, the
    /// quantizer and slew clip pass the gradient through unchanged. The
    /// returned [`GrapeResult::controls`] stay **raw** (conditioning is
    /// applied exactly once, at schedule emission); the returned
    /// fidelity and unitary are those of the conditioned pulse.
    pub hw: Option<epoc_hw::HardwareProfile>,
}

impl Default for GrapeConfig {
    fn default() -> Self {
        Self {
            max_iters: 300,
            infidelity_threshold: 1e-4,
            learning_rate: 0.02,
            gradient: GradientMode::Exact,
            seed: 0x6A7E,
            restarts: 2,
            workers: 1,
            eig_cache: true,
            hw: None,
        }
    }
}

/// Per-timeslot scratch owned by [`GrapeWorkspace`]. Each slot's buffers
/// are disjoint, which is what lets the per-slot phases run on a worker
/// crew without any cross-thread coordination beyond chunking.
struct SlotScratch {
    /// Gathered control column `u[·][s]` — doubles as the eigensystem
    /// cache key: when the incoming amplitudes are bit-identical to these,
    /// the bundle below is reused instead of recomputed. Initialized to
    /// `NaN` so a fresh slot can never spuriously hit.
    amps: Vec<f64>,
    /// `H(u_s)`, rebuilt in place on a cache miss.
    h: Matrix,
    /// Eigensystem of `h`. The eigensolver reuses these buffers in place;
    /// all downstream products reuse the buffers below.
    eig: HermitianEig,
    /// `V†` — hoisted once per slot and shared by the propagator build and
    /// the gradient back-conjugation.
    vdag: Matrix,
    /// Diagonal propagator phases `cis(-λ·dt)`.
    phases: Vec<Complex64>,
    /// Slot propagator `U_s = V·diag(phases)·V†`.
    prop: Matrix,
    /// General matrix scratch.
    t1: Matrix,
    t2: Matrix,
    /// Trace kernel `K = V†·(prefix_s·A†·suffix_{s+1})·V` (exact mode) or
    /// `Y = U_s·prefix_s·A†·suffix_{s+1}` (first-order mode).
    kern: Matrix,
    /// Exact-gradient Fréchet phase matrix, stored **transposed**
    /// (`phi[(b,a)] = φ(a,b)`) so the phase-2 Hadamard product reads it in
    /// `kern`'s layout. Part of the cached bundle: it depends only on the
    /// eigenvalues and `dt`.
    phi: Matrix,
    /// Whether `phi` matches the current eigensystem (it is skipped in
    /// first-order mode).
    phi_built: bool,
    /// Whether the cached bundle (eig/vdag/phases/prop/phi) is coherent
    /// with `amps`.
    cache_valid: bool,
    /// Gradient contributions of this slot, one entry per channel.
    grad: Vec<f64>,
    /// Set when this slot's eigendecomposition failed; checked after the
    /// parallel phase (the worker closure cannot early-return an error).
    failed: bool,
}

impl SlotScratch {
    fn new(dim: usize, n_ctrl: usize) -> Self {
        let zero = || Matrix::zeros(dim, dim);
        Self {
            amps: vec![f64::NAN; n_ctrl],
            h: zero(),
            eig: HermitianEig {
                values: Vec::new(),
                vectors: Matrix::zeros(0, 0),
            },
            vdag: zero(),
            phases: Vec::with_capacity(dim),
            prop: zero(),
            t1: zero(),
            t2: zero(),
            kern: zero(),
            phi: zero(),
            phi_built: false,
            cache_valid: false,
            grad: vec![0.0; n_ctrl],
            failed: false,
        }
    }

    /// Adopts another slot's computed bundle (used to seed all-zero slots
    /// from the hoisted drift eigendecomposition). The source bundle was
    /// produced by [`prepare_slot`] on identical amplitudes, so this copy
    /// is bit-identical to recomputing.
    fn copy_bundle_from(&mut self, src: &SlotScratch) {
        self.h.copy_from(&src.h);
        self.eig.values.clone_from(&src.eig.values);
        self.eig.vectors.clone_from(&src.eig.vectors);
        self.vdag.copy_from(&src.vdag);
        self.phases.clone_from(&src.phases);
        self.prop.copy_from(&src.prop);
        self.phi.copy_from(&src.phi);
        self.phi_built = src.phi_built;
        self.cache_valid = true;
        self.failed = false;
    }
}

/// Reusable buffers for the GRAPE iteration loop.
///
/// One workspace serves any number of iterations and restarts for a fixed
/// `(device, n_slots)` shape; after warm-up the loop performs no heap
/// allocation apart from the eigensolver's internal `O(dim²)` scratch.
pub struct GrapeWorkspace {
    slots: Vec<SlotScratch>,
    /// Drift-Hamiltonian bundle, computed once per [`grape`] run (outside
    /// the iteration loop) and adopted by any slot whose amplitudes are
    /// all exactly `+0.0`.
    drift: Option<Box<SlotScratch>>,
    /// `prefix[s] = U_{s-1}···U_0` (`prefix[0] = I`, never overwritten).
    prefix: Vec<Matrix>,
    /// `suffix[s] = U_{last}···U_s` (`suffix[n_slots] = I`, never
    /// overwritten).
    suffix: Vec<Matrix>,
    /// Flat gradient, channel-major: `grad[j * n_slots + s]`.
    grad: Vec<f64>,
}

impl GrapeWorkspace {
    /// Allocates buffers for a `(device, n_slots)` problem shape.
    pub fn new(device: &DeviceModel, n_slots: usize) -> Self {
        let dim = device.dim();
        let n_ctrl = device.controls().len();
        let zero = || Matrix::zeros(dim, dim);
        let slots = (0..n_slots).map(|_| SlotScratch::new(dim, n_ctrl)).collect();
        let mut prefix = vec![zero(); n_slots + 1];
        prefix[0] = Matrix::identity(dim);
        let mut suffix = vec![zero(); n_slots + 1];
        suffix[n_slots] = Matrix::identity(dim);
        Self {
            slots,
            drift: None,
            prefix,
            suffix,
            grad: vec![0.0; n_ctrl * n_slots],
        }
    }
}

/// The outcome of a GRAPE run.
#[derive(Debug, Clone)]
pub struct GrapeResult {
    /// Optimized controls: `controls[channel][slot]` in rad/ns.
    pub controls: Vec<Vec<f64>>,
    /// Phase-invariant gate fidelity `|Tr(U_target†·U)|/d` achieved.
    pub fidelity: f64,
    /// Total pulse duration in ns (`n_slots · dt`).
    pub duration: f64,
    /// Iterations consumed (across the best restart).
    pub iterations: usize,
    /// Iterations consumed across *all* restarts of this run (what a
    /// compile-time profile should charge the run with).
    pub total_iterations: usize,
    /// The realized propagator.
    pub unitary: Matrix,
}

/// Runs GRAPE to implement `target` on `device` within `n_slots` slots.
///
/// Non-convergence is *not* an error: the result simply carries a low
/// fidelity for the caller's recovery ladder to escalate.
///
/// # Errors
///
/// Returns [`GrapeError`] when `n_slots == 0`, the target dimension does
/// not match the device, or a per-slot numerical routine fails.
pub fn grape(
    device: &DeviceModel,
    target: &Matrix,
    n_slots: usize,
    config: &GrapeConfig,
) -> Result<GrapeResult, GrapeError> {
    grape_with_cancel(device, target, n_slots, config, &epoc_rt::cancel::CancelScope::none())
}

/// [`grape`] with a cooperative-cancellation scope: each Adam iteration
/// charges one unit against the scope's GRAPE budget and polls the hard
/// conditions (cancel flag, wall-clock deadline).
///
/// Budget exhaustion is *soft*: the loop stops with whatever fidelity it
/// has and the caller's recovery ladder degrades the block. Because the
/// budget is charged in iterations (work units), budgeted outcomes are
/// bit-identical at any worker count.
///
/// # Errors
///
/// All of [`grape`]'s errors, plus [`GrapeError::Canceled`] when the
/// scope's token is cancelled or past its deadline.
pub fn grape_with_cancel(
    device: &DeviceModel,
    target: &Matrix,
    n_slots: usize,
    config: &GrapeConfig,
    cancel: &epoc_rt::cancel::CancelScope,
) -> Result<GrapeResult, GrapeError> {
    let _span = epoc_rt::telemetry::span("qoc", "grape");
    if n_slots == 0 {
        return Err(GrapeError::NoSlots);
    }
    if target.rows() != device.dim() {
        return Err(GrapeError::DimensionMismatch {
            target: target.rows(),
            device: device.dim(),
        });
    }
    let n_ctrl = device.controls().len();
    let dt = device.dt();
    let dim = device.dim() as f64;
    let a_max = device.max_amplitude();

    // Fail point `grape.converge`: an injected non-convergence, keyed by
    // (target, slot count, seed) so the decision is a pure function of the
    // work item — identical at any worker count, and fresh for every rung
    // of the recovery ladder (escalations change the slot count or seed).
    if faults::is_armed() {
        let key = faults::mix(
            fault_fingerprint(target),
            faults::mix(n_slots as u64, config.seed),
        );
        if faults::fail_point_keyed("grape.converge", key) {
            return Ok(GrapeResult {
                controls: vec![vec![0.0; n_slots]; n_ctrl],
                fidelity: 0.0,
                duration: n_slots as f64 * dt,
                iterations: 0,
                total_iterations: 0,
                unitary: Matrix::identity(device.dim()),
            });
        }
    }

    use epoc_rt::rng::StdRng;
    let mut best: Option<(Vec<Vec<f64>>, f64, usize)> = None;
    let mut total_iterations = 0usize;
    let mut restarts_run = 0usize;
    // One workspace serves every iteration of every restart.
    let mut ws = GrapeWorkspace::new(device, n_slots);
    // Control-electronics model: when active, fidelity is evaluated on
    // the conditioned controls `C(u)` and the gradient is pulled back
    // through the straight-through estimator. Conditioning runs on the
    // calling thread (plain sequential f64 arithmetic), so the
    // worker-count bit-determinism guarantee is untouched.
    let hw_active = config.hw.as_ref().filter(|p| !p.is_identity());
    let mut hw_ws = epoc_hw::ConditionWorkspace::new();
    let mut uc: Vec<Vec<f64>> = match hw_active {
        Some(_) => vec![vec![0.0; n_slots]; n_ctrl],
        None => Vec::new(),
    };
    // Hoist the drift-Hamiltonian eigendecomposition out of the iteration
    // loop: it is computed once here, and every slot whose controls are
    // all exactly zero adopts the bundle instead of rediagonalizing.
    if config.eig_cache {
        let mut drift = SlotScratch::new(device.dim(), n_ctrl);
        for a in drift.amps.iter_mut() {
            *a = 0.0;
        }
        prepare_slot(&mut drift, device, dt, config.gradient == GradientMode::Exact);
        if !drift.failed {
            ws.drift = Some(Box::new(drift));
        }
    }
    let adag = target.dagger();

    for restart in 0..config.restarts.max(1) {
        restarts_run += 1;
        let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(restart as u64));
        // Smooth random initialization well inside the bounds.
        let mut u: Vec<Vec<f64>> = (0..n_ctrl)
            .map(|_| {
                (0..n_slots)
                    .map(|_| (rng.gen_f64() - 0.5) * a_max)
                    .collect()
            })
            .collect();
        let mut m = vec![vec![0.0f64; n_slots]; n_ctrl];
        let mut v = vec![vec![0.0f64; n_slots]; n_ctrl];
        let (b1, b2, eps) = (0.9, 0.999, 1e-10);
        let mut fidelity = 0.0;
        let mut iters_used = 0;
        for step in 1..=config.max_iters {
            // Cooperative cancellation: one budget unit per Adam step.
            // Exhaustion breaks softly (the ladder upstream degrades the
            // block); a raised flag or blown deadline aborts typed.
            if !cancel.spend_grape_iter().map_err(GrapeError::Canceled)? {
                break;
            }
            iters_used = step;
            let f = match hw_active {
                Some(profile) => {
                    for (dst, src) in uc.iter_mut().zip(&u) {
                        dst.copy_from_slice(src);
                    }
                    profile.condition_controls(dt, a_max, &mut uc, &mut hw_ws);
                    let f = fidelity_and_gradient(device, &adag, &uc, config, &mut ws)?;
                    // ∂F/∂(conditioned u) → ∂F/∂(raw u): transpose the
                    // linear stages, straight-through the rest.
                    profile.adjoint_grad(n_ctrl, n_slots, &mut ws.grad, &mut hw_ws);
                    f
                }
                None => fidelity_and_gradient(device, &adag, &u, config, &mut ws)?,
            };
            fidelity = f;
            if 1.0 - f < config.infidelity_threshold {
                break;
            }
            for j in 0..n_ctrl {
                for s in 0..n_slots {
                    // Ascent on fidelity.
                    let g = ws.grad[j * n_slots + s] / dim;
                    m[j][s] = b1 * m[j][s] + (1.0 - b1) * g;
                    v[j][s] = b2 * v[j][s] + (1.0 - b2) * g * g;
                    let mh = m[j][s] / (1.0 - b1.powi(step as i32));
                    let vh = v[j][s] / (1.0 - b2.powi(step as i32));
                    u[j][s] += config.learning_rate * mh / (vh.sqrt() + eps);
                    u[j][s] = u[j][s].clamp(-a_max, a_max);
                }
            }
        }
        total_iterations += iters_used;
        let better = match &best {
            None => true,
            Some((_, bf, _)) => fidelity > *bf,
        };
        if better {
            best = Some((u, fidelity, iters_used));
            if 1.0 - fidelity < config.infidelity_threshold {
                break;
            }
        }
    }
    epoc_rt::telemetry::counter_add("grape.iterations", total_iterations as u64);
    epoc_rt::telemetry::counter_add("grape.restarts", restarts_run as u64);
    epoc_rt::telemetry::histogram_record("grape.iters_per_run", total_iterations as u64);
    let (controls, fidelity, iterations) = match best {
        Some(b) => b,
        // `restarts.max(1)` guarantees at least one restart ran and set
        // `best`; reaching here means the loop body was skipped entirely.
        None => return Err(GrapeError::Numerical("no restart produced a result".into())),
    };
    // The realized propagator is that of the pulse the electronics will
    // actually play; the returned controls stay raw so conditioning is
    // applied exactly once (the filter is not idempotent).
    let unitary = match hw_active {
        Some(profile) => {
            let mut cond = controls.clone();
            profile.condition_controls(dt, a_max, &mut cond, &mut hw_ws);
            propagate(device, &cond)?
        }
        None => propagate(device, &controls)?,
    };
    Ok(GrapeResult {
        controls,
        fidelity,
        duration: n_slots as f64 * dt,
        iterations,
        total_iterations,
        unitary,
    })
}

/// Total propagator for the given piecewise-constant controls.
///
/// # Errors
///
/// Returns [`GrapeError::Numerical`] if a slot propagator exponential
/// fails.
pub fn propagate(device: &DeviceModel, controls: &[Vec<f64>]) -> Result<Matrix, GrapeError> {
    let n_slots = controls.first().map_or(0, Vec::len);
    let mut u = Matrix::identity(device.dim());
    for s in 0..n_slots {
        let amps: Vec<f64> = controls.iter().map(|c| c[s]).collect();
        let h = device.hamiltonian(&amps);
        let (us, _) = epoc_linalg::expm_hermitian_propagator(&h, device.dt())
            .map_err(|e| GrapeError::Numerical(format!("slot {s} propagator: {e}")))?;
        u = us.matmul(&u);
    }
    Ok(u)
}

/// Computes a slot's eigensystem bundle from `slot.amps`: `H(u)` → its
/// eigensystem → `V†` → the propagator phases and `U_s = V·diag·V†` — and,
/// when `needs_phi`, the exact-gradient Fréchet phase matrix `φ`. Marks the
/// bundle cache-coherent on success.
fn prepare_slot(slot: &mut SlotScratch, device: &DeviceModel, dt: f64, needs_phi: bool) {
    let dim = device.dim();
    device.hamiltonian_into(&slot.amps, &mut slot.h);
    if eigh_into(&slot.h, &mut slot.eig).is_err() {
        slot.failed = true;
        slot.cache_valid = false;
        return;
    }
    slot.failed = false;
    slot.eig.vectors.dagger_into(&mut slot.vdag);
    slot.phases.clear();
    slot.phases
        .extend(slot.eig.values.iter().map(|&l| Complex64::cis(-l * dt)));
    // U_s = V·diag(phases)·V†: scale V's columns, then one product.
    slot.t1.copy_from(&slot.eig.vectors);
    for row in slot.t1.as_mut_slice().chunks_exact_mut(dim) {
        for (z, ph) in row.iter_mut().zip(&slot.phases) {
            *z *= *ph;
        }
    }
    slot.t1.matmul_into(&slot.vdag, &mut slot.prop);
    if needs_phi {
        // Divided-difference phases of the exact propagator derivative,
        // stored transposed (`phi[(b,a)] = φ(a,b)`) for phase 2.
        for a in 0..dim {
            let la = slot.eig.values[a];
            for b in 0..dim {
                let lb = slot.eig.values[b];
                slot.phi[(b, a)] = if (la - lb).abs() < 1e-10 {
                    // f'(λ) with f = e^{-i dt λ}
                    slot.phases[a] * c64(0.0, -dt)
                } else {
                    (slot.phases[a] - slot.phases[b]) / c64(la - lb, 0.0)
                };
            }
        }
    }
    slot.phi_built = needs_phi;
    slot.cache_valid = true;
}

/// Phase-invariant fidelity `|Tr(A†U)|/d`, with the gradient w.r.t. every
/// control amplitude written into `ws.grad` (channel-major).
///
/// In exact mode the gradient pulls the whole contraction back into the
/// lab frame: with trace kernel `K = V†·W·V` and `Q = V·(φᵀ∘K)·V†`, each
/// channel reduces to `df_j = Σ_{x,y} H_j[x,y]·Q[y,x]` — the per-channel
/// conjugation `V†·H_j·V` of the previous scheme is hoisted out of the
/// channel loop entirely (a fixed four products per slot regardless of
/// channel count). All per-slot work runs on `config.workers` threads over
/// disjoint [`SlotScratch`] entries; the serial prefix/suffix sweep and
/// input-order merge keep every value bit-identical at any worker count.
fn fidelity_and_gradient(
    device: &DeviceModel,
    adag: &Matrix,
    controls: &[Vec<f64>],
    config: &GrapeConfig,
    ws: &mut GrapeWorkspace,
) -> Result<f64, GrapeError> {
    let n_slots = controls[0].len();
    let dt = device.dt();
    let dim = device.dim();
    let channels = device.controls();
    let mode = config.gradient;

    // Per-slot eigensystems and propagators (parallel, disjoint slots).
    // A slot whose amplitudes are bit-identical to its previous evaluation
    // keeps its cached bundle (common once Adam saturates amplitudes at
    // the clamp); an all-zero slot adopts the hoisted drift bundle.
    let needs_phi = mode == GradientMode::Exact;
    let use_cache = config.eig_cache;
    let GrapeWorkspace { slots, drift, .. } = ws;
    let drift = drift.as_deref();
    parallel_for_mut(slots, config.workers, |s, slot| {
        let hit = use_cache
            && slot.cache_valid
            && (!needs_phi || slot.phi_built)
            && slot
                .amps
                .iter()
                .zip(controls)
                .all(|(a, c)| a.to_bits() == c[s].to_bits());
        if hit {
            slot.failed = false;
            return;
        }
        for (a, c) in slot.amps.iter_mut().zip(controls) {
            *a = c[s];
        }
        if use_cache && slot.amps.iter().all(|a| a.to_bits() == 0.0f64.to_bits()) {
            if let Some(d) = drift {
                if !needs_phi || d.phi_built {
                    slot.copy_bundle_from(d);
                    return;
                }
            }
        }
        prepare_slot(slot, device, dt, needs_phi);
    });
    if let Some(s) = ws.slots.iter().position(|slot| slot.failed) {
        return Err(GrapeError::Numerical(format!(
            "eigendecomposition failed on slot {s}"
        )));
    }

    // Serial chain sweeps: prefix[s] = U_{s-1}···U_0, suffix[s] = U_last···U_s.
    for s in 0..n_slots {
        let (head, tail) = ws.prefix.split_at_mut(s + 1);
        ws.slots[s].prop.matmul_into(&head[s], &mut tail[0]);
    }
    for s in (0..n_slots).rev() {
        let (head, tail) = ws.suffix.split_at_mut(s + 1);
        tail[0].matmul_into(&ws.slots[s].prop, &mut head[s]);
    }
    // f = Tr(A†·U_total), computed without materializing the product.
    let total = &ws.prefix[n_slots];
    let mut f_complex = Complex64::ZERO;
    for i in 0..dim {
        for k in 0..dim {
            f_complex += adag[(i, k)] * total[(k, i)];
        }
    }
    let fabs = f_complex.abs().max(1e-300);
    let fidelity = fabs / dim as f64;
    let f_conj = f_complex.conj();

    // Per-slot gradient (parallel, disjoint slots; prefix/suffix shared
    // read-only).
    let prefix = &ws.prefix;
    let suffix = &ws.suffix;
    parallel_for_mut(&mut ws.slots, config.workers, |s, slot| {
        // W = prefix[s]·A†·suffix[s+1]; df_j = Tr(W·dU_j).
        prefix[s].matmul_into(adag, &mut slot.t1);
        slot.t1.matmul_into(&suffix[s + 1], &mut slot.t2);
        match mode {
            GradientMode::Exact => {
                // K = V†·W·V, the trace kernel in the slot eigenbasis.
                slot.vdag.matmul_into(&slot.t2, &mut slot.t1);
                slot.t1.matmul_into(&slot.eig.vectors, &mut slot.kern);
                // dU_j = V·(φ∘(V†·H_j·V))·V† by the exact Fréchet
                // derivative; pulling the contraction back to the lab
                // frame with Q = V·(φᵀ∘K)·V† turns every channel into an
                // O(dim²) read-off — no per-channel conjugation.
                {
                    let SlotScratch { t1, kern, phi, .. } = slot;
                    for (m, (k, p)) in t1
                        .as_mut_slice()
                        .iter_mut()
                        .zip(kern.as_slice().iter().zip(phi.as_slice()))
                    {
                        *m = *k * *p;
                    }
                }
                slot.eig.vectors.matmul_into(&slot.t1, &mut slot.t2);
                slot.t2.matmul_into(&slot.vdag, &mut slot.kern); // kern ← Q
            }
            GradientMode::FirstOrder => {
                // dU_j = −i·dt·H_j·U_s ⇒ df_j = −i·dt·Tr(U_s·W·H_j):
                // kern = U_s·W.
                slot.prop.matmul_into(&slot.t2, &mut slot.kern);
            }
        }
        for (j, channel) in channels.iter().enumerate() {
            let df = match mode {
                GradientMode::Exact => {
                    // df_j = Σ_{x,y} H_j[x,y]·Q[y,x].
                    let hj = channel.hamiltonian.as_slice();
                    let q = slot.kern.as_slice();
                    let mut df = Complex64::ZERO;
                    for x in 0..dim {
                        for y in 0..dim {
                            df += hj[x * dim + y] * q[y * dim + x];
                        }
                    }
                    df
                }
                GradientMode::FirstOrder => {
                    // df = −i·dt·Σ_{a,b} (U_s·W)[a,b]·H_j[b,a].
                    let mut tr = Complex64::ZERO;
                    for a in 0..dim {
                        for b in 0..dim {
                            tr += slot.kern[(a, b)] * channel.hamiltonian[(b, a)];
                        }
                    }
                    tr * c64(0.0, -dt)
                }
            };
            slot.grad[j] = (f_conj * df).re / fabs;
        }
    });

    // Input-order merge of the per-slot gradients into the flat buffer.
    for (s, slot) in ws.slots.iter().enumerate() {
        for (j, &g) in slot.grad.iter().enumerate() {
            ws.grad[j * n_slots + s] = g;
        }
    }
    Ok(fidelity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;
    use epoc_linalg::phase_invariant_fidelity;

    fn device1() -> DeviceModel {
        DeviceModel::transmon_line(1).unwrap()
    }

    /// Test convenience: allocates a fresh workspace and returns the
    /// gradient in the old `[channel][slot]` shape.
    fn fidelity_and_gradient_alloc(
        device: &DeviceModel,
        target: &Matrix,
        controls: &[Vec<f64>],
        mode: GradientMode,
    ) -> (f64, Vec<Vec<f64>>) {
        let n_slots = controls[0].len();
        let mut ws = GrapeWorkspace::new(device, n_slots);
        let config = GrapeConfig {
            gradient: mode,
            ..Default::default()
        };
        let f = fidelity_and_gradient(device, &target.dagger(), controls, &config, &mut ws)
            .expect("gradient evaluation");
        let grad = (0..controls.len())
            .map(|j| ws.grad[j * n_slots..(j + 1) * n_slots].to_vec())
            .collect();
        (f, grad)
    }

    #[test]
    fn propagate_zero_controls_single_qubit() {
        let d = device1();
        let u = propagate(&d, &vec![vec![0.0; 5]; 2]).unwrap();
        // Qubit 0 has no detuning: free evolution is identity.
        assert!(u.approx_eq(&Matrix::identity(2), 1e-9));
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let d = device1();
        let target = Gate::X.unitary_matrix();
        let controls = vec![vec![0.05, -0.02, 0.04], vec![0.01, 0.03, -0.05]];
        let (f0, grad) = fidelity_and_gradient_alloc(&d, &target, &controls, GradientMode::Exact);
        let h = 1e-7;
        for j in 0..2 {
            for s in 0..3 {
                let mut c2 = controls.clone();
                c2[j][s] += h;
                let (f1, _) = fidelity_and_gradient_alloc(&d, &target, &c2, GradientMode::Exact);
                let dim = 2.0;
                let fd = (f1 - f0) / h * dim; // fidelity_and_gradient returns |f|/d but grad of |f|
                let an = grad[j][s];
                assert!(
                    (fd - an).abs() < 1e-4 * (1.0 + an.abs()),
                    "({j},{s}): fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn grape_reaches_x_gate() {
        let d = device1();
        let target = Gate::X.unitary_matrix();
        // π rotation at max amp 0.1257 rad/ns on X/2 → ≥ 50ns; 30 slots × 2ns = 60ns.
        let r = grape(&d, &target, 30, &GrapeConfig::default()).unwrap();
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
        assert!(
            phase_invariant_fidelity(&r.unitary, &target) > 0.999,
            "realized unitary mismatch"
        );
        // Controls respect bounds.
        for ch in &r.controls {
            for &a in ch {
                assert!(a.abs() <= d.max_amplitude() + 1e-12);
            }
        }
    }

    #[test]
    fn grape_reaches_hadamard() {
        let d = device1();
        let r = grape(&d, &Gate::H.unitary_matrix(), 30, &GrapeConfig::default()).unwrap();
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
    }

    #[test]
    fn grape_fails_when_too_short() {
        let d = device1();
        // 2 slots × 2ns at amp 0.1257: max angle 0.5 rad — X is unreachable.
        let r = grape(&d, &Gate::X.unitary_matrix(), 2, &GrapeConfig::default()).unwrap();
        assert!(r.fidelity < 0.9, "unexpectedly high fidelity {}", r.fidelity);
    }

    #[test]
    fn grape_two_qubit_identity_is_easy() {
        let d = DeviceModel::transmon_line(2).unwrap();
        // The always-on coupling must be echoed away, which needs time:
        // 40 slots (80 ns) suffice to refocus it; 20 do not.
        let r = grape(
            &d,
            &Matrix::identity(4),
            40,
            &GrapeConfig {
                max_iters: 400,
                learning_rate: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.fidelity > 0.999, "fidelity {}", r.fidelity);
    }

    #[test]
    fn first_order_gradient_also_converges() {
        let d = device1();
        let r = grape(
            &d,
            &Gate::Sx.unitary_matrix(),
            20,
            &GrapeConfig {
                gradient: GradientMode::FirstOrder,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.fidelity > 0.99, "fidelity {}", r.fidelity);
    }

    #[test]
    fn typed_errors_for_bad_inputs() {
        let d = device1();
        assert_eq!(
            grape(&d, &Gate::X.unitary_matrix(), 0, &GrapeConfig::default()).unwrap_err(),
            GrapeError::NoSlots
        );
        assert!(matches!(
            grape(&d, &Matrix::identity(4), 4, &GrapeConfig::default()).unwrap_err(),
            GrapeError::DimensionMismatch {
                target: 4,
                device: 2
            }
        ));
    }

    #[test]
    fn fault_fingerprint_distinguishes_targets() {
        let a = fault_fingerprint(&Gate::X.unitary_matrix());
        let b = fault_fingerprint(&Gate::H.unitary_matrix());
        assert_ne!(a, b);
        assert_eq!(a, fault_fingerprint(&Gate::X.unitary_matrix()));
    }

    #[test]
    fn duration_reported() {
        let d = device1();
        let r = grape(&d, &Matrix::identity(2), 7, &GrapeConfig::default()).unwrap();
        assert!((r.duration - 14.0).abs() < 1e-12);
    }

    #[test]
    fn first_order_gradient_matches_finite_difference() {
        let d = device1();
        let target = Gate::X.unitary_matrix();
        let controls = vec![vec![0.06, -0.03], vec![0.02, 0.05]];
        let (f0, grad) = fidelity_and_gradient_alloc(&d, &target, &controls, GradientMode::FirstOrder);
        // First-order is an approximation, but for small dt·H it should
        // track finite differences loosely.
        let h = 1e-6;
        for j in 0..2 {
            for s in 0..2 {
                let mut c2 = controls.clone();
                c2[j][s] += h;
                let (f1, _) =
                    fidelity_and_gradient_alloc(&d, &target, &c2, GradientMode::FirstOrder);
                let fd = (f1 - f0) / h * 2.0;
                let an = grad[j][s];
                assert!(
                    (fd - an).abs() < 0.05 * (1.0 + an.abs()),
                    "({j},{s}): fd {fd} vs analytic {an}"
                );
            }
        }
    }

    /// The per-slot phases run on a worker crew; the trajectory — every
    /// iterate, the final controls, the fidelity — must be bit-identical
    /// at any worker count (the pipeline's report byte-equality guarantee
    /// rests on this).
    #[test]
    fn worker_count_does_not_change_trajectory() {
        let d = DeviceModel::transmon_line(2).unwrap();
        let target = Matrix::identity(4);
        let run = |workers: usize| {
            grape(
                &d,
                &target,
                24,
                &GrapeConfig {
                    max_iters: 30,
                    restarts: 1,
                    workers,
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let r1 = run(1);
        let r4 = run(4);
        assert_eq!(r1.fidelity.to_bits(), r4.fidelity.to_bits());
        assert_eq!(r1.iterations, r4.iterations);
        for (a, b) in r1.controls.iter().zip(&r4.controls) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (x, y) in r1.unitary.as_slice().iter().zip(r4.unitary.as_slice()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    /// Constrained GRAPE (straight-through estimator through the AWG
    /// model) must still hit high conditioned fidelity on a 1-qubit gate
    /// given slot headroom, and must beat post-hoc conditioning of the
    /// unconstrained pulse.
    #[test]
    fn constrained_grape_beats_post_hoc_conditioning() {
        let d = device1();
        let target = Gate::X.unitary_matrix();
        let profile = epoc_hw::HardwareProfile::transmon_awg_8bit();
        let slots = 40;
        // Unconstrained pulse, then distort it post hoc.
        let free = grape(&d, &target, slots, &GrapeConfig::default()).unwrap();
        let mut distorted = free.controls.clone();
        let mut ws = epoc_hw::ConditionWorkspace::new();
        profile.condition_controls(d.dt(), d.max_amplitude(), &mut distorted, &mut ws);
        let post_hoc = phase_invariant_fidelity(&propagate(&d, &distorted).unwrap(), &target);
        // Constrained run: fidelity is evaluated on the conditioned pulse.
        let constrained = grape(
            &d,
            &target,
            slots,
            &GrapeConfig {
                hw: Some(profile.clone()),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            constrained.fidelity > 0.999,
            "constrained fidelity {}",
            constrained.fidelity
        );
        assert!(
            constrained.fidelity > post_hoc,
            "constrained {} should beat post-hoc {post_hoc}",
            constrained.fidelity
        );
        // The reported unitary is the conditioned propagator: replaying
        // the conditioned controls must reproduce the claimed fidelity.
        let mut cond = constrained.controls.clone();
        profile.condition_controls(d.dt(), d.max_amplitude(), &mut cond, &mut ws);
        let replay = propagate(&d, &cond).unwrap();
        assert!(replay.approx_eq(&constrained.unitary, 1e-12));
        // Raw controls respect the amplitude bound.
        for ch in &constrained.controls {
            for &a in ch {
                assert!(a.abs() <= d.max_amplitude() + 1e-12);
            }
        }
    }

    /// The constrained trajectory must stay bit-identical at any worker
    /// count — conditioning runs on the calling thread.
    #[test]
    fn constrained_worker_count_does_not_change_trajectory() {
        let d = DeviceModel::transmon_line(2).unwrap();
        let target = Matrix::identity(4);
        let run = |workers: usize| {
            grape(
                &d,
                &target,
                24,
                &GrapeConfig {
                    max_iters: 30,
                    restarts: 1,
                    workers,
                    hw: Some(epoc_hw::HardwareProfile::transmon_awg_8bit()),
                    ..Default::default()
                },
            )
            .unwrap()
        };
        let r1 = run(1);
        let r4 = run(4);
        assert_eq!(r1.fidelity.to_bits(), r4.fidelity.to_bits());
        for (a, b) in r1.controls.iter().zip(&r4.controls) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// An identity (or absent) profile must not perturb the trajectory at
    /// all: `hw: Some(ideal)` and `hw: None` are the same optimizer.
    #[test]
    fn ideal_profile_matches_unconstrained_bitwise() {
        let d = device1();
        let target = Gate::H.unitary_matrix();
        let plain = grape(&d, &target, 20, &GrapeConfig::default()).unwrap();
        let ideal = grape(
            &d,
            &target,
            20,
            &GrapeConfig {
                hw: Some(epoc_hw::HardwareProfile::ideal()),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(plain.fidelity.to_bits(), ideal.fidelity.to_bits());
        for (a, b) in plain.controls.iter().zip(&ideal.controls) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Regression pin for the workspace/trace-kernel refactor: the X-gate
    /// trajectory on the standard 1-qubit device. A change to the gradient
    /// math or the iteration order shows up here as a fidelity drift.
    #[test]
    fn grape_x_gate_trajectory_pinned() {
        let d = device1();
        let r = grape(&d, &Gate::X.unitary_matrix(), 30, &GrapeConfig::default()).unwrap();
        assert!(r.fidelity > 0.9999, "fidelity {}", r.fidelity);
        assert!(
            r.iterations <= GrapeConfig::default().max_iters,
            "iterations {}",
            r.iterations
        );
        // Re-running with the same config must reproduce the exact result.
        let r2 = grape(&d, &Gate::X.unitary_matrix(), 30, &GrapeConfig::default()).unwrap();
        assert_eq!(r.fidelity.to_bits(), r2.fidelity.to_bits());
        assert_eq!(r.iterations, r2.iterations);
    }
}

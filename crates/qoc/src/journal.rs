//! Crash-safe write-ahead journal for the pulse library.
//!
//! The persistent library is checkpointed atomically (temp file +
//! rename), but a checkpoint only lands every N jobs — every insert since
//! the last checkpoint dies with the process. The journal closes that
//! window: each live insert appends one checksummed record *before* the
//! in-memory store mutation, the file is fsync'd at batch boundaries, and
//! on start the service replays it after the checksum-validated library
//! load. A successful checkpoint compacts the journal back to empty.
//!
//! ## Record format
//!
//! One JSON object per `\n`-terminated line:
//!
//! ```text
//! {"crc":"<16 hex digits>","rec":{"section":"grape","key":{…},"entry":{…}}}
//! ```
//!
//! `crc` is the FNV-1a checksum of the canonical compact serialization of
//! the `rec` value — the same canonical-bytes trick the library file
//! uses, so re-serializing the parsed record reproduces the checksummed
//! bytes exactly.
//!
//! ## Recovery rules
//!
//! * Every **newline-terminated** record must parse and checksum-match;
//!   any failure is mid-file corruption and replay fails closed
//!   ([`crate::LibraryError::Corrupt`]) applying *nothing* — a journal
//!   that lies about one record cannot be trusted about the rest.
//! * An **unterminated tail** is a torn final append (`kill -9`
//!   mid-write): if the tail happens to be a complete, checksum-valid
//!   record (only its newline was lost) it is applied; otherwise it is
//!   dropped and the file is truncated back to the last good record.
//!   Either way, every record whose append completed survives.

use crate::library::{payload_checksum, CacheKey, PulseEntry, PulseLibrary};
use crate::store::LibraryError;
use epoc_rt::json::Json;
use std::io::{Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Serializes one journal record line (without the trailing newline).
fn record_line(section: &str, key: &CacheKey, entry: &PulseEntry) -> String {
    let rec = Json::obj()
        .push("section", section)
        .push("key", key.to_json_value())
        .push("entry", entry.to_json_value());
    let payload = rec.to_string_compact();
    Json::obj()
        .push("crc", payload_checksum(&payload))
        .push("rec", rec)
        .to_string_compact()
}

/// Append-only journal writer. Thread-safe: appends serialize on an
/// internal lock (the service's serial replay stage is the only caller
/// in practice, but the library observer API is `Send + Sync`).
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl JournalWriter {
    /// Opens (creating if missing) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Io`] when the file cannot be opened.
    pub fn open_append(path: &Path) -> Result<Self, LibraryError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| LibraryError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        Ok(Self {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn io_err(&self, e: std::io::Error) -> LibraryError {
        LibraryError::Io {
            path: self.path.display().to_string(),
            message: e.to_string(),
        }
    }

    /// Appends one insert record. Durability is deferred to
    /// [`JournalWriter::sync`] (the service syncs per batch, not per
    /// insert).
    ///
    /// Fail point `pulse_lib.journal` simulates a crash mid-append: half
    /// the record's bytes land in the file (no newline) and the call
    /// still reports success — chaos tests then assert replay tolerates
    /// the torn tail.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Io`] when the write fails.
    pub fn append(
        &self,
        section: &str,
        key: &CacheKey,
        entry: &PulseEntry,
    ) -> Result<(), LibraryError> {
        let line = record_line(section, key, entry);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        if epoc_rt::faults::fail_point("pulse_lib.journal") {
            // Torn append: the line is ASCII, so any split point is a
            // char boundary.
            let half = &line.as_bytes()[..line.len() / 2];
            file.write_all(half).map_err(|e| self.io_err(e))?;
            epoc_rt::telemetry::counter_add("pulse_lib.journal_torn", 1);
            return Ok(());
        }
        file.write_all(line.as_bytes()).map_err(|e| self.io_err(e))?;
        file.write_all(b"\n").map_err(|e| self.io_err(e))?;
        epoc_rt::telemetry::counter_add("pulse_lib.journal_appends", 1);
        Ok(())
    }

    /// Flushes and fsyncs the journal — the batch-boundary durability
    /// point: every record appended before a successful `sync` survives
    /// `kill -9`.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Io`] when the flush or fsync fails.
    pub fn sync(&self) -> Result<(), LibraryError> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.flush().map_err(|e| self.io_err(e))?;
        file.sync_data().map_err(|e| self.io_err(e))?;
        Ok(())
    }

    /// Empties the journal — called after every successful checkpoint,
    /// whose atomically-renamed library file now covers every journaled
    /// insert.
    ///
    /// # Errors
    ///
    /// Returns [`LibraryError::Io`] when truncation fails.
    pub fn compact(&self) -> Result<(), LibraryError> {
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.set_len(0).map_err(|e| self.io_err(e))?;
        file.seek(std::io::SeekFrom::Start(0)).map_err(|e| self.io_err(e))?;
        file.sync_data().map_err(|e| self.io_err(e))?;
        epoc_rt::telemetry::counter_add("pulse_lib.journal_compactions", 1);
        Ok(())
    }
}

/// A parsed, validated journal record awaiting application.
struct ParsedRecord {
    section_index: Option<usize>,
    key: CacheKey,
    entry: PulseEntry,
}

/// Parses and validates one record line against the requested sections.
/// `Ok(record)` leaves application to the caller (two-phase replay).
fn parse_record(
    line: &str,
    sections: &[(&str, &PulseLibrary)],
) -> Result<ParsedRecord, String> {
    let doc = Json::parse(line).map_err(|e| format!("unparseable record ({e})"))?;
    let stored = doc
        .get("crc")
        .and_then(Json::as_str)
        .ok_or("record is missing 'crc'")?;
    let rec = doc.get("rec").ok_or("record is missing 'rec'")?;
    // Canonical serializer: re-serializing the parsed record reproduces
    // the exact bytes the checksum was computed over.
    if payload_checksum(&rec.to_string_compact()) != stored {
        return Err("record checksum mismatch".into());
    }
    let section = rec
        .get("section")
        .and_then(Json::as_str)
        .ok_or("record is missing 'section'")?;
    let key = rec
        .get("key")
        .ok_or("record is missing 'key'".to_string())
        .and_then(|k| CacheKey::from_json_value(k).map_err(|e| format!("malformed key: {e}")))?;
    let entry = rec
        .get("entry")
        .ok_or("record is missing 'entry'".to_string())
        .and_then(|e| PulseEntry::from_json_value(e).map_err(|e| format!("malformed entry: {e}")))?;
    let section_index = sections.iter().position(|(name, _)| *name == section);
    if let Some(i) = section_index {
        let lib = sections[i].1;
        if key.policy() != lib.policy() {
            return Err(format!(
                "section '{section}' key policy {:?} does not match the library's {:?}",
                key.policy(),
                lib.policy()
            ));
        }
        if key.hw() != lib.profile_hash() {
            return Err(format!(
                "section '{section}' key hw {:016x} does not match the library's {:016x}",
                key.hw(),
                lib.profile_hash()
            ));
        }
    }
    Ok(ParsedRecord { section_index, key, entry })
}

/// Replays a journal written by [`JournalWriter`] into the given
/// libraries, returning the number of records applied. A missing journal
/// file replays zero records (fresh start). Records naming sections not
/// in `sections` are validated but skipped, mirroring
/// [`crate::load_library_file`].
///
/// Replay is two-phase (parse everything, then apply), so a corrupt
/// journal applies *nothing*. Applied entries bypass the insert observer
/// — replayed inserts are already durable and must not be re-journaled.
///
/// A torn tail (unterminated final line) is tolerated: if it is a
/// complete checksum-valid record it is applied, otherwise the file is
/// truncated back to the last good record.
///
/// # Errors
///
/// * [`LibraryError::Io`] — the journal cannot be read (other than not
///   existing) or the torn-tail truncation fails.
/// * [`LibraryError::Corrupt`] — a newline-terminated record fails to
///   parse, checksum-match, or validate against its target library;
///   nothing is applied. Callers treat this as "start cold": delete or
///   move the journal aside and recompute (always safe).
pub fn replay_journal(
    path: &Path,
    sections: &[(&str, &PulseLibrary)],
) -> Result<usize, LibraryError> {
    let display = path.display().to_string();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => {
            return Err(LibraryError::Io {
                path: display,
                message: e.to_string(),
            })
        }
    };

    // Phase 1: parse and validate. Terminated lines must all be valid;
    // the unterminated tail (if any) may be torn.
    let mut records: Vec<ParsedRecord> = Vec::new();
    let mut good_end = 0usize; // byte offset after the last good record
    let mut offset = 0usize;
    let mut tail_truncate: Option<usize> = None;
    while offset < text.len() {
        let rest = &text[offset..];
        match rest.find('\n') {
            Some(nl) => {
                let line = &rest[..nl];
                if !line.trim().is_empty() {
                    let rec = parse_record(line, sections).map_err(|reason| {
                        LibraryError::Corrupt {
                            path: display.clone(),
                            reason: format!(
                                "journal record at byte {offset}: {reason}"
                            ),
                        }
                    })?;
                    records.push(rec);
                }
                offset += nl + 1;
                good_end = offset;
            }
            None => {
                // Torn tail: apply if it is a complete record that only
                // lost its newline, else schedule truncation.
                match parse_record(rest, sections) {
                    Ok(rec) => records.push(rec),
                    Err(_) => tail_truncate = Some(good_end),
                }
                offset = text.len();
            }
        }
    }

    // Phase 2: truncate the torn tail, then apply every record in order.
    if let Some(end) = tail_truncate {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| LibraryError::Io {
                path: display.clone(),
                message: e.to_string(),
            })?;
        file.set_len(end as u64).map_err(|e| LibraryError::Io {
            path: display.clone(),
            message: e.to_string(),
        })?;
        epoc_rt::telemetry::counter_add("pulse_lib.journal_torn_tails", 1);
    }
    let mut applied = 0usize;
    for rec in records {
        if let Some(i) = rec.section_index {
            sections[i].1.store().put(rec.key, rec.entry);
            applied += 1;
        }
    }
    epoc_rt::telemetry::counter_add("pulse_lib.journal_replayed", applied as u64);
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::KeyPolicy;
    use epoc_circuit::Gate;

    fn entry(d: f64) -> PulseEntry {
        PulseEntry {
            duration: d,
            fidelity: 0.999,
            n_slots: d as usize,
            waveform: None,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("epoc-journal-{}-{name}", std::process::id()))
    }

    #[test]
    fn append_sync_replay_round_trips() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("roundtrip.jsonl");
        std::fs::remove_file(&path).ok();
        let journal = JournalWriter::open_append(&path).unwrap();
        let h = Gate::H.unitary_matrix();
        let x = Gate::X.unitary_matrix();
        journal.append("grape", &lib.cache_key(&h), &entry(26.0)).unwrap();
        journal.append("grape", &lib.cache_key(&x), &entry(25.0)).unwrap();
        journal.sync().unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(
            replay_journal(&path, &[("grape", &restored)]).unwrap(),
            2
        );
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.peek(&h).map(|e| e.duration), Some(26.0));
        assert_eq!(restored.peek(&x).map(|e| e.duration), Some(25.0));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_journal_replays_zero() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("missing.jsonl");
        std::fs::remove_file(&path).ok();
        assert_eq!(replay_journal(&path, &[("grape", &lib)]).unwrap(), 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_recovered() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("torn.jsonl");
        std::fs::remove_file(&path).ok();
        let journal = JournalWriter::open_append(&path).unwrap();
        journal
            .append("grape", &lib.cache_key(&Gate::H.unitary_matrix()), &entry(26.0))
            .unwrap();
        journal.sync().unwrap();
        // Tear: append half of a second record by hand.
        let line = record_line("grape", &lib.cache_key(&Gate::X.unitary_matrix()), &entry(25.0));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&line.as_bytes()[..line.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(replay_journal(&path, &[("grape", &restored)]).unwrap(), 1);
        assert_eq!(restored.len(), 1);
        // The torn tail was physically truncated away.
        let after = std::fs::read_to_string(&path).unwrap();
        assert!(after.ends_with('\n'));
        assert_eq!(after.lines().count(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn midfile_corruption_fails_closed_applying_nothing() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("corrupt.jsonl");
        std::fs::remove_file(&path).ok();
        let journal = JournalWriter::open_append(&path).unwrap();
        journal
            .append("grape", &lib.cache_key(&Gate::H.unitary_matrix()), &entry(26.0))
            .unwrap();
        journal
            .append("grape", &lib.cache_key(&Gate::X.unitary_matrix()), &entry(25.0))
            .unwrap();
        journal.sync().unwrap();
        // Flip one byte inside the FIRST record (a terminated line).
        let mut bytes = std::fs::read(&path).unwrap();
        let i = 20;
        bytes[i] = if bytes[i] == b'3' { b'4' } else { b'3' };
        std::fs::write(&path, &bytes).unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        let err = replay_journal(&path, &[("grape", &restored)]).unwrap_err();
        assert!(matches!(err, LibraryError::Corrupt { .. }), "{err:?}");
        assert!(restored.is_empty(), "fail closed must apply nothing");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_empties_the_file() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("compact.jsonl");
        std::fs::remove_file(&path).ok();
        let journal = JournalWriter::open_append(&path).unwrap();
        journal
            .append("grape", &lib.cache_key(&Gate::H.unitary_matrix()), &entry(26.0))
            .unwrap();
        journal.sync().unwrap();
        journal.compact().unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        // And appends keep working after a compaction.
        journal
            .append("grape", &lib.cache_key(&Gate::X.unitary_matrix()), &entry(25.0))
            .unwrap();
        journal.sync().unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(replay_journal(&path, &[("grape", &restored)]).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_sections_are_skipped_not_corrupt() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("sections.jsonl");
        std::fs::remove_file(&path).ok();
        let journal = JournalWriter::open_append(&path).unwrap();
        journal
            .append("grape", &lib.cache_key(&Gate::H.unitary_matrix()), &entry(26.0))
            .unwrap();
        journal.sync().unwrap();
        let other = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(replay_journal(&path, &[("model", &other)]).unwrap(), 0);
        assert!(other.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn policy_mismatch_fails_closed() {
        let aware = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("policy.jsonl");
        std::fs::remove_file(&path).ok();
        let journal = JournalWriter::open_append(&path).unwrap();
        journal
            .append("grape", &aware.cache_key(&Gate::H.unitary_matrix()), &entry(26.0))
            .unwrap();
        journal.sync().unwrap();
        let sensitive = PulseLibrary::new(KeyPolicy::PhaseSensitive);
        let err = replay_journal(&path, &[("grape", &sensitive)]).unwrap_err();
        assert!(matches!(err, LibraryError::Corrupt { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn insert_observer_feeds_the_journal() {
        use std::sync::Arc;
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let path = temp_path("observer.jsonl");
        std::fs::remove_file(&path).ok();
        let journal = Arc::new(JournalWriter::open_append(&path).unwrap());
        let j = Arc::clone(&journal);
        lib.set_insert_observer(Some(Arc::new(move |key, entry| {
            j.append("grape", key, entry).expect("journal append");
        })));
        lib.insert(&Gate::H.unitary_matrix(), entry(26.0));
        journal.sync().unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(replay_journal(&path, &[("grape", &restored)]).unwrap(), 1);
        assert_eq!(
            restored.peek(&Gate::H.unitary_matrix()),
            lib.peek(&Gate::H.unitary_matrix())
        );
        // Bulk restores bypass the observer: replay into `lib` itself
        // must not grow the journal.
        let before = std::fs::metadata(&path).unwrap().len();
        replay_journal(&path, &[("grape", &lib)]).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
        std::fs::remove_file(&path).ok();
    }
}

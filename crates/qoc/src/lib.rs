//! # epoc-qoc — quantum optimal control for the EPOC pulse compiler
//!
//! Everything between "unitary block" and "microwave pulse":
//!
//! * [`DeviceModel`] — the simulated transmon-line system (drift +
//!   bounded X/Y drives) pulses are optimized against;
//! * [`grape`] — GRAPE with exact propagator-derivative gradients (and a
//!   first-order mode for the ablation);
//! * [`minimize_duration`] — the AccQOC binary search for the shortest
//!   pulse reaching a fidelity threshold;
//! * [`PulseLibrary`] — the unitary→pulse cache, with EPOC's
//!   global-phase-aware key policy and the phase-sensitive baseline;
//! * [`DurationModel`] — the calibrated duration model substituting for
//!   cluster-scale GRAPE on wide blocks;
//! * [`PulseSynthesizer`] backends ([`GrapeSynthesizer`],
//!   [`ModeledSynthesizer`], [`HybridSynthesizer`]).
//!
//! ## Example
//!
//! ```
//! use epoc_circuit::Gate;
//! use epoc_qoc::{grape, DeviceModel, GrapeConfig};
//!
//! let device = DeviceModel::transmon_line(1).unwrap();
//! let result = grape(&device, &Gate::Sx.unitary_matrix(), 16, &GrapeConfig::default()).unwrap();
//! assert!(result.fidelity > 0.99);
//! ```

#![warn(missing_docs)]

mod crab;
mod device;
mod duration;
mod grape;
mod journal;
mod library;
mod model;
mod store;
mod synthesizer;
mod waveform;

pub use crab::{crab, CrabConfig, CrabResult};
pub use device::{ControlChannel, DeviceError, DeviceModel, MAX_MODEL_QUBITS};
pub use duration::{
    minimize_duration, minimize_duration_with_cancel, DurationError, DurationSearchConfig,
    GrapeRecoveryPolicy, PulseSolution, SearchDurationError,
};
pub use grape::{
    fault_fingerprint, grape, grape_with_cancel, propagate, GradientMode, GrapeConfig, GrapeError,
    GrapeResult,
};
pub use grape::GrapeWorkspace;
pub use journal::{replay_journal, JournalWriter};
pub use library::{
    load_library_file, save_library_file, CacheKey, InsertObserver, KeyPolicy, PulseEntry,
    PulseLibrary,
};
pub use model::{DurationModel, GateDurationTable};
pub use store::{
    entry_bytes, BudgetedStore, LibraryError, MemoryStore, PulseStore, ShardedStore, StoreConfig,
    StoreTier,
};
pub use synthesizer::{
    GrapeSynthesizer, HybridSynthesizer, ModeledSynthesizer, PulseError, PulseRequest,
    PulseSynthesizer, RecoveredPulse, RUNG_GRAPE_DIGITAL, RUNG_GRAPE_RESTARTS, RUNG_GRAPE_SLOTS,
};
pub use waveform::PulseWaveform;

//! The pulse library: a concurrent unitary → pulse cache.
//!
//! AccQOC/PAQOC key their lookup tables on the raw unitary; EPOC's
//! improvement (§3.4) is **global-phase-aware** matching — `U` and
//! `e^{iφ}U` need the same pulse, so treating them as one entry raises the
//! hit rate "similar to having a higher cache hit rate". Both policies are
//! implemented so the ablation bench can compare them.
//!
//! Storage is pluggable (see [`crate::store`]): the library resolves a
//! unitary to a [`CacheKey`] under its policy and delegates to a
//! [`PulseStore`] tier — in-memory, sharded, or budgeted-with-eviction.
//! The library (any tier) can also be **persisted**: entries serialize to
//! JSON via `epoc_rt::json` in sorted-key order, wrapped in a versioned,
//! checksummed file so torn or truncated writes are detected on load and
//! degrade to a cold cache instead of corrupting a compile.

use crate::store::{LibraryError, MemoryStore, PulseStore, StoreConfig, StoreTier};
use crate::waveform::PulseWaveform;
use epoc_linalg::{Matrix, PhaseSensitiveKey, UnitaryKey};
use epoc_rt::json::Json;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Cache key policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPolicy {
    /// EPOC: unitaries matching up to global phase share an entry.
    PhaseAware,
    /// AccQOC/PAQOC baseline: exact-matrix matching only.
    PhaseSensitive,
}

impl KeyPolicy {
    /// The policy's stable on-disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            KeyPolicy::PhaseAware => "phase_aware",
            KeyPolicy::PhaseSensitive => "phase_sensitive",
        }
    }

    /// Parses the on-disk name back into a policy.
    pub fn from_str_opt(s: &str) -> Option<Self> {
        match s {
            "phase_aware" => Some(KeyPolicy::PhaseAware),
            "phase_sensitive" => Some(KeyPolicy::PhaseSensitive),
            _ => None,
        }
    }
}

/// A cached pulse: its duration, realized fidelity, and (for GRAPE
/// solutions) the control waveform itself.
///
/// The waveform rides behind an `Arc`, so cloning an entry — cache hits,
/// the parallel pulse stage's replay — shares one `O(channels × slots)`
/// buffer rather than copying it. It is what the pulse-level simulator
/// (`epoc-sim`) replays against the device Hamiltonian to verify the
/// schedule independently of GRAPE's own objective.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseEntry {
    /// Pulse duration in ns.
    pub duration: f64,
    /// Realized pulse fidelity.
    pub fidelity: f64,
    /// Slot count of the stored solution.
    pub n_slots: usize,
    /// The GRAPE control waveform realizing the pulse (`None` for modeled
    /// pulses and failed duration searches, which have no waveform).
    pub waveform: Option<Arc<PulseWaveform>>,
}

impl PulseEntry {
    /// Serializes the entry for the persistent library. Floats print in
    /// shortest round-trip form, so deserializing recovers the exact
    /// bits — warm-started compiles are byte-identical to in-process
    /// cache hits.
    pub fn to_json_value(&self) -> Json {
        let waveform = match &self.waveform {
            None => Json::Null,
            Some(w) => Json::obj().push("dt", w.dt()).push(
                "controls",
                Json::Arr(
                    w.controls()
                        .iter()
                        .map(|ch| Json::Arr(ch.iter().map(|&v| Json::Num(v)).collect()))
                        .collect(),
                ),
            ),
        };
        Json::obj()
            .push("duration", self.duration)
            .push("fidelity", self.fidelity)
            .push("n_slots", self.n_slots)
            .push("waveform", waveform)
    }

    /// Deserializes an entry written by [`PulseEntry::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when a field is missing or
    /// malformed.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let num = |field: &str| -> Result<f64, String> {
            v.get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry is missing numeric '{field}'"))
        };
        let duration = num("duration")?;
        let fidelity = num("fidelity")?;
        let n_slots = num("n_slots")? as usize;
        let waveform = match v.get("waveform") {
            None | Some(Json::Null) => None,
            Some(w) => {
                let dt = w
                    .get("dt")
                    .and_then(Json::as_f64)
                    .ok_or("waveform is missing 'dt'")?;
                if !(dt.is_finite() && dt > 0.0) {
                    return Err(format!("waveform dt {dt} is not positive"));
                }
                let Some(Json::Arr(rows)) = w.get("controls") else {
                    return Err("waveform is missing 'controls'".into());
                };
                let mut controls = Vec::with_capacity(rows.len());
                for row in rows {
                    let Json::Arr(vals) = row else {
                        return Err("waveform control row is not an array".into());
                    };
                    let ch: Result<Vec<f64>, String> = vals
                        .iter()
                        .map(|x| x.as_f64().ok_or_else(|| "non-numeric amplitude".to_string()))
                        .collect();
                    controls.push(ch?);
                }
                let n = controls.first().map_or(0, Vec::len);
                if controls.iter().any(|c| c.len() != n) {
                    return Err("ragged waveform control rows".into());
                }
                Some(Arc::new(PulseWaveform::new(dt, controls)))
            }
        };
        Ok(PulseEntry { duration, fidelity, n_slots, waveform })
    }
}

/// A policy-resolved cache key: what [`PulseLibrary::lookup`] hashes
/// internally, exposed so batch schedulers can deduplicate pending
/// misses without touching the hit/miss counters.
///
/// Besides the unitary fingerprint, the key carries the stable hash of
/// the [hardware profile](`epoc_hw::HardwareProfile`) the entry was
/// optimized under (0 = ideal electronics): a pulse constrained for one
/// control stack is *wrong* for another even though it implements the
/// same unitary, so the profile is part of entry identity.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    fingerprint: Fingerprint,
    hw: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Fingerprint {
    /// Phase-invariant fingerprint.
    PhaseAware(UnitaryKey),
    /// Exact-matrix fingerprint.
    PhaseSensitive(PhaseSensitiveKey),
}

impl CacheKey {
    /// A phase-aware key scoped to the hardware profile hash `hw`.
    pub fn phase_aware(key: UnitaryKey, hw: u64) -> Self {
        Self { fingerprint: Fingerprint::PhaseAware(key), hw }
    }

    /// A phase-sensitive key scoped to the hardware profile hash `hw`.
    pub fn phase_sensitive(key: PhaseSensitiveKey, hw: u64) -> Self {
        Self { fingerprint: Fingerprint::PhaseSensitive(key), hw }
    }

    /// The policy this key was resolved under.
    pub fn policy(&self) -> KeyPolicy {
        match &self.fingerprint {
            Fingerprint::PhaseAware(_) => KeyPolicy::PhaseAware,
            Fingerprint::PhaseSensitive(_) => KeyPolicy::PhaseSensitive,
        }
    }

    /// The hardware-profile hash this key is scoped to (0 = ideal).
    pub fn hw(&self) -> u64 {
        self.hw
    }

    /// Number of quantized cells in the fingerprint.
    pub fn cell_count(&self) -> usize {
        match &self.fingerprint {
            Fingerprint::PhaseAware(k) => k.cells().len(),
            Fingerprint::PhaseSensitive(k) => k.cells().len(),
        }
    }

    /// A stable (cross-run, cross-platform) FNV-1a hash of the key, used
    /// to pick storage shards. `std`'s hasher is seeded per process, so it
    /// cannot be used anywhere determinism across runs matters.
    pub fn stable_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let (tag, dim, cells) = match &self.fingerprint {
            Fingerprint::PhaseAware(k) => (0u8, k.dim() as u32, k.cells()),
            Fingerprint::PhaseSensitive(k) => (1u8, k.dim() as u32, k.cells()),
        };
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        };
        eat(tag);
        for b in dim.to_le_bytes() {
            eat(b);
        }
        for &(re, im) in cells {
            for b in re.to_le_bytes() {
                eat(b);
            }
            for b in im.to_le_bytes() {
                eat(b);
            }
        }
        for b in self.hw.to_le_bytes() {
            eat(b);
        }
        h
    }

    /// Serializes the key for the persistent library: its policy kind,
    /// dimension, quantized cells as a flat `[re, im, re, im, …]`
    /// integer array, and the hardware-profile hash as 16 hex digits.
    pub fn to_json_value(&self) -> Json {
        let (dim, cells) = match &self.fingerprint {
            Fingerprint::PhaseAware(k) => (k.dim(), k.cells()),
            Fingerprint::PhaseSensitive(k) => (k.dim(), k.cells()),
        };
        let mut flat = Vec::with_capacity(cells.len() * 2);
        for &(re, im) in cells {
            flat.push(Json::Int(re as i64));
            flat.push(Json::Int(im as i64));
        }
        Json::obj()
            .push("kind", self.policy().as_str())
            .push("dim", dim)
            .push("cells", Json::Arr(flat))
            .push("hw", format!("{:016x}", self.hw))
    }

    /// Deserializes a key written by [`CacheKey::to_json_value`].
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the kind is unknown or the
    /// cell array is malformed.
    pub fn from_json_value(v: &Json) -> Result<Self, String> {
        let kind = v.get("kind").and_then(Json::as_str).ok_or("key is missing 'kind'")?;
        let policy =
            KeyPolicy::from_str_opt(kind).ok_or_else(|| format!("unknown key kind '{kind}'"))?;
        let dim = v
            .get("dim")
            .and_then(Json::as_f64)
            .ok_or("key is missing 'dim'")? as usize;
        let Some(Json::Arr(flat)) = v.get("cells") else {
            return Err("key is missing 'cells'".into());
        };
        if flat.len() % 2 != 0 {
            return Err("key cell array has odd length".into());
        }
        let mut cells = Vec::with_capacity(flat.len() / 2);
        for pair in flat.chunks_exact(2) {
            let cell = |x: &Json| -> Result<i32, String> {
                x.as_f64().map(|f| f as i32).ok_or_else(|| "non-integer key cell".to_string())
            };
            cells.push((cell(&pair[0])?, cell(&pair[1])?));
        }
        let hw = match v.get("hw") {
            None => 0,
            Some(h) => {
                let s = h.as_str().ok_or("key 'hw' is not a string")?;
                u64::from_str_radix(s, 16).map_err(|_| "key 'hw' is not a hex hash".to_string())?
            }
        };
        Ok(match policy {
            KeyPolicy::PhaseAware => {
                CacheKey::phase_aware(UnitaryKey::from_parts(dim, cells), hw)
            }
            KeyPolicy::PhaseSensitive => {
                CacheKey::phase_sensitive(PhaseSensitiveKey::from_parts(dim, cells), hw)
            }
        })
    }
}

/// A thread-safe pulse library.
///
/// # Examples
///
/// ```
/// use epoc_qoc::{PulseLibrary, PulseEntry, KeyPolicy};
/// use epoc_linalg::{Matrix, Complex64};
///
/// let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
/// let x = Matrix::from_rows(&[
///     &[Complex64::ZERO, Complex64::ONE],
///     &[Complex64::ONE, Complex64::ZERO],
/// ]);
/// lib.insert(&x, PulseEntry { duration: 26.0, fidelity: 0.9995, n_slots: 13, waveform: None });
/// // The same gate with a different global phase hits the cache:
/// let gx = x.scale(Complex64::cis(1.0));
/// assert!(lib.lookup(&gx).is_some());
/// ```
#[derive(Debug)]
pub struct PulseLibrary {
    policy: KeyPolicy,
    /// Stable hash of the hardware profile the stored pulses were
    /// optimized under (0 = ideal electronics). Scopes every cache key
    /// and the persisted section header, so a library built for one
    /// control stack can never silently serve another.
    profile_hash: u64,
    store: Box<dyn PulseStore>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    observer: ObserverCell,
}

/// Callback invoked on every live insert, *before* the store mutation —
/// services use it to write-ahead-journal inserts (see
/// [`crate::journal`]).
pub type InsertObserver = Arc<dyn Fn(&CacheKey, &PulseEntry) + Send + Sync>;

/// Interior cell for the optional insert observer; manual `Debug` since
/// closures have none.
#[derive(Default)]
struct ObserverCell(std::sync::Mutex<Option<InsertObserver>>);

impl std::fmt::Debug for ObserverCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let set = self
            .0
            .lock()
            .map(|g| g.is_some())
            .unwrap_or_else(|e| e.into_inner().is_some());
        write!(f, "InsertObserver({})", if set { "set" } else { "unset" })
    }
}

impl PulseLibrary {
    /// Creates an empty library with the given key policy on the
    /// single-lock in-memory tier.
    pub fn new(policy: KeyPolicy) -> Self {
        Self::with_store(policy, Box::new(MemoryStore::new()))
    }

    /// Creates an empty library on an explicit storage tier.
    pub fn with_store(policy: KeyPolicy, store: Box<dyn PulseStore>) -> Self {
        Self {
            policy,
            profile_hash: 0,
            store,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            observer: ObserverCell::default(),
        }
    }

    /// Creates an empty library on the tier a [`StoreConfig`] describes.
    pub fn from_config(policy: KeyPolicy, config: &StoreConfig) -> Self {
        Self::with_store(policy, config.build())
    }

    /// Scopes the library to a hardware-profile hash (see
    /// [`epoc_hw::profile_hash`]); 0 means ideal electronics.
    pub fn with_profile_hash(mut self, hash: u64) -> Self {
        self.profile_hash = hash;
        self
    }

    /// The key policy.
    pub fn policy(&self) -> KeyPolicy {
        self.policy
    }

    /// The hardware-profile hash this library is scoped to (0 = ideal).
    pub fn profile_hash(&self) -> u64 {
        self.profile_hash
    }

    /// The storage tier backing this library.
    pub fn tier(&self) -> StoreTier {
        self.store.tier()
    }

    /// The store itself (hit/miss counters live on the library, byte and
    /// eviction accounting on the store).
    pub fn store(&self) -> &dyn PulseStore {
        self.store.as_ref()
    }

    /// The key `unitary` resolves to under this library's policy.
    pub fn cache_key(&self, unitary: &Matrix) -> CacheKey {
        match self.policy {
            KeyPolicy::PhaseAware => {
                CacheKey::phase_aware(UnitaryKey::new(unitary), self.profile_hash)
            }
            KeyPolicy::PhaseSensitive => {
                CacheKey::phase_sensitive(PhaseSensitiveKey::new(unitary), self.profile_hash)
            }
        }
    }

    /// Counter-free lookup: like [`PulseLibrary::lookup`] but without
    /// recording a hit or miss. Batch schedulers use this to classify
    /// work up front and replay the counter effects serially, so parallel
    /// execution reports byte-identical statistics.
    ///
    /// Fail point `pulse_lib.miss` forces a miss (chaos tests use it to
    /// prove cache loss only costs recomputation, never correctness).
    pub fn peek(&self, unitary: &Matrix) -> Option<PulseEntry> {
        if epoc_rt::faults::fail_point("pulse_lib.miss") {
            return None;
        }
        let key = self.cache_key(unitary);
        // Per-tier lookup latency histogram; the clock only runs when
        // telemetry is recording, so the disabled path stays one load.
        let t0 = epoc_rt::telemetry::is_enabled().then(Instant::now);
        let found = self.store.get(&key);
        if let Some(t0) = t0 {
            epoc_rt::telemetry::histogram_record(
                self.store.tier().lookup_histogram(),
                t0.elapsed().as_nanos() as u64,
            );
        }
        found
    }

    /// Looks up a pulse for `unitary`, counting a hit or miss.
    pub fn lookup(&self, unitary: &Matrix) -> Option<PulseEntry> {
        match self.peek(unitary) {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                epoc_rt::telemetry::counter_add("pulse_lib.hits", 1);
                Some(e)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                epoc_rt::telemetry::counter_add("pulse_lib.misses", 1);
                None
            }
        }
    }

    /// Registers (or clears) the insert observer: a callback invoked on
    /// every *live* insert, before the store mutation — the write-ahead
    /// hook for [`crate::journal`]. Bulk restores
    /// ([`PulseLibrary::load_json_value`] and journal replay) bypass it,
    /// so loaded entries are never re-journaled.
    pub fn set_insert_observer(&self, observer: Option<InsertObserver>) {
        *self.observer.0.lock().unwrap_or_else(|e| e.into_inner()) = observer;
    }

    /// Inserts (or replaces) the pulse for `unitary`.
    ///
    /// Fail point `pulse_lib.insert` silently drops the insert (chaos
    /// tests use it to prove a lossy cache degrades to recomputation).
    pub fn insert(&self, unitary: &Matrix, entry: PulseEntry) {
        if epoc_rt::faults::fail_point("pulse_lib.insert") {
            return;
        }
        epoc_rt::telemetry::counter_add("pulse_lib.inserts", 1);
        let key = self.cache_key(unitary);
        // Write-ahead: the observer (journal append) runs before the
        // in-memory insert, so a crash can lose an uncached pulse but
        // never journal an insert that did not happen.
        let observer = self
            .observer
            .0
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if let Some(observe) = observer {
            observe(&key, &entry);
        }
        self.store.put(key, entry);
    }

    /// Number of stored pulses.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// `true` when no pulses are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the storage tier so far (0 for unbounded tiers).
    pub fn evictions(&self) -> u64 {
        self.store.evictions()
    }

    /// Estimated resident bytes of the stored entries.
    pub fn approx_bytes(&self) -> u64 {
        self.store.approx_bytes()
    }

    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Serializes the library's entries in sorted-key order (so the same
    /// contents always produce the same bytes, whatever the storage tier
    /// or insertion history).
    pub fn to_json_value(&self) -> Json {
        let entries = self
            .store
            .snapshot()
            .into_iter()
            .map(|(k, e)| {
                Json::obj()
                    .push("key", k.to_json_value())
                    .push("entry", e.to_json_value())
            })
            .collect();
        Json::obj()
            .push("policy", self.policy.as_str())
            .push("hw", format!("{:016x}", self.profile_hash))
            .push("entries", Json::Arr(entries))
    }

    /// Restores entries from a value written by
    /// [`PulseLibrary::to_json_value`], returning how many were loaded.
    /// Existing entries are kept (loads merge); hit/miss counters are
    /// untouched.
    ///
    /// The `pulse_lib.insert` fail point applies per entry, exactly as it
    /// does for live inserts — chaos tests use it to model a partially
    /// lost library.
    ///
    /// # Errors
    ///
    /// Returns a reason string when the section's policy does not match
    /// this library's or an entry is malformed. Entries loaded before the
    /// malformed one remain (the caller degrades to a cold or lukewarm
    /// cache — never to a panic).
    pub fn load_json_value(&self, v: &Json) -> Result<usize, String> {
        let policy = v.get("policy").and_then(Json::as_str).ok_or("library section is missing 'policy'")?;
        if KeyPolicy::from_str_opt(policy) != Some(self.policy) {
            return Err(format!(
                "policy mismatch: library uses '{}', file holds '{policy}'",
                self.policy.as_str()
            ));
        }
        // Fail closed on a hardware-profile mismatch: a library of pulses
        // optimized for one control stack must never warm-start a compile
        // targeting another — the waveforms would be mis-conditioned.
        let section_hw = match v.get("hw") {
            None => 0,
            Some(h) => h
                .as_str()
                .and_then(|s| u64::from_str_radix(s, 16).ok())
                .ok_or("library section 'hw' is not a hex hash")?,
        };
        if section_hw != self.profile_hash {
            return Err(format!(
                "hw profile mismatch: library expects {:016x}, file holds {section_hw:016x}",
                self.profile_hash
            ));
        }
        let Some(Json::Arr(entries)) = v.get("entries") else {
            return Err("library section is missing 'entries'".into());
        };
        let mut loaded = 0usize;
        for item in entries {
            let key = item
                .get("key")
                .ok_or("library entry is missing 'key'")
                .and_then(|k| CacheKey::from_json_value(k).map_err(|_| "malformed key"))
                .map_err(String::from)?;
            if key.policy() != self.policy {
                return Err("entry key policy differs from section policy".into());
            }
            if key.hw() != self.profile_hash {
                return Err(format!(
                    "hw profile mismatch: entry key carries {:016x}, library expects {:016x}",
                    key.hw(),
                    self.profile_hash
                ));
            }
            let entry = item
                .get("entry")
                .ok_or_else(|| "library entry is missing 'entry'".to_string())
                .and_then(PulseEntry::from_json_value)?;
            if epoc_rt::faults::fail_point("pulse_lib.insert") {
                continue;
            }
            self.store.put(key, entry);
            loaded += 1;
        }
        epoc_rt::telemetry::counter_add("pulse_lib.loaded", loaded as u64);
        Ok(loaded)
    }
}

/// On-disk library format version. Version 2 added the hardware-profile
/// hash to section headers and cache keys; version-1 files fail closed
/// as unsupported (recompute is always safe, serving a pulse conditioned
/// for unknown electronics is not).
const LIBRARY_FORMAT_VERSION: u64 = 2;

/// FNV-1a over the serialized payload, rendered as 16 hex digits — the
/// torn-write detector for library files (and, per record, for the
/// write-ahead journal in [`crate::journal`]).
pub(crate) fn payload_checksum(payload: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Saves one or more named library sections to `path` as a versioned,
/// checksummed JSON document. The write goes through a temp file plus an
/// atomic rename, so a crash mid-write leaves the previous file intact.
///
/// Fail point `pulse_lib.persist` simulates a torn write instead: half
/// the document lands on disk directly (no rename) and the call still
/// reports success — chaos tests then assert the damage is *detected on
/// load* and degrades to a cold cache.
///
/// # Errors
///
/// Returns [`LibraryError::Io`] when the file cannot be written.
pub fn save_library_file(
    path: &Path,
    sections: &[(&str, &PulseLibrary)],
) -> Result<(), LibraryError> {
    let mut libraries = Json::obj();
    for (name, lib) in sections {
        libraries = libraries.push(name, lib.to_json_value());
    }
    let payload = libraries.to_string_compact();
    let doc = Json::obj()
        .push("version", LIBRARY_FORMAT_VERSION)
        .push("checksum", payload_checksum(&payload))
        .push("libraries", libraries)
        .to_string_compact();
    let io_err = |e: std::io::Error| LibraryError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    };
    if epoc_rt::faults::fail_point("pulse_lib.persist") {
        // Torn write: the first half of the bytes, straight to the final
        // path. `doc` is ASCII (JSON with escaped strings), so any split
        // point is a char boundary.
        let half = &doc.as_bytes()[..doc.len() / 2];
        std::fs::write(path, half).map_err(io_err)?;
        epoc_rt::telemetry::counter_add("pulse_lib.persist_torn", 1);
        return Ok(());
    }
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &doc).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)?;
    epoc_rt::telemetry::counter_add("pulse_lib.persisted", 1);
    Ok(())
}

/// Loads library sections saved by [`save_library_file`] into the given
/// libraries, returning the total number of entries restored. Sections
/// present in the file but not requested are ignored; requested sections
/// missing from the file load zero entries.
///
/// # Errors
///
/// * [`LibraryError::Io`] — the file cannot be read.
/// * [`LibraryError::Corrupt`] — unparseable JSON, a missing or
///   mismatched checksum (torn/truncated write), an unsupported format
///   version, or a malformed entry.
/// * [`LibraryError::PolicyMismatch`] — a section keyed under a different
///   policy than its target library.
/// * [`LibraryError::HwProfileMismatch`] — a section whose pulses were
///   optimized under a different hardware profile than its target
///   library's; serving them would silently play mis-conditioned
///   waveforms, so the load fails closed.
///
/// Callers treat any error as "start cold": the typed error is reported,
/// the library keeps whatever was loaded before the failure, and
/// compilation proceeds — recomputing is always safe.
pub fn load_library_file(
    path: &Path,
    sections: &[(&str, &PulseLibrary)],
) -> Result<usize, LibraryError> {
    let display = path.display().to_string();
    let corrupt = |reason: String| LibraryError::Corrupt { path: display.clone(), reason };
    let text = std::fs::read_to_string(path).map_err(|e| LibraryError::Io {
        path: display.clone(),
        message: e.to_string(),
    })?;
    let doc = Json::parse(&text).map_err(|e| corrupt(format!("unparseable JSON ({e})")))?;
    let version = doc.get("version").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    if version != LIBRARY_FORMAT_VERSION {
        return Err(corrupt(format!(
            "unsupported format version {version} (expected {LIBRARY_FORMAT_VERSION})"
        )));
    }
    let stored = doc
        .get("checksum")
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt("missing checksum".into()))?;
    let libraries = doc
        .get("libraries")
        .ok_or_else(|| corrupt("missing 'libraries' object".into()))?;
    // The serializer is canonical (insertion-ordered keys, shortest
    // round-trip floats), so re-serializing the parsed payload reproduces
    // the exact bytes the checksum was computed over.
    let actual = payload_checksum(&libraries.to_string_compact());
    if actual != stored {
        return Err(corrupt("checksum mismatch — torn or corrupted file".into()));
    }
    let mut loaded = 0usize;
    for (name, lib) in sections {
        if let Some(section) = libraries.get(name) {
            loaded += lib.load_json_value(section).map_err(|reason| {
                if reason.starts_with("policy mismatch") {
                    LibraryError::PolicyMismatch {
                        expected: lib.policy(),
                        found: section
                            .get("policy")
                            .and_then(Json::as_str)
                            .unwrap_or("?")
                            .to_string(),
                    }
                } else if reason.starts_with("hw profile mismatch") {
                    LibraryError::HwProfileMismatch {
                        expected: lib.profile_hash(),
                        found: section
                            .get("hw")
                            .and_then(Json::as_str)
                            .and_then(|s| u64::from_str_radix(s, 16).ok())
                            .unwrap_or(0),
                    }
                } else {
                    corrupt(format!("section '{name}': {reason}"))
                }
            })?;
        }
    }
    Ok(loaded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;
    use epoc_linalg::Complex64;

    fn entry(d: f64) -> PulseEntry {
        PulseEntry {
            duration: d,
            fidelity: 0.9995,
            n_slots: (d / 2.0) as usize,
            waveform: None,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("epoc-library-{}-{name}", std::process::id()))
    }

    #[test]
    fn phase_aware_hits_rotated_unitary() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let h = Gate::H.unitary_matrix();
        lib.insert(&h, entry(26.0));
        let rotated = h.scale(Complex64::cis(2.2));
        assert_eq!(lib.lookup(&rotated).map(|e| e.duration), Some(26.0));
        assert_eq!(lib.hits(), 1);
        assert_eq!(lib.misses(), 0);
    }

    #[test]
    fn phase_sensitive_misses_rotated_unitary() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseSensitive);
        let h = Gate::H.unitary_matrix();
        lib.insert(&h, entry(26.0));
        let rotated = h.scale(Complex64::cis(2.2));
        assert!(lib.lookup(&rotated).is_none());
        assert!(lib.lookup(&h).is_some());
        assert!((lib.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_gates_do_not_collide() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        lib.insert(&Gate::H.unitary_matrix(), entry(26.0));
        lib.insert(&Gate::X.unitary_matrix(), entry(30.0));
        assert_eq!(lib.len(), 2);
        assert_eq!(
            lib.lookup(&Gate::X.unitary_matrix()).map(|e| e.duration),
            Some(30.0)
        );
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let lib = Arc::new(PulseLibrary::from_config(
            KeyPolicy::PhaseAware,
            &StoreConfig { shards: 4, budget_bytes: None },
        ));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let lib = Arc::clone(&lib);
            handles.push(std::thread::spawn(move || {
                let g = Gate::RZ(t as f64).unitary_matrix();
                lib.insert(&g, entry(10.0 + t as f64));
                lib.lookup(&g).expect("just inserted");
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.hits(), 4);
        assert_eq!(lib.tier(), StoreTier::Sharded);
    }

    #[test]
    fn empty_library_metrics() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert!(lib.is_empty());
        assert_eq!(lib.hit_rate(), 0.0);
        assert_eq!(lib.evictions(), 0);
    }

    #[test]
    fn stable_hash_differs_by_policy_and_gate() {
        let h = Gate::H.unitary_matrix();
        let x = Gate::X.unitary_matrix();
        let pa = |u: &Matrix| CacheKey::phase_aware(UnitaryKey::new(u), 0).stable_hash();
        let ps = |u: &Matrix| CacheKey::phase_sensitive(PhaseSensitiveKey::new(u), 0).stable_hash();
        assert_ne!(pa(&h), pa(&x));
        assert_ne!(pa(&h), ps(&h));
        // Stable across calls (and, by construction, across runs).
        assert_eq!(pa(&h), pa(&h));
    }

    #[test]
    fn keys_are_scoped_to_the_hardware_profile() {
        let h = Gate::H.unitary_matrix();
        let ideal = CacheKey::phase_aware(UnitaryKey::new(&h), 0);
        let awg = CacheKey::phase_aware(UnitaryKey::new(&h), 0xABCD);
        assert_ne!(ideal, awg);
        assert_ne!(ideal.stable_hash(), awg.stable_hash());
        // Two libraries over the same unitaries but different profiles
        // never serve each other's pulses.
        let lib_a = PulseLibrary::new(KeyPolicy::PhaseAware).with_profile_hash(0xABCD);
        lib_a.insert(&h, entry(26.0));
        let lib_b = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_ne!(lib_a.cache_key(&h), lib_b.cache_key(&h));
    }

    #[test]
    fn hw_profile_mismatch_fails_closed_with_typed_error() {
        let awg = PulseLibrary::new(KeyPolicy::PhaseAware).with_profile_hash(0x1234);
        awg.insert(&Gate::H.unitary_matrix(), entry(26.0));
        let path = temp_path("hwmismatch.json");
        save_library_file(&path, &[("grape", &awg)]).unwrap();
        // Loading into an ideal-electronics library must fail closed.
        let ideal = PulseLibrary::new(KeyPolicy::PhaseAware);
        let err = load_library_file(&path, &[("grape", &ideal)]).unwrap_err();
        assert!(
            matches!(
                err,
                LibraryError::HwProfileMismatch { expected: 0, found: 0x1234 }
            ),
            "{err:?}"
        );
        assert!(ideal.is_empty());
        // The matching profile loads fine.
        let same = PulseLibrary::new(KeyPolicy::PhaseAware).with_profile_hash(0x1234);
        assert_eq!(load_library_file(&path, &[("grape", &same)]).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_and_load_round_trips_a_library_file() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        lib.insert(&Gate::H.unitary_matrix(), entry(26.0));
        lib.insert(
            &Gate::X.unitary_matrix(),
            PulseEntry {
                duration: 25.0,
                fidelity: 0.9991,
                n_slots: 13,
                waveform: Some(Arc::new(PulseWaveform::new(
                    2.0,
                    vec![vec![0.1, -0.2, 0.3], vec![0.0, 0.25, -0.5]],
                ))),
            },
        );
        let path = temp_path("roundtrip.json");
        save_library_file(&path, &[("grape", &lib)]).unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(load_library_file(&path, &[("grape", &restored)]).unwrap(), 2);
        assert_eq!(restored.len(), 2);
        assert_eq!(
            restored.peek(&Gate::X.unitary_matrix()),
            lib.peek(&Gate::X.unitary_matrix())
        );
        // Saving the restored library reproduces the file byte-for-byte.
        let path2 = temp_path("roundtrip2.json");
        save_library_file(&path2, &[("grape", &restored)]).unwrap();
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            std::fs::read_to_string(&path2).unwrap()
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn truncated_file_is_detected_as_corrupt() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        lib.insert(&Gate::H.unitary_matrix(), entry(26.0));
        let path = temp_path("torn.json");
        save_library_file(&path, &[("grape", &lib)]).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        let restored = PulseLibrary::new(KeyPolicy::PhaseAware);
        // Every truncation point must be rejected, whether it breaks the
        // JSON or only the checksum.
        for cut in [full.len() / 4, full.len() / 2, full.len() - 2] {
            std::fs::write(&path, &full[..cut]).unwrap();
            let err = load_library_file(&path, &[("grape", &restored)]).unwrap_err();
            assert!(
                matches!(err, LibraryError::Corrupt { .. }),
                "cut at {cut}: unexpected {err:?}"
            );
        }
        assert!(restored.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn policy_mismatch_is_typed() {
        let aware = PulseLibrary::new(KeyPolicy::PhaseAware);
        aware.insert(&Gate::H.unitary_matrix(), entry(26.0));
        let path = temp_path("policy.json");
        save_library_file(&path, &[("grape", &aware)]).unwrap();
        let sensitive = PulseLibrary::new(KeyPolicy::PhaseSensitive);
        let err = load_library_file(&path, &[("grape", &sensitive)]).unwrap_err();
        assert!(matches!(err, LibraryError::PolicyMismatch { .. }), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_section_loads_zero_entries() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        lib.insert(&Gate::H.unitary_matrix(), entry(26.0));
        let path = temp_path("sections.json");
        save_library_file(&path, &[("grape", &lib)]).unwrap();
        let other = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert_eq!(load_library_file(&path, &[("model", &other)]).unwrap(), 0);
        assert!(other.is_empty());
        std::fs::remove_file(&path).ok();
    }
}

//! The pulse library: a concurrent unitary → pulse cache.
//!
//! AccQOC/PAQOC key their lookup tables on the raw unitary; EPOC's
//! improvement (§3.4) is **global-phase-aware** matching — `U` and
//! `e^{iφ}U` need the same pulse, so treating them as one entry raises the
//! hit rate "similar to having a higher cache hit rate". Both policies are
//! implemented so the ablation bench can compare them.

use crate::waveform::PulseWaveform;
use epoc_linalg::{Matrix, PhaseSensitiveKey, UnitaryKey};
use std::sync::Arc;
use std::sync::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Cache key policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyPolicy {
    /// EPOC: unitaries matching up to global phase share an entry.
    PhaseAware,
    /// AccQOC/PAQOC baseline: exact-matrix matching only.
    PhaseSensitive,
}

/// A cached pulse: its duration, realized fidelity, and (for GRAPE
/// solutions) the control waveform itself.
///
/// The waveform rides behind an `Arc`, so cloning an entry — cache hits,
/// the parallel pulse stage's replay — shares one `O(channels × slots)`
/// buffer rather than copying it. It is what the pulse-level simulator
/// (`epoc-sim`) replays against the device Hamiltonian to verify the
/// schedule independently of GRAPE's own objective.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseEntry {
    /// Pulse duration in ns.
    pub duration: f64,
    /// Realized pulse fidelity.
    pub fidelity: f64,
    /// Slot count of the stored solution.
    pub n_slots: usize,
    /// The GRAPE control waveform realizing the pulse (`None` for modeled
    /// pulses and failed duration searches, which have no waveform).
    pub waveform: Option<Arc<PulseWaveform>>,
}

/// A policy-resolved cache key: what [`PulseLibrary::lookup`] hashes
/// internally, exposed so batch schedulers can deduplicate pending
/// misses without touching the hit/miss counters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// Phase-invariant fingerprint.
    PhaseAware(UnitaryKey),
    /// Exact-matrix fingerprint.
    PhaseSensitive(PhaseSensitiveKey),
}

/// A thread-safe pulse library.
///
/// # Examples
///
/// ```
/// use epoc_qoc::{PulseLibrary, PulseEntry, KeyPolicy};
/// use epoc_linalg::{Matrix, Complex64};
///
/// let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
/// let x = Matrix::from_rows(&[
///     &[Complex64::ZERO, Complex64::ONE],
///     &[Complex64::ONE, Complex64::ZERO],
/// ]);
/// lib.insert(&x, PulseEntry { duration: 26.0, fidelity: 0.9995, n_slots: 13, waveform: None });
/// // The same gate with a different global phase hits the cache:
/// let gx = x.scale(Complex64::cis(1.0));
/// assert!(lib.lookup(&gx).is_some());
/// ```
#[derive(Debug)]
pub struct PulseLibrary {
    policy: KeyPolicy,
    phase_aware: RwLock<HashMap<UnitaryKey, PulseEntry>>,
    phase_sensitive: RwLock<HashMap<PhaseSensitiveKey, PulseEntry>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl PulseLibrary {
    /// Creates an empty library with the given key policy.
    pub fn new(policy: KeyPolicy) -> Self {
        Self {
            policy,
            phase_aware: RwLock::new(HashMap::new()),
            phase_sensitive: RwLock::new(HashMap::new()),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// The key policy.
    pub fn policy(&self) -> KeyPolicy {
        self.policy
    }

    /// The key `unitary` resolves to under this library's policy.
    pub fn cache_key(&self, unitary: &Matrix) -> CacheKey {
        match self.policy {
            KeyPolicy::PhaseAware => CacheKey::PhaseAware(UnitaryKey::new(unitary)),
            KeyPolicy::PhaseSensitive => {
                CacheKey::PhaseSensitive(PhaseSensitiveKey::new(unitary))
            }
        }
    }

    /// Counter-free lookup: like [`PulseLibrary::lookup`] but without
    /// recording a hit or miss. Batch schedulers use this to classify
    /// work up front and replay the counter effects serially, so parallel
    /// execution reports byte-identical statistics.
    ///
    /// Fail point `pulse_lib.miss` forces a miss (chaos tests use it to
    /// prove cache loss only costs recomputation, never correctness).
    pub fn peek(&self, unitary: &Matrix) -> Option<PulseEntry> {
        if epoc_rt::faults::fail_point("pulse_lib.miss") {
            return None;
        }
        match self.policy {
            KeyPolicy::PhaseAware => self
                .phase_aware
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(&UnitaryKey::new(unitary))
                .cloned(),
            KeyPolicy::PhaseSensitive => self
                .phase_sensitive
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .get(&PhaseSensitiveKey::new(unitary))
                .cloned(),
        }
    }

    /// Looks up a pulse for `unitary`, counting a hit or miss.
    pub fn lookup(&self, unitary: &Matrix) -> Option<PulseEntry> {
        match self.peek(unitary) {
            Some(e) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                epoc_rt::telemetry::counter_add("pulse_lib.hits", 1);
                Some(e)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                epoc_rt::telemetry::counter_add("pulse_lib.misses", 1);
                None
            }
        }
    }

    /// Inserts (or replaces) the pulse for `unitary`.
    ///
    /// Fail point `pulse_lib.insert` silently drops the insert (chaos
    /// tests use it to prove a lossy cache degrades to recomputation).
    pub fn insert(&self, unitary: &Matrix, entry: PulseEntry) {
        if epoc_rt::faults::fail_point("pulse_lib.insert") {
            return;
        }
        epoc_rt::telemetry::counter_add("pulse_lib.inserts", 1);
        match self.policy {
            KeyPolicy::PhaseAware => {
                self.phase_aware
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(UnitaryKey::new(unitary), entry);
            }
            KeyPolicy::PhaseSensitive => {
                self.phase_sensitive
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(PhaseSensitiveKey::new(unitary), entry);
            }
        }
    }

    /// Number of stored pulses.
    pub fn len(&self) -> usize {
        match self.policy {
            KeyPolicy::PhaseAware => self.phase_aware.read().unwrap_or_else(|e| e.into_inner()).len(),
            KeyPolicy::PhaseSensitive => {
                self.phase_sensitive.read().unwrap_or_else(|e| e.into_inner()).len()
            }
        }
    }

    /// `true` when no pulses are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;
    use epoc_linalg::Complex64;

    fn entry(d: f64) -> PulseEntry {
        PulseEntry {
            duration: d,
            fidelity: 0.9995,
            n_slots: (d / 2.0) as usize,
            waveform: None,
        }
    }

    #[test]
    fn phase_aware_hits_rotated_unitary() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let h = Gate::H.unitary_matrix();
        lib.insert(&h, entry(26.0));
        let rotated = h.scale(Complex64::cis(2.2));
        assert_eq!(lib.lookup(&rotated).map(|e| e.duration), Some(26.0));
        assert_eq!(lib.hits(), 1);
        assert_eq!(lib.misses(), 0);
    }

    #[test]
    fn phase_sensitive_misses_rotated_unitary() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseSensitive);
        let h = Gate::H.unitary_matrix();
        lib.insert(&h, entry(26.0));
        let rotated = h.scale(Complex64::cis(2.2));
        assert!(lib.lookup(&rotated).is_none());
        assert!(lib.lookup(&h).is_some());
        assert!((lib.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_gates_do_not_collide() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        lib.insert(&Gate::H.unitary_matrix(), entry(26.0));
        lib.insert(&Gate::X.unitary_matrix(), entry(30.0));
        assert_eq!(lib.len(), 2);
        assert_eq!(
            lib.lookup(&Gate::X.unitary_matrix()).map(|e| e.duration),
            Some(30.0)
        );
    }

    #[test]
    fn concurrent_access() {
        use std::sync::Arc;
        let lib = Arc::new(PulseLibrary::new(KeyPolicy::PhaseAware));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let lib = Arc::clone(&lib);
            handles.push(std::thread::spawn(move || {
                let g = Gate::RZ(t as f64).unitary_matrix();
                lib.insert(&g, entry(10.0 + t as f64));
                lib.lookup(&g).expect("just inserted");
            }));
        }
        for h in handles {
            h.join().expect("no panics");
        }
        assert_eq!(lib.len(), 4);
        assert_eq!(lib.hits(), 4);
    }

    #[test]
    fn empty_library_metrics() {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        assert!(lib.is_empty());
        assert_eq!(lib.hit_rate(), 0.0);
    }
}

//! Calibrated pulse-duration model.
//!
//! Real GRAPE duration searches are exponential in block width; the paper
//! ran them on a 256-core cluster. Blocks beyond the laptop GRAPE limit
//! use this model instead (see DESIGN.md's substitution table): a block's
//! pulse duration is its gate-level critical path compressed by a *QOC
//! speedup factor*, floored by the device's minimum pulse time — with both
//! constants calibrated against actual GRAPE runs on small blocks
//! ([`DurationModel::calibrate`]).

use crate::device::DeviceModel;
use crate::duration::{minimize_duration, DurationSearchConfig};
use epoc_circuit::{Circuit, CircuitDag, Gate};

/// Calibrated gate durations (ns) for the gate-based baseline, IBM-like.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDurationTable {
    /// Physical single-qubit pulse (X/SX/H/U3…).
    pub single: f64,
    /// Virtual RZ (frame update — free on transmons).
    pub rz: f64,
    /// Two-qubit entangling gate (CX/CZ/…).
    pub two: f64,
    /// Three-qubit gate (decomposed: 6 CX + single-qubit layers).
    pub three: f64,
}

impl Default for GateDurationTable {
    fn default() -> Self {
        Self {
            single: 35.5,
            rz: 0.0,
            two: 300.0,
            three: 6.0 * 300.0 + 8.0 * 35.5,
        }
    }
}

impl GateDurationTable {
    /// Duration of a single gate.
    ///
    /// Opaque unitary blocks are costed by width: 1-qubit VUGs as a
    /// physical single-qubit pulse, wider blocks as their decomposition
    /// equivalent.
    pub fn gate(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::RZ(_) | Gate::Phase(_) | Gate::Z | Gate::S | Gate::Sdg | Gate::T
            | Gate::Tdg | Gate::I => self.rz,
            g if g.arity() == 1 => self.single,
            Gate::Swap => 3.0 * self.two,
            g if g.arity() == 2 => self.two,
            _ => self.three,
        }
    }

    /// Critical-path latency of a circuit under this table.
    pub fn critical_path(&self, circuit: &Circuit) -> f64 {
        let dag = CircuitDag::new(circuit);
        let ops = circuit.ops();
        dag.critical_path(|i| self.gate(&ops[i].gate))
    }
}

/// The calibrated QOC duration model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurationModel {
    /// Multiplier applied to a block's gate-level critical path
    /// (< 1: QOC compresses the schedule).
    pub qoc_factor: f64,
    /// Minimum pulse duration (ns) — no pulse is shorter than this.
    pub min_pulse: f64,
    /// Fixed per-pulse overhead (ns): ring-up/ring-down plus the inter-pulse
    /// buffer real instruments insert (IBM backends use 10–20 ns).
    pub overhead: f64,
    /// Within-block absorption of single-qubit content: XY drives run
    /// concurrently with the entangling evolution, so single-qubit gates
    /// inside a QOC block contribute only this fraction of their
    /// calibrated standalone duration (GRAPE folds them into the
    /// entangling pulse nearly for free — see the `[H·CX]` vs `[CX]`
    /// calibration runs).
    pub absorption: f64,
    /// Modeled pulse fidelity (mean of calibration runs).
    pub pulse_fidelity: f64,
    /// Gate table used for the critical path.
    pub gate_table: GateDurationTable,
}

impl Default for DurationModel {
    fn default() -> Self {
        // Values measured by `calibrate` on the transmon_line model
        // (regenerate with the calibration bench; see EXPERIMENTS.md).
        Self {
            qoc_factor: 0.55,
            min_pulse: 12.0,
            overhead: 16.0,
            absorption: 0.3,
            pulse_fidelity: 0.9992,
            gate_table: GateDurationTable::default(),
        }
    }
}

impl DurationModel {
    /// Modeled pulse duration for a block given its local circuit.
    pub fn block_duration(&self, local_circuit: &Circuit) -> f64 {
        // Single-qubit content is absorbed into the entangling evolution —
        // but only when there *is* one: a block of pure single-qubit gates
        // still needs its full drive time (bounded by the amplitude limit).
        let has_entangler = local_circuit.ops().iter().any(|op| op.qubits.len() >= 2);
        let dag = epoc_circuit::CircuitDag::new(local_circuit);
        let ops = local_circuit.ops();
        let gate_cp = dag.critical_path(|i| {
            let g = &ops[i].gate;
            let base = self.gate_table.gate(g);
            if g.arity() == 1 && has_entangler {
                base * self.absorption
            } else {
                base
            }
        });
        if gate_cp <= 0.0 {
            // Purely virtual content (frame updates): no physical pulse.
            return 0.0;
        }
        (self.qoc_factor * gate_cp + self.overhead).max(self.min_pulse)
    }

    /// Modeled pulse duration when only a unitary's width is known:
    /// assumes a worst-case dense block of that width.
    pub fn width_duration(&self, n_qubits: usize) -> f64 {
        // Worst-case CNOT count for n qubits ~ (4^n - 3n - 1) / 4, each
        // contributing a two-qubit critical-path step.
        let n = n_qubits as f64;
        let cnots = ((4f64.powf(n) - 3.0 * n - 1.0) / 4.0).max(1.0);
        let per_wire = cnots * 2.0 / n; // spread across wires
        (self.qoc_factor * per_wire * self.gate_table.two + self.overhead).max(self.min_pulse)
    }

    /// Calibrates the model against real GRAPE duration searches on the
    /// standard device family. Deterministic and slow (seconds in release)
    /// — used by the calibration bench, not on the pipeline hot path.
    pub fn calibrate() -> Self {
        let table = GateDurationTable::default();
        let mut ratios: Vec<f64> = Vec::new();
        let mut fidelities: Vec<f64> = Vec::new();
        let mut min_pulse = f64::INFINITY;

        // 1-qubit samples.
        let d1 = DeviceModel::transmon_line(1).expect("1-qubit model always supported");
        for gate in [Gate::X, Gate::H, Gate::Sx] {
            if let Ok(sol) = minimize_duration(
                &d1,
                &gate.unitary_matrix(),
                &DurationSearchConfig::default(),
            ) {
                let mut c = Circuit::new(1);
                c.push(gate, &[0]);
                ratios.push(sol.result.duration / table.critical_path(&c).max(1.0));
                fidelities.push(sol.result.fidelity);
                min_pulse = min_pulse.min(sol.result.duration);
            }
        }
        // 2-qubit samples; also measure 1q absorption from the duration
        // difference between a bare CX block and an H·CX·T block.
        let d2 = DeviceModel::transmon_line(2).expect("2-qubit model always supported");
        let search2 = DurationSearchConfig {
            max_slots: 1024,
            ..Default::default()
        };
        let mut cx = Circuit::new(2);
        cx.push(Gate::CX, &[0, 1]);
        let mut blk = Circuit::new(2);
        blk.push(Gate::H, &[0])
            .push(Gate::CX, &[0, 1])
            .push(Gate::T, &[1]);
        let mut absorption = 0.3;
        let cx_sol = minimize_duration(&d2, &cx.unitary(), &search2).ok();
        let blk_sol = minimize_duration(&d2, &blk.unitary(), &search2).ok();
        if let (Some(a), Some(b)) = (&cx_sol, &blk_sol) {
            // Extra pulse time the H added, as a fraction of a standalone
            // single-qubit pulse (the T is virtual).
            let single = table.single.max(1.0);
            absorption = ((b.result.duration - a.result.duration) / single).clamp(0.0, 1.0);
        }
        for (c, sol) in [(cx, cx_sol), (blk, blk_sol)] {
            if let Some(sol) = sol {
                ratios.push(sol.result.duration / table.critical_path(&c).max(1.0));
                fidelities.push(sol.result.fidelity);
            }
        }
        let qoc_factor = if ratios.is_empty() {
            0.55
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        };
        let pulse_fidelity = if fidelities.is_empty() {
            0.9992
        } else {
            fidelities.iter().sum::<f64>() / fidelities.len() as f64
        };
        Self {
            qoc_factor,
            min_pulse: if min_pulse.is_finite() { min_pulse / 2.0 } else { 12.0 },
            overhead: 16.0,
            absorption,
            pulse_fidelity,
            gate_table: table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_table_defaults() {
        let t = GateDurationTable::default();
        assert_eq!(t.gate(&Gate::RZ(0.5)), 0.0);
        assert_eq!(t.gate(&Gate::X), 35.5);
        assert_eq!(t.gate(&Gate::CX), 300.0);
        assert_eq!(t.gate(&Gate::Swap), 900.0);
        assert!(t.gate(&Gate::CCX) > 1800.0);
        let vug = Gate::unitary("vug", Gate::H.unitary_matrix());
        assert_eq!(t.gate(&vug), 35.5);
    }

    #[test]
    fn critical_path_respects_parallelism() {
        let t = GateDurationTable::default();
        let mut c = Circuit::new(4);
        c.push(Gate::X, &[0])
            .push(Gate::X, &[1])
            .push(Gate::X, &[2])
            .push(Gate::X, &[3]);
        assert!((t.critical_path(&c) - 35.5).abs() < 1e-9);
        c.push(Gate::CX, &[0, 1]);
        assert!((t.critical_path(&c) - 335.5).abs() < 1e-9);
    }

    #[test]
    fn block_duration_compresses_critical_path() {
        let m = DurationModel::default();
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]).push(Gate::H, &[1]);
        let gate_cp = m.gate_table.critical_path(&c);
        let qoc = m.block_duration(&c);
        assert!(qoc < gate_cp, "model does not compress: {qoc} vs {gate_cp}");
        assert!(qoc >= m.min_pulse);
    }

    #[test]
    fn virtual_only_blocks_are_free() {
        let m = DurationModel::default();
        let mut c = Circuit::new(1);
        c.push(Gate::RZ(0.1), &[0]);
        assert_eq!(m.block_duration(&c), 0.0);
    }

    #[test]
    fn physical_blocks_respect_floors() {
        let m = DurationModel::default();
        let mut c = Circuit::new(1);
        c.push(Gate::Sx, &[0]);
        let d = m.block_duration(&c);
        assert!(d >= m.min_pulse);
        assert!(d >= m.overhead);
    }

    #[test]
    fn width_duration_grows_with_qubits() {
        let m = DurationModel::default();
        assert!(m.width_duration(2) < m.width_duration(3));
        assert!(m.width_duration(3) < m.width_duration(4));
    }
}

//! Pulse-library storage tiers.
//!
//! [`PulseLibrary`](crate::PulseLibrary) used to be a pair of hard-coded
//! `RwLock<HashMap>`s; a long-running compilation service needs the
//! storage swappable, so it now sits behind the [`PulseStore`] trait with
//! three tiers:
//!
//! * [`MemoryStore`] — the original single-lock map, right for one-shot
//!   `epocc` runs and tests;
//! * [`ShardedStore`] — N shards keyed by a stable hash of the
//!   [`CacheKey`], each behind its own `RwLock`, so concurrent compile
//!   jobs in `epocd` don't serialize on one lock;
//! * [`BudgetedStore`] — the disk-backed tier's in-memory core: sharded
//!   *plus* an LRU-ish eviction policy under a configurable byte budget,
//!   so a service that compiles millions of circuits doesn't grow its
//!   library without bound.
//!
//! Persistence (load-on-start / save-on-checkpoint) is layered on top in
//! [`crate::library`]: any store can snapshot its entries in a
//! deterministic order, so any store can be persisted and restored.
//!
//! # Determinism
//!
//! The pipeline only touches the library from its *serial* phases
//! (classification and replay — see the 4-stage scheme in
//! `epoc::pipeline`), so the LRU clock advances in a deterministic order
//! and eviction decisions are byte-identical at any worker count.
//! [`PulseStore::snapshot`] sorts by key, so persisted files are
//! byte-deterministic too.

use crate::library::{CacheKey, KeyPolicy, PulseEntry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Which storage tier a store implements, used to label per-tier
/// telemetry (lookup-latency histograms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreTier {
    /// Single-lock in-memory map.
    Memory,
    /// Sharded concurrent map.
    Sharded,
    /// Sharded map with a byte budget and LRU-ish eviction (the
    /// persistable service tier).
    Budgeted,
}

impl StoreTier {
    /// The telemetry histogram lookup latencies of this tier land in.
    pub fn lookup_histogram(self) -> &'static str {
        match self {
            StoreTier::Memory => "pulse_lib.lookup_ns.memory",
            StoreTier::Sharded => "pulse_lib.lookup_ns.sharded",
            StoreTier::Budgeted => "pulse_lib.lookup_ns.budgeted",
        }
    }
}

/// How a [`crate::PulseLibrary`] stores its entries.
///
/// Implementations must be thread-safe; `get`/`put` are called
/// concurrently by callers outside the pipeline (the pipeline itself
/// only touches the library serially, which is what makes eviction
/// deterministic — see the module docs).
pub trait PulseStore: Send + Sync + std::fmt::Debug {
    /// Retrieves the entry for `key`, updating recency metadata where the
    /// tier tracks it.
    fn get(&self, key: &CacheKey) -> Option<PulseEntry>;

    /// Inserts (or replaces) the entry for `key`, evicting as the tier's
    /// policy demands.
    fn put(&self, key: CacheKey, entry: PulseEntry);

    /// Number of stored entries.
    fn len(&self) -> usize;

    /// `true` when no entries are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident bytes of all stored entries (waveforms
    /// dominate; see [`entry_bytes`]).
    fn approx_bytes(&self) -> u64;

    /// Entries evicted since construction (0 for unbounded tiers).
    fn evictions(&self) -> u64 {
        0
    }

    /// All entries, sorted by key — a deterministic order regardless of
    /// insertion history, hash layout, or recency stamps. The persistence
    /// layer serializes this, so library files are byte-reproducible.
    fn snapshot(&self) -> Vec<(CacheKey, PulseEntry)>;

    /// Removes every entry.
    fn clear(&self);

    /// The tier this store implements.
    fn tier(&self) -> StoreTier;
}

/// Applies resident-size deltas to the process-global library gauges.
/// Every tier funnels its put/evict/clear accounting through here, so
/// `pulse_lib.resident_bytes` / `pulse_lib.entries` stay correct even
/// when several libraries (the GRAPE and model sections of one compiler,
/// or several compilers) share the one telemetry registry — deltas are
/// commutative where absolute sets would clobber each other.
fn gauge_resident(bytes_delta: i64, entries_delta: i64) {
    epoc_rt::telemetry::gauge_add("pulse_lib.resident_bytes", bytes_delta);
    epoc_rt::telemetry::gauge_add("pulse_lib.entries", entries_delta);
}

/// Estimated resident size of one cache entry: the waveform payload
/// (which dominates), the quantized key cells, and a fixed allowance for
/// map/Arc overhead. An estimate is enough — the budget is a resource
/// guard, not an allocator ledger.
pub fn entry_bytes(key: &CacheKey, entry: &PulseEntry) -> u64 {
    let waveform = entry
        .waveform
        .as_ref()
        .map_or(0, |w| (w.n_channels() * w.n_slots() * 8) as u64);
    waveform + (key.cell_count() * 8) as u64 + 96
}

/// Configuration of the library's storage tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Shard count. `1` selects the single-lock [`MemoryStore`]; larger
    /// values select the [`ShardedStore`] (or shard the budgeted tier).
    pub shards: usize,
    /// Byte budget. `Some` selects the [`BudgetedStore`] with LRU-ish
    /// eviction at this resident-size cap; `None` stores grow unbounded.
    pub budget_bytes: Option<u64>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self { shards: 1, budget_bytes: None }
    }
}

impl StoreConfig {
    /// Builds the store this configuration describes.
    pub fn build(&self) -> Box<dyn PulseStore> {
        let shards = self.shards.max(1);
        match self.budget_bytes {
            Some(budget) => Box::new(BudgetedStore::new(shards, budget)),
            None if shards > 1 => Box::new(ShardedStore::new(shards)),
            None => Box::new(MemoryStore::new()),
        }
    }
}

/// A pulse-library persistence failure. Torn, truncated, or otherwise
/// corrupted library files surface here — callers degrade to a cold
/// cache rather than panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LibraryError {
    /// Reading or writing the library file failed.
    Io {
        /// The file involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// The file exists but is not a valid library: truncated JSON, a
    /// checksum mismatch (torn write), an unsupported version, or a
    /// malformed entry.
    Corrupt {
        /// The file involved.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The file stores entries for a different key policy than the
    /// library it was loaded into.
    PolicyMismatch {
        /// The loading library's policy.
        expected: KeyPolicy,
        /// The policy named in the file.
        found: String,
    },
    /// The file stores pulses optimized under a different hardware
    /// profile than the library it was loaded into: serving them would
    /// silently play mis-conditioned waveforms, so the load fails closed
    /// and the caller compiles cold.
    HwProfileMismatch {
        /// The loading library's profile hash (0 = ideal electronics).
        expected: u64,
        /// The profile hash recorded in the file.
        found: u64,
    },
}

impl std::fmt::Display for LibraryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io { path, message } => write!(f, "library file {path}: {message}"),
            Self::Corrupt { path, reason } => {
                write!(f, "library file {path} is corrupt: {reason}")
            }
            Self::PolicyMismatch { expected, found } => write!(
                f,
                "library key-policy mismatch: store uses {expected:?}, file holds '{found}'"
            ),
            Self::HwProfileMismatch { expected, found } => write!(
                f,
                "library hardware-profile mismatch: store expects {expected:016x}, \
                 file holds {found:016x}"
            ),
        }
    }
}

impl std::error::Error for LibraryError {}

/// The original single-lock in-memory store.
#[derive(Debug, Default)]
pub struct MemoryStore {
    map: RwLock<HashMap<CacheKey, PulseEntry>>,
    bytes: AtomicU64,
}

impl MemoryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PulseStore for MemoryStore {
    fn get(&self, key: &CacheKey) -> Option<PulseEntry> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    fn put(&self, key: CacheKey, entry: PulseEntry) {
        let added = entry_bytes(&key, &entry);
        let mut delta = added as i64;
        let mut new_entries = 1i64;
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = map.insert(key.clone(), entry) {
            let removed = entry_bytes(&key, &old);
            self.bytes.fetch_sub(removed, Ordering::Relaxed);
            delta -= removed as i64;
            new_entries = 0;
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
        gauge_resident(delta, new_entries);
    }

    fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn approx_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Vec<(CacheKey, PulseEntry)> {
        let map = self.map.read().unwrap_or_else(|e| e.into_inner());
        let mut all: Vec<_> = map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    fn clear(&self) {
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        let dropped = map.len() as i64;
        map.clear();
        let bytes = self.bytes.swap(0, Ordering::Relaxed);
        gauge_resident(-(bytes as i64), -dropped);
    }

    fn tier(&self) -> StoreTier {
        StoreTier::Memory
    }
}

/// N independent shards, each behind its own lock: concurrent lookups of
/// different blocks proceed without contention. Shard choice hashes the
/// key with a stable (cross-run) FNV, so the same key always lands in the
/// same shard — a prerequisite for deterministic eviction in the budgeted
/// tier built on the same layout.
#[derive(Debug)]
pub struct ShardedStore {
    shards: Vec<RwLock<HashMap<CacheKey, PulseEntry>>>,
    bytes: AtomicU64,
}

impl ShardedStore {
    /// Creates an empty store with `shards` shards (at least 1).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| RwLock::new(HashMap::new())).collect(),
            bytes: AtomicU64::new(0),
        }
    }

    /// The shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<HashMap<CacheKey, PulseEntry>> {
        let idx = (key.stable_hash() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }
}

impl PulseStore for ShardedStore {
    fn get(&self, key: &CacheKey) -> Option<PulseEntry> {
        self.shard(key)
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    fn put(&self, key: CacheKey, entry: PulseEntry) {
        let added = entry_bytes(&key, &entry);
        let mut delta = added as i64;
        let mut new_entries = 1i64;
        let shard = self.shard(&key);
        let mut map = shard.write().unwrap_or_else(|e| e.into_inner());
        if let Some(old) = map.insert(key.clone(), entry) {
            let removed = entry_bytes(&key, &old);
            self.bytes.fetch_sub(removed, Ordering::Relaxed);
            delta -= removed as i64;
            new_entries = 0;
        }
        self.bytes.fetch_add(added, Ordering::Relaxed);
        gauge_resident(delta, new_entries);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    fn approx_bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Vec<(CacheKey, PulseEntry)> {
        let mut all = Vec::new();
        for s in &self.shards {
            let map = s.read().unwrap_or_else(|e| e.into_inner());
            all.extend(map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    fn clear(&self) {
        let mut dropped = 0i64;
        for s in &self.shards {
            let mut map = s.write().unwrap_or_else(|e| e.into_inner());
            dropped += map.len() as i64;
            map.clear();
        }
        let bytes = self.bytes.swap(0, Ordering::Relaxed);
        gauge_resident(-(bytes as i64), -dropped);
    }

    fn tier(&self) -> StoreTier {
        StoreTier::Sharded
    }
}

/// One entry plus its last-touch stamp on the shard's logical clock.
#[derive(Debug)]
struct Slot {
    entry: PulseEntry,
    stamp: u64,
}

/// A budgeted shard: its map, a logical clock (bumped on every get/put,
/// so stamps are unique and eviction order has no ties), and a running
/// byte total.
#[derive(Debug, Default)]
struct BudgetedShard {
    map: HashMap<CacheKey, Slot>,
    clock: u64,
    bytes: u64,
}

/// The service tier: sharded storage with an LRU-ish eviction policy
/// under a byte budget. The budget is split evenly across shards (each
/// shard evicts independently, so no cross-shard lock is ever held), and
/// is *strict*: inserting an entry evicts least-recently-used entries
/// until the shard fits, and an entry that alone exceeds the shard budget
/// is not stored at all — the caller already holds the computed value,
/// and a later lookup simply recomputes (the schedule stage's recompute
/// rung absorbs exactly this case).
#[derive(Debug)]
pub struct BudgetedStore {
    shards: Vec<RwLock<BudgetedShard>>,
    shard_budget: u64,
    evictions: AtomicU64,
}

impl BudgetedStore {
    /// Creates an empty store with `shards` shards (at least 1) sharing
    /// `budget_bytes` of resident-size budget.
    pub fn new(shards: usize, budget_bytes: u64) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| RwLock::new(BudgetedShard::default())).collect(),
            shard_budget: (budget_bytes / n as u64).max(1),
            evictions: AtomicU64::new(0),
        }
    }

    /// The per-shard slice of the byte budget.
    pub fn shard_budget(&self) -> u64 {
        self.shard_budget
    }

    /// The shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: &CacheKey) -> &RwLock<BudgetedShard> {
        let idx = (key.stable_hash() % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Evicts least-recently-used entries until `shard` fits its budget.
    fn enforce_budget(&self, shard: &mut BudgetedShard) {
        while shard.bytes > self.shard_budget && !shard.map.is_empty() {
            // Unique stamps mean a unique minimum: eviction order is a
            // pure function of the access history.
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty shard has a minimum");
            if let Some(slot) = shard.map.remove(&victim) {
                let removed = entry_bytes(&victim, &slot.entry);
                shard.bytes -= removed;
                self.evictions.fetch_add(1, Ordering::Relaxed);
                epoc_rt::telemetry::counter_add("pulse_lib.evictions", 1);
                gauge_resident(-(removed as i64), -1);
            }
        }
    }
}

impl PulseStore for BudgetedStore {
    fn get(&self, key: &CacheKey) -> Option<PulseEntry> {
        // Write lock even on the read path: a hit refreshes the entry's
        // recency stamp.
        let mut shard = self.shard(key).write().unwrap_or_else(|e| e.into_inner());
        let clock = shard.clock + 1;
        shard.clock = clock;
        shard.map.get_mut(key).map(|slot| {
            slot.stamp = clock;
            slot.entry.clone()
        })
    }

    fn put(&self, key: CacheKey, entry: PulseEntry) {
        let added = entry_bytes(&key, &entry);
        let mut delta = added as i64;
        let mut new_entries = 1i64;
        let lock = self.shard(&key);
        let mut shard = lock.write().unwrap_or_else(|e| e.into_inner());
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(old) = shard.map.insert(key.clone(), Slot { entry, stamp }) {
            let removed = entry_bytes(&key, &old.entry);
            shard.bytes -= removed;
            delta -= removed as i64;
            new_entries = 0;
        }
        shard.bytes += added;
        gauge_resident(delta, new_entries);
        self.enforce_budget(&mut shard);
    }

    fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    fn approx_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(|e| e.into_inner()).bytes)
            .sum()
    }

    fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> Vec<(CacheKey, PulseEntry)> {
        let mut all = Vec::new();
        for s in &self.shards {
            let shard = s.read().unwrap_or_else(|e| e.into_inner());
            all.extend(shard.map.iter().map(|(k, v)| (k.clone(), v.entry.clone())));
        }
        all.sort_by(|a, b| a.0.cmp(&b.0));
        all
    }

    fn clear(&self) {
        let mut dropped = 0i64;
        let mut bytes = 0i64;
        for s in &self.shards {
            let mut shard = s.write().unwrap_or_else(|e| e.into_inner());
            dropped += shard.map.len() as i64;
            bytes += shard.bytes as i64;
            shard.map.clear();
            shard.bytes = 0;
        }
        gauge_resident(-bytes, -dropped);
    }

    fn tier(&self) -> StoreTier {
        StoreTier::Budgeted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::PulseWaveform;
    use std::sync::Arc;

    /// A distinct key per index: diagonal phase gates quantize to
    /// distinct cells.
    fn key(i: usize) -> CacheKey {
        let u = epoc_circuit::Gate::RZ(0.1 + i as f64 * 0.17).unitary_matrix();
        CacheKey::phase_aware(epoc_linalg::UnitaryKey::new(&u), 0)
    }

    /// An entry whose waveform is `slots` slots on one channel, so
    /// `entry_bytes` grows by 8 per slot.
    fn entry(slots: usize) -> PulseEntry {
        PulseEntry {
            duration: slots as f64 * 2.0,
            fidelity: 0.999,
            n_slots: slots,
            waveform: Some(Arc::new(PulseWaveform::new(
                2.0,
                vec![(0..slots).map(|s| s as f64 * 0.01).collect()],
            ))),
        }
    }

    fn one_entry_bytes() -> u64 {
        entry_bytes(&key(0), &entry(16))
    }

    #[test]
    fn memory_store_round_trips_and_tracks_bytes() {
        let s = MemoryStore::new();
        assert!(s.is_empty());
        s.put(key(0), entry(16));
        assert_eq!(s.len(), 1);
        assert_eq!(s.approx_bytes(), one_entry_bytes());
        assert_eq!(s.get(&key(0)), Some(entry(16)));
        assert_eq!(s.get(&key(1)), None);
        // Replacement swaps the byte accounting, not doubles it.
        s.put(key(0), entry(32));
        assert_eq!(s.len(), 1);
        assert_eq!(s.approx_bytes(), entry_bytes(&key(0), &entry(32)));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.approx_bytes(), 0);
    }

    #[test]
    fn sharded_store_spreads_and_finds_keys() {
        let s = ShardedStore::new(4);
        assert_eq!(s.n_shards(), 4);
        for i in 0..16 {
            s.put(key(i), entry(4));
        }
        assert_eq!(s.len(), 16);
        for i in 0..16 {
            assert!(s.get(&key(i)).is_some(), "key {i} lost");
        }
        // More than one shard is actually populated.
        let occupied = s
            .shards
            .iter()
            .filter(|sh| !sh.read().unwrap().is_empty())
            .count();
        assert!(occupied > 1, "all 16 keys hashed into one shard");
    }

    #[test]
    fn snapshot_is_sorted_and_identical_across_layouts() {
        let mem = MemoryStore::new();
        let sharded = ShardedStore::new(3);
        // Insert in different orders; snapshots must still agree.
        for i in 0..8 {
            mem.put(key(i), entry(i + 1));
        }
        for i in (0..8).rev() {
            sharded.put(key(i), entry(i + 1));
        }
        let a = mem.snapshot();
        let b = sharded.snapshot();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].0 < w[1].0), "snapshot unsorted");
    }

    #[test]
    fn budget_is_respected() {
        // Room for ~3 of the 16-slot entries in one shard.
        let per_entry = one_entry_bytes();
        let s = BudgetedStore::new(1, per_entry * 3);
        for i in 0..10 {
            s.put(key(i), entry(16));
        }
        assert!(
            s.approx_bytes() <= per_entry * 3,
            "budget exceeded: {} > {}",
            s.approx_bytes(),
            per_entry * 3
        );
        assert_eq!(s.len(), 3);
        assert_eq!(s.evictions(), 7);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let per_entry = one_entry_bytes();
        let run = || -> Vec<(CacheKey, PulseEntry)> {
            let s = BudgetedStore::new(1, per_entry * 2);
            s.put(key(0), entry(16));
            s.put(key(1), entry(16));
            // Touch key 0 so key 1 becomes the LRU victim.
            assert!(s.get(&key(0)).is_some());
            s.put(key(2), entry(16));
            assert!(s.get(&key(0)).is_some(), "recently-used entry evicted");
            assert!(s.get(&key(1)).is_none(), "LRU entry survived");
            assert!(s.get(&key(2)).is_some());
            s.snapshot()
        };
        // The same op sequence leaves byte-identical state.
        assert_eq!(run(), run());
    }

    #[test]
    fn oversized_entry_is_not_stored() {
        let s = BudgetedStore::new(1, 64);
        s.put(key(0), entry(512));
        assert_eq!(s.len(), 0, "entry larger than the whole budget was kept");
        assert_eq!(s.approx_bytes(), 0);
        assert_eq!(s.evictions(), 1);
    }

    #[test]
    fn store_config_builds_the_right_tier() {
        assert_eq!(StoreConfig::default().build().tier(), StoreTier::Memory);
        let sharded = StoreConfig { shards: 8, budget_bytes: None };
        assert_eq!(sharded.build().tier(), StoreTier::Sharded);
        let budgeted = StoreConfig { shards: 8, budget_bytes: Some(1 << 20) };
        assert_eq!(budgeted.build().tier(), StoreTier::Budgeted);
        // Degenerate shard counts clamp rather than panic.
        let zero = StoreConfig { shards: 0, budget_bytes: Some(1024) };
        zero.build().put(key(0), entry(1));
    }

    #[test]
    fn library_error_display_names_the_file() {
        let e = LibraryError::Corrupt { path: "lib.json".into(), reason: "torn".into() };
        assert!(e.to_string().contains("lib.json"));
        assert!(e.to_string().contains("torn"));
        let m = LibraryError::PolicyMismatch {
            expected: KeyPolicy::PhaseAware,
            found: "phase_sensitive".into(),
        };
        assert!(m.to_string().contains("phase_sensitive"));
    }
}

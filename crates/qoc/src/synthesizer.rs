//! Pulse synthesizer backends.
//!
//! A [`PulseSynthesizer`] turns a unitary block into a pulse (duration +
//! fidelity). Three backends:
//!
//! * [`GrapeSynthesizer`] — real GRAPE + duration binary search against
//!   the simulated device, with a [`PulseLibrary`] cache in front;
//! * [`ModeledSynthesizer`] — the calibrated [`DurationModel`];
//! * [`HybridSynthesizer`] — GRAPE up to a width limit, model beyond
//!   (the default for the benchmark harness).

use crate::device::{DeviceError, DeviceModel};
use crate::duration::{minimize_duration_with_cancel, DurationError, DurationSearchConfig};
use crate::grape::GrapeError;
use crate::library::{KeyPolicy, PulseEntry, PulseLibrary};
use crate::model::DurationModel;
use crate::store::StoreConfig;
use crate::waveform::PulseWaveform;
use epoc_circuit::Circuit;
use epoc_linalg::Matrix;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A pulse-synthesis failure.
#[derive(Debug, Clone, PartialEq)]
pub enum PulseError {
    /// A GRAPE probe failed outright (bad inputs or numerics).
    Grape(GrapeError),
    /// The block is wider than the backend's GRAPE cap.
    TooWide {
        /// Requested block width.
        n_qubits: usize,
        /// The backend's width cap.
        max: usize,
    },
    /// The backend needs the block unitary but the request carried none.
    MissingUnitary,
    /// The device model for the block width could not be built.
    Device(DeviceError),
    /// Strict mode: the fidelity target was missed after every recovery
    /// rung (non-strict backends degrade to a digital fallback instead).
    Unconverged {
        /// Best fidelity any rung reached.
        fidelity: f64,
        /// The fidelity target that was missed.
        threshold: f64,
    },
}

impl std::fmt::Display for PulseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Grape(e) => e.fmt(f),
            Self::TooWide { n_qubits, max } => {
                write!(f, "block of {n_qubits} qubits exceeds GRAPE limit {max}")
            }
            Self::MissingUnitary => write!(f, "GRAPE backend needs the block unitary"),
            Self::Device(e) => e.fmt(f),
            Self::Unconverged { fidelity, threshold } => write!(
                f,
                "pulse fidelity {fidelity:.6} missed target {threshold:.6} after every recovery rung (strict mode)"
            ),
        }
    }
}

impl std::error::Error for PulseError {}

impl From<GrapeError> for PulseError {
    fn from(e: GrapeError) -> Self {
        Self::Grape(e)
    }
}

impl From<DeviceError> for PulseError {
    fn from(e: DeviceError) -> Self {
        Self::Device(e)
    }
}

/// Recovery-ladder rung label: escalated GRAPE restarts.
pub const RUNG_GRAPE_RESTARTS: &str = "recovery.grape.restarts";
/// Recovery-ladder rung label: escalated slot cap (longer pulse).
pub const RUNG_GRAPE_SLOTS: &str = "recovery.grape.slots";
/// Recovery-ladder rung label: digital fallback after all escalations.
pub const RUNG_GRAPE_DIGITAL: &str = "recovery.grape.digital";

/// A pulse entry together with the recovery rungs climbed to produce it
/// (empty when the base attempt succeeded). Rung labels double as
/// `recovery.*` telemetry counter names.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredPulse {
    /// The pulse (possibly from an escalated or fallback rung).
    pub entry: PulseEntry,
    /// Ladder rungs climbed, in order.
    pub rungs: Vec<&'static str>,
}

/// What a pulse is requested for.
#[derive(Debug, Clone, Copy)]
pub struct PulseRequest<'a> {
    /// Width of the block.
    pub n_qubits: usize,
    /// Dense unitary, when available (required by GRAPE).
    pub unitary: Option<&'a Matrix>,
    /// The block's local circuit, when available (used by the model).
    pub local_circuit: Option<&'a Circuit>,
}

/// A backend that produces pulses for unitary blocks.
pub trait PulseSynthesizer: Send + Sync {
    /// Produces (or retrieves) the pulse for a block.
    ///
    /// # Errors
    ///
    /// Returns [`PulseError`] when the request cannot be served (wrong
    /// width, missing unitary, numerical failure, or a strict-mode
    /// fidelity miss).
    fn pulse(&self, request: &PulseRequest<'_>) -> Result<PulseEntry, PulseError>;

    /// Human-readable backend name.
    fn name(&self) -> &str;
}

/// Real-GRAPE backend with pulse-library caching.
pub struct GrapeSynthesizer {
    library: PulseLibrary,
    devices: Mutex<HashMap<usize, DeviceModel>>,
    search: DurationSearchConfig,
    /// Width cap — requests beyond it error (route them to a hybrid).
    max_qubits: usize,
    /// GRAPE iterations spent by this backend across all searches.
    iterations: AtomicUsize,
    /// Duration-search GRAPE probes spent by this backend.
    probes: AtomicUsize,
}

impl GrapeSynthesizer {
    /// Creates a GRAPE backend with the given cache policy.
    pub fn new(policy: KeyPolicy, search: DurationSearchConfig, max_qubits: usize) -> Self {
        Self::with_store_config(policy, search, max_qubits, &StoreConfig::default())
    }

    /// Like [`GrapeSynthesizer::new`] with an explicit library storage
    /// tier (sharded and/or byte-budgeted — see [`StoreConfig`]).
    pub fn with_store_config(
        policy: KeyPolicy,
        search: DurationSearchConfig,
        max_qubits: usize,
        store: &StoreConfig,
    ) -> Self {
        // Scope the cache to the hardware profile GRAPE optimizes under:
        // constrained pulses are only correct for their control stack, so
        // the profile hash is part of every cache key (and the persisted
        // section header).
        let profile_hash = epoc_hw::profile_hash(search.grape.hw.as_ref());
        Self {
            library: PulseLibrary::from_config(policy, store).with_profile_hash(profile_hash),
            devices: Mutex::new(HashMap::new()),
            search,
            max_qubits: max_qubits.clamp(1, 6),
            iterations: AtomicUsize::new(0),
            probes: AtomicUsize::new(0),
        }
    }

    /// The cache.
    pub fn library(&self) -> &PulseLibrary {
        &self.library
    }

    /// Width cap.
    pub fn max_qubits(&self) -> usize {
        self.max_qubits
    }

    /// GRAPE iterations spent so far (every Adam step of every restart of
    /// every probe, including failed probes).
    pub fn total_iterations(&self) -> usize {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Duration-search GRAPE probes run so far.
    pub fn total_probes(&self) -> usize {
        self.probes.load(Ordering::Relaxed)
    }

    fn device_for(&self, n: usize) -> Result<DeviceModel, PulseError> {
        // Poison-recovering lock: the map only caches immutable device
        // models, so state left by a panicked thread is still valid.
        let mut devices = self.devices.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(d) = devices.get(&n) {
            return Ok(d.clone());
        }
        let d = DeviceModel::transmon_line(n)?;
        devices.insert(n, d.clone());
        Ok(d)
    }

    /// Runs the duration search for `unitary` — escalating through the
    /// configured [recovery ladder](crate::GrapeRecoveryPolicy) on a
    /// below-threshold result — without consulting or updating the
    /// library. Deterministic given the inputs, so batch schedulers can
    /// compute cache misses out of order in parallel and replay the
    /// library bookkeeping (and recovery records) serially.
    ///
    /// # Errors
    ///
    /// Returns [`PulseError`] when `n_qubits` exceeds the width cap, a
    /// probe fails numerically, or (strict mode) the fidelity target is
    /// missed after every rung.
    pub fn compute_uncached(
        &self,
        n_qubits: usize,
        unitary: &Matrix,
    ) -> Result<RecoveredPulse, PulseError> {
        self.compute_uncached_with_cancel(n_qubits, unitary, &epoc_rt::cancel::CancelScope::none())
    }

    /// [`GrapeSynthesizer::compute_uncached`] with a cooperative-
    /// cancellation scope. The scope's GRAPE-iteration budget spans every
    /// rung of the recovery ladder: once exhausted, each remaining
    /// attempt's Adam loops break immediately, so the ladder falls
    /// through deterministically to the digital fallback (or a strict
    /// error) regardless of worker count.
    ///
    /// # Errors
    ///
    /// All of [`GrapeSynthesizer::compute_uncached`]'s errors; a hard
    /// cancel (flag or deadline) surfaces as [`PulseError::Grape`]
    /// wrapping [`GrapeError::Canceled`] and aborts the ladder.
    pub fn compute_uncached_with_cancel(
        &self,
        n_qubits: usize,
        unitary: &Matrix,
        cancel: &epoc_rt::cancel::CancelScope,
    ) -> Result<RecoveredPulse, PulseError> {
        if n_qubits > self.max_qubits {
            return Err(PulseError::TooWide {
                n_qubits,
                max: self.max_qubits,
            });
        }
        let device = self.device_for(n_qubits)?;
        let policy = self.search.recovery;
        let mut search = self.search.clone();
        let mut rungs: Vec<&'static str> = Vec::new();
        let mut best_fidelity = 0.0f64;

        // The ladder: base attempt, then restart escalations (doubled
        // restarts, perturbed seed), then slot escalations (doubled cap,
        // probing straight at the new cap since everything below failed).
        // Every attempt is a pure function of its config, so the climbed
        // rungs are identical at any worker count.
        let attempts = 1 + policy.restart_escalations + policy.slot_escalations;
        for attempt in 0..attempts {
            if attempt > 0 {
                if attempt <= policy.restart_escalations {
                    search.grape.restarts = (search.grape.restarts * 2).max(2);
                    search.grape.seed = search.grape.seed.wrapping_add(0x9E3779B9);
                    rungs.push(RUNG_GRAPE_RESTARTS);
                } else {
                    search.initial_slots = search.max_slots * 2;
                    search.max_slots *= 2;
                    rungs.push(RUNG_GRAPE_SLOTS);
                }
            }
            match minimize_duration_with_cancel(&device, unitary, &search, cancel) {
                Ok(sol) => {
                    self.iterations.fetch_add(sol.total_iterations, Ordering::Relaxed);
                    self.probes.fetch_add(sol.probes, Ordering::Relaxed);
                    return Ok(RecoveredPulse {
                        entry: PulseEntry {
                            duration: sol.result.duration,
                            fidelity: sol.result.fidelity,
                            n_slots: sol.n_slots,
                            waveform: Some(Arc::new(PulseWaveform::new(
                                device.dt(),
                                sol.result.controls,
                            ))),
                        },
                        rungs,
                    });
                }
                Err(DurationError::Unconverged(err)) => {
                    self.iterations.fetch_add(err.total_iterations, Ordering::Relaxed);
                    self.probes.fetch_add(err.probes, Ordering::Relaxed);
                    best_fidelity = best_fidelity.max(err.best_fidelity);
                }
                Err(DurationError::Grape(e)) => return Err(PulseError::Grape(e)),
            }
        }
        if policy.strict {
            return Err(PulseError::Unconverged {
                fidelity: best_fidelity,
                threshold: self.search.fidelity_threshold,
            });
        }
        // Last rung: digital fallback. The entry carries no waveform, so
        // downstream scheduling applies the block's exact unitary as a
        // digital event — i.e. the block executes as calibrated gates
        // rather than an optimized pulse, at the modeled gate fidelity.
        rungs.push(RUNG_GRAPE_DIGITAL);
        let model = DurationModel::default();
        Ok(RecoveredPulse {
            entry: PulseEntry {
                duration: model.width_duration(n_qubits),
                fidelity: model.pulse_fidelity,
                n_slots: 0,
                waveform: None,
            },
            rungs,
        })
    }
}

impl Default for GrapeSynthesizer {
    fn default() -> Self {
        Self::new(KeyPolicy::PhaseAware, DurationSearchConfig::default(), 2)
    }
}

impl PulseSynthesizer for GrapeSynthesizer {
    fn pulse(&self, request: &PulseRequest<'_>) -> Result<PulseEntry, PulseError> {
        let unitary = request.unitary.ok_or(PulseError::MissingUnitary)?;
        if request.n_qubits > self.max_qubits {
            return Err(PulseError::TooWide {
                n_qubits: request.n_qubits,
                max: self.max_qubits,
            });
        }
        if let Some(entry) = self.library.lookup(unitary) {
            return Ok(entry);
        }
        let recovered = self.compute_uncached(request.n_qubits, unitary)?;
        self.library.insert(unitary, recovered.entry.clone());
        Ok(recovered.entry)
    }

    fn name(&self) -> &str {
        "grape"
    }
}

/// Calibrated-model backend (no GRAPE at request time).
pub struct ModeledSynthesizer {
    model: DurationModel,
    library: PulseLibrary,
}

impl ModeledSynthesizer {
    /// Creates a model backend.
    pub fn new(model: DurationModel, policy: KeyPolicy) -> Self {
        Self::with_store_config(model, policy, &StoreConfig::default())
    }

    /// Like [`ModeledSynthesizer::new`] with an explicit library storage
    /// tier.
    pub fn with_store_config(
        model: DurationModel,
        policy: KeyPolicy,
        store: &StoreConfig,
    ) -> Self {
        Self {
            model,
            library: PulseLibrary::from_config(policy, store),
        }
    }

    /// The model in use.
    pub fn model(&self) -> &DurationModel {
        &self.model
    }

    /// The cache.
    pub fn library(&self) -> &PulseLibrary {
        &self.library
    }
}

impl Default for ModeledSynthesizer {
    fn default() -> Self {
        Self::new(DurationModel::default(), KeyPolicy::PhaseAware)
    }
}

impl PulseSynthesizer for ModeledSynthesizer {
    fn pulse(&self, request: &PulseRequest<'_>) -> Result<PulseEntry, PulseError> {
        if let Some(u) = request.unitary {
            if let Some(entry) = self.library.lookup(u) {
                return Ok(entry);
            }
        }
        let duration = match request.local_circuit {
            Some(c) => self.model.block_duration(c),
            None => self.model.width_duration(request.n_qubits),
        };
        let entry = PulseEntry {
            duration,
            fidelity: self.model.pulse_fidelity,
            n_slots: (duration / 2.0).ceil() as usize,
            waveform: None,
        };
        if let Some(u) = request.unitary {
            self.library.insert(u, entry.clone());
        }
        Ok(entry)
    }

    fn name(&self) -> &str {
        "modeled"
    }
}

/// GRAPE for narrow blocks, calibrated model beyond.
pub struct HybridSynthesizer {
    grape: GrapeSynthesizer,
    model: ModeledSynthesizer,
}

impl HybridSynthesizer {
    /// Creates a hybrid backend: GRAPE up to `grape_limit` qubits.
    pub fn new(policy: KeyPolicy, grape_limit: usize, model: DurationModel) -> Self {
        Self::with_search(policy, DurationSearchConfig::default(), grape_limit, model)
    }

    /// Like [`HybridSynthesizer::new`] with explicit duration-search
    /// settings (e.g. a GRAPE worker count plumbed from the pipeline).
    pub fn with_search(
        policy: KeyPolicy,
        search: DurationSearchConfig,
        grape_limit: usize,
        model: DurationModel,
    ) -> Self {
        Self::with_search_store(policy, search, grape_limit, model, &StoreConfig::default())
    }

    /// Like [`HybridSynthesizer::with_search`] with an explicit library
    /// storage tier shared (by configuration, not by instance) between the
    /// two sub-backends' caches.
    pub fn with_search_store(
        policy: KeyPolicy,
        search: DurationSearchConfig,
        grape_limit: usize,
        model: DurationModel,
        store: &StoreConfig,
    ) -> Self {
        Self {
            grape: GrapeSynthesizer::with_store_config(policy, search, grape_limit, store),
            model: ModeledSynthesizer::with_store_config(model, policy, store),
        }
    }

    /// The GRAPE sub-backend.
    pub fn grape(&self) -> &GrapeSynthesizer {
        &self.grape
    }

    /// The model sub-backend.
    pub fn modeled(&self) -> &ModeledSynthesizer {
        &self.model
    }

    /// Combined cache hit count.
    pub fn cache_hits(&self) -> usize {
        self.grape.library().hits() + self.model.library().hits()
    }

    /// Combined cache miss count.
    pub fn cache_misses(&self) -> usize {
        self.grape.library().misses() + self.model.library().misses()
    }

    /// GRAPE iterations spent by the GRAPE sub-backend so far.
    pub fn total_iterations(&self) -> usize {
        self.grape.total_iterations()
    }

    /// Duration-search GRAPE probes run by the GRAPE sub-backend so far.
    pub fn total_probes(&self) -> usize {
        self.grape.total_probes()
    }
}

impl Default for HybridSynthesizer {
    fn default() -> Self {
        Self::new(KeyPolicy::PhaseAware, 2, DurationModel::default())
    }
}

impl PulseSynthesizer for HybridSynthesizer {
    fn pulse(&self, request: &PulseRequest<'_>) -> Result<PulseEntry, PulseError> {
        if request.n_qubits <= self.grape.max_qubits() && request.unitary.is_some() {
            self.grape.pulse(request)
        } else {
            self.model.pulse(request)
        }
    }

    fn name(&self) -> &str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::duration::GrapeRecoveryPolicy;
    use epoc_circuit::Gate;

    #[test]
    fn grape_backend_caches() {
        let s = GrapeSynthesizer::new(
            KeyPolicy::PhaseAware,
            DurationSearchConfig {
                initial_slots: 8,
                max_slots: 64,
                ..Default::default()
            },
            1,
        );
        let x = Gate::X.unitary_matrix();
        let req = PulseRequest {
            n_qubits: 1,
            unitary: Some(&x),
            local_circuit: None,
        };
        let a = s.pulse(&req).unwrap();
        assert!(a.fidelity > 0.999);
        assert!(a.duration >= 24.0, "duration {}", a.duration);
        let b = s.pulse(&req).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.library().hits(), 1);
        assert_eq!(s.library().misses(), 1);
    }

    #[test]
    fn bad_requests_return_typed_errors() {
        let s = GrapeSynthesizer::new(KeyPolicy::PhaseAware, DurationSearchConfig::default(), 1);
        let no_unitary = PulseRequest {
            n_qubits: 1,
            unitary: None,
            local_circuit: None,
        };
        assert_eq!(s.pulse(&no_unitary).unwrap_err(), PulseError::MissingUnitary);
        let cx = Gate::CX.unitary_matrix();
        let wide = PulseRequest {
            n_qubits: 2,
            unitary: Some(&cx),
            local_circuit: None,
        };
        assert_eq!(
            s.pulse(&wide).unwrap_err(),
            PulseError::TooWide { n_qubits: 2, max: 1 }
        );
    }

    #[test]
    fn ladder_slot_escalation_rescues_short_cap() {
        // X needs ≥ 13 slots; a cap of 8 fails, and the slot rung's
        // doubled cap (16) succeeds — one recorded rung, real waveform.
        let search = DurationSearchConfig {
            initial_slots: 8,
            max_slots: 8,
            recovery: GrapeRecoveryPolicy {
                restart_escalations: 0,
                slot_escalations: 1,
                strict: false,
            },
            ..Default::default()
        };
        let s = GrapeSynthesizer::new(KeyPolicy::PhaseAware, search.clone(), 1);
        let rec = s.compute_uncached(1, &Gate::X.unitary_matrix()).unwrap();
        assert_eq!(rec.rungs, vec![RUNG_GRAPE_SLOTS]);
        assert!(rec.entry.fidelity >= search.fidelity_threshold);
        assert!(rec.entry.waveform.is_some());
    }

    #[test]
    fn ladder_exhaustion_degrades_to_digital() {
        // Caps of 2 and 4 slots (8 ns) can never reach X (needs 25 ns):
        // the full ladder runs, then degrades to the waveform-free
        // digital fallback.
        let search = DurationSearchConfig {
            initial_slots: 1,
            max_slots: 2,
            recovery: GrapeRecoveryPolicy {
                restart_escalations: 1,
                slot_escalations: 1,
                strict: false,
            },
            ..Default::default()
        };
        let s = GrapeSynthesizer::new(KeyPolicy::PhaseAware, search, 1);
        let rec = s.compute_uncached(1, &Gate::X.unitary_matrix()).unwrap();
        assert_eq!(
            rec.rungs,
            vec![RUNG_GRAPE_RESTARTS, RUNG_GRAPE_SLOTS, RUNG_GRAPE_DIGITAL]
        );
        assert!(rec.entry.waveform.is_none());
        assert!(rec.entry.duration > 0.0);
    }

    #[test]
    fn strict_mode_errors_instead_of_degrading() {
        let search = DurationSearchConfig {
            initial_slots: 1,
            max_slots: 2,
            recovery: GrapeRecoveryPolicy {
                restart_escalations: 0,
                slot_escalations: 0,
                strict: true,
            },
            ..Default::default()
        };
        let s = GrapeSynthesizer::new(KeyPolicy::PhaseAware, search, 1);
        let err = s.compute_uncached(1, &Gate::X.unitary_matrix()).unwrap_err();
        assert!(matches!(err, PulseError::Unconverged { .. }), "got {err}");
    }

    #[test]
    fn modeled_backend_uses_circuit() {
        let s = ModeledSynthesizer::default();
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        let u = c.unitary();
        let req = PulseRequest {
            n_qubits: 2,
            unitary: Some(&u),
            local_circuit: Some(&c),
        };
        let e = s.pulse(&req).unwrap();
        let gate_cp = s.model().gate_table.critical_path(&c);
        assert!(e.duration < gate_cp);
        // Second request hits cache.
        let e2 = s.pulse(&req).unwrap();
        assert_eq!(e, e2);
        assert_eq!(s.library().hits(), 1);
    }

    #[test]
    fn modeled_backend_without_circuit_uses_width() {
        let s = ModeledSynthesizer::default();
        let req = PulseRequest {
            n_qubits: 4,
            unitary: None,
            local_circuit: None,
        };
        let e = s.pulse(&req).unwrap();
        assert!(e.duration >= s.model().min_pulse);
    }

    #[test]
    fn hybrid_routes_by_width() {
        let s = HybridSynthesizer::default();
        let x = Gate::X.unitary_matrix();
        let narrow = PulseRequest {
            n_qubits: 1,
            unitary: Some(&x),
            local_circuit: None,
        };
        let e1 = s.pulse(&narrow).unwrap();
        assert!(e1.fidelity > 0.999);
        let mut c3 = Circuit::new(3);
        c3.push(Gate::CCX, &[0, 1, 2]);
        let wide = PulseRequest {
            n_qubits: 3,
            unitary: None,
            local_circuit: Some(&c3),
        };
        let e2 = s.pulse(&wide).unwrap();
        assert!(e2.duration > 0.0);
        assert_eq!(s.grape().library().misses(), 1);
        assert_eq!(s.name(), "hybrid");
    }
}

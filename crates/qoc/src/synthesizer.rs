//! Pulse synthesizer backends.
//!
//! A [`PulseSynthesizer`] turns a unitary block into a pulse (duration +
//! fidelity). Three backends:
//!
//! * [`GrapeSynthesizer`] — real GRAPE + duration binary search against
//!   the simulated device, with a [`PulseLibrary`] cache in front;
//! * [`ModeledSynthesizer`] — the calibrated [`DurationModel`];
//! * [`HybridSynthesizer`] — GRAPE up to a width limit, model beyond
//!   (the default for the benchmark harness).

use crate::device::DeviceModel;
use crate::duration::{minimize_duration, DurationSearchConfig};
use crate::library::{KeyPolicy, PulseEntry, PulseLibrary};
use crate::model::DurationModel;
use crate::waveform::PulseWaveform;
use epoc_circuit::Circuit;
use epoc_linalg::Matrix;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// What a pulse is requested for.
#[derive(Debug, Clone, Copy)]
pub struct PulseRequest<'a> {
    /// Width of the block.
    pub n_qubits: usize,
    /// Dense unitary, when available (required by GRAPE).
    pub unitary: Option<&'a Matrix>,
    /// The block's local circuit, when available (used by the model).
    pub local_circuit: Option<&'a Circuit>,
}

/// A backend that produces pulses for unitary blocks.
pub trait PulseSynthesizer: Send + Sync {
    /// Produces (or retrieves) the pulse for a block.
    fn pulse(&self, request: &PulseRequest<'_>) -> PulseEntry;

    /// Human-readable backend name.
    fn name(&self) -> &str;
}

/// Real-GRAPE backend with pulse-library caching.
pub struct GrapeSynthesizer {
    library: PulseLibrary,
    devices: Mutex<HashMap<usize, DeviceModel>>,
    search: DurationSearchConfig,
    /// Width cap — requests beyond it panic (route them to a hybrid).
    max_qubits: usize,
    /// GRAPE iterations spent by this backend across all searches.
    iterations: AtomicUsize,
    /// Duration-search GRAPE probes spent by this backend.
    probes: AtomicUsize,
}

impl GrapeSynthesizer {
    /// Creates a GRAPE backend with the given cache policy.
    pub fn new(policy: KeyPolicy, search: DurationSearchConfig, max_qubits: usize) -> Self {
        Self {
            library: PulseLibrary::new(policy),
            devices: Mutex::new(HashMap::new()),
            search,
            max_qubits: max_qubits.clamp(1, 6),
            iterations: AtomicUsize::new(0),
            probes: AtomicUsize::new(0),
        }
    }

    /// The cache.
    pub fn library(&self) -> &PulseLibrary {
        &self.library
    }

    /// Width cap.
    pub fn max_qubits(&self) -> usize {
        self.max_qubits
    }

    /// GRAPE iterations spent so far (every Adam step of every restart of
    /// every probe, including failed probes).
    pub fn total_iterations(&self) -> usize {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Duration-search GRAPE probes run so far.
    pub fn total_probes(&self) -> usize {
        self.probes.load(Ordering::Relaxed)
    }

    fn device_for(&self, n: usize) -> DeviceModel {
        self.devices
            .lock()
            .unwrap()
            .entry(n)
            .or_insert_with(|| {
                DeviceModel::transmon_line(n).expect("width pre-checked against the GRAPE cap")
            })
            .clone()
    }

    /// Runs the duration search for `unitary` without consulting or
    /// updating the library. Deterministic given the inputs, so batch
    /// schedulers can compute cache misses out of order in parallel and
    /// replay the library bookkeeping serially.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits` exceeds the backend's width cap.
    pub fn compute_uncached(&self, n_qubits: usize, unitary: &Matrix) -> PulseEntry {
        assert!(
            n_qubits <= self.max_qubits,
            "block of {} qubits exceeds GRAPE limit {}",
            n_qubits,
            self.max_qubits
        );
        let device = self.device_for(n_qubits);
        match minimize_duration(&device, unitary, &self.search) {
            Ok(sol) => {
                self.iterations.fetch_add(sol.total_iterations, Ordering::Relaxed);
                self.probes.fetch_add(sol.probes, Ordering::Relaxed);
                PulseEntry {
                    duration: sol.result.duration,
                    fidelity: sol.result.fidelity,
                    n_slots: sol.n_slots,
                    waveform: Some(Arc::new(PulseWaveform::new(
                        device.dt(),
                        sol.result.controls,
                    ))),
                }
            }
            Err(err) => {
                self.iterations.fetch_add(err.total_iterations, Ordering::Relaxed);
                self.probes.fetch_add(err.probes, Ordering::Relaxed);
                PulseEntry {
                    // Unreachable within the cap: report the capped pulse.
                    duration: self.search.max_slots as f64 * device.dt(),
                    fidelity: err.best_fidelity,
                    n_slots: self.search.max_slots,
                    waveform: None,
                }
            }
        }
    }
}

impl Default for GrapeSynthesizer {
    fn default() -> Self {
        Self::new(KeyPolicy::PhaseAware, DurationSearchConfig::default(), 2)
    }
}

impl PulseSynthesizer for GrapeSynthesizer {
    fn pulse(&self, request: &PulseRequest<'_>) -> PulseEntry {
        let unitary = request
            .unitary
            .expect("GrapeSynthesizer needs the block unitary");
        assert!(
            request.n_qubits <= self.max_qubits,
            "block of {} qubits exceeds GRAPE limit {}",
            request.n_qubits,
            self.max_qubits
        );
        if let Some(entry) = self.library.lookup(unitary) {
            return entry;
        }
        let entry = self.compute_uncached(request.n_qubits, unitary);
        self.library.insert(unitary, entry.clone());
        entry
    }

    fn name(&self) -> &str {
        "grape"
    }
}

/// Calibrated-model backend (no GRAPE at request time).
pub struct ModeledSynthesizer {
    model: DurationModel,
    library: PulseLibrary,
}

impl ModeledSynthesizer {
    /// Creates a model backend.
    pub fn new(model: DurationModel, policy: KeyPolicy) -> Self {
        Self {
            model,
            library: PulseLibrary::new(policy),
        }
    }

    /// The model in use.
    pub fn model(&self) -> &DurationModel {
        &self.model
    }

    /// The cache.
    pub fn library(&self) -> &PulseLibrary {
        &self.library
    }
}

impl Default for ModeledSynthesizer {
    fn default() -> Self {
        Self::new(DurationModel::default(), KeyPolicy::PhaseAware)
    }
}

impl PulseSynthesizer for ModeledSynthesizer {
    fn pulse(&self, request: &PulseRequest<'_>) -> PulseEntry {
        if let Some(u) = request.unitary {
            if let Some(entry) = self.library.lookup(u) {
                return entry;
            }
        }
        let duration = match request.local_circuit {
            Some(c) => self.model.block_duration(c),
            None => self.model.width_duration(request.n_qubits),
        };
        let entry = PulseEntry {
            duration,
            fidelity: self.model.pulse_fidelity,
            n_slots: (duration / 2.0).ceil() as usize,
            waveform: None,
        };
        if let Some(u) = request.unitary {
            self.library.insert(u, entry.clone());
        }
        entry
    }

    fn name(&self) -> &str {
        "modeled"
    }
}

/// GRAPE for narrow blocks, calibrated model beyond.
pub struct HybridSynthesizer {
    grape: GrapeSynthesizer,
    model: ModeledSynthesizer,
}

impl HybridSynthesizer {
    /// Creates a hybrid backend: GRAPE up to `grape_limit` qubits.
    pub fn new(policy: KeyPolicy, grape_limit: usize, model: DurationModel) -> Self {
        Self::with_search(policy, DurationSearchConfig::default(), grape_limit, model)
    }

    /// Like [`HybridSynthesizer::new`] with explicit duration-search
    /// settings (e.g. a GRAPE worker count plumbed from the pipeline).
    pub fn with_search(
        policy: KeyPolicy,
        search: DurationSearchConfig,
        grape_limit: usize,
        model: DurationModel,
    ) -> Self {
        Self {
            grape: GrapeSynthesizer::new(policy, search, grape_limit),
            model: ModeledSynthesizer::new(model, policy),
        }
    }

    /// The GRAPE sub-backend.
    pub fn grape(&self) -> &GrapeSynthesizer {
        &self.grape
    }

    /// The model sub-backend.
    pub fn modeled(&self) -> &ModeledSynthesizer {
        &self.model
    }

    /// Combined cache hit count.
    pub fn cache_hits(&self) -> usize {
        self.grape.library().hits() + self.model.library().hits()
    }

    /// Combined cache miss count.
    pub fn cache_misses(&self) -> usize {
        self.grape.library().misses() + self.model.library().misses()
    }

    /// GRAPE iterations spent by the GRAPE sub-backend so far.
    pub fn total_iterations(&self) -> usize {
        self.grape.total_iterations()
    }

    /// Duration-search GRAPE probes run by the GRAPE sub-backend so far.
    pub fn total_probes(&self) -> usize {
        self.grape.total_probes()
    }
}

impl Default for HybridSynthesizer {
    fn default() -> Self {
        Self::new(KeyPolicy::PhaseAware, 2, DurationModel::default())
    }
}

impl PulseSynthesizer for HybridSynthesizer {
    fn pulse(&self, request: &PulseRequest<'_>) -> PulseEntry {
        if request.n_qubits <= self.grape.max_qubits() && request.unitary.is_some() {
            self.grape.pulse(request)
        } else {
            self.model.pulse(request)
        }
    }

    fn name(&self) -> &str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epoc_circuit::Gate;

    #[test]
    fn grape_backend_caches() {
        let s = GrapeSynthesizer::new(
            KeyPolicy::PhaseAware,
            DurationSearchConfig {
                initial_slots: 8,
                max_slots: 64,
                ..Default::default()
            },
            1,
        );
        let x = Gate::X.unitary_matrix();
        let req = PulseRequest {
            n_qubits: 1,
            unitary: Some(&x),
            local_circuit: None,
        };
        let a = s.pulse(&req);
        assert!(a.fidelity > 0.999);
        assert!(a.duration >= 24.0, "duration {}", a.duration);
        let b = s.pulse(&req);
        assert_eq!(a, b);
        assert_eq!(s.library().hits(), 1);
        assert_eq!(s.library().misses(), 1);
    }

    #[test]
    fn modeled_backend_uses_circuit() {
        let s = ModeledSynthesizer::default();
        let mut c = Circuit::new(2);
        c.push(Gate::H, &[0]).push(Gate::CX, &[0, 1]);
        let u = c.unitary();
        let req = PulseRequest {
            n_qubits: 2,
            unitary: Some(&u),
            local_circuit: Some(&c),
        };
        let e = s.pulse(&req);
        let gate_cp = s.model().gate_table.critical_path(&c);
        assert!(e.duration < gate_cp);
        // Second request hits cache.
        let e2 = s.pulse(&req);
        assert_eq!(e, e2);
        assert_eq!(s.library().hits(), 1);
    }

    #[test]
    fn modeled_backend_without_circuit_uses_width() {
        let s = ModeledSynthesizer::default();
        let req = PulseRequest {
            n_qubits: 4,
            unitary: None,
            local_circuit: None,
        };
        let e = s.pulse(&req);
        assert!(e.duration >= s.model().min_pulse);
    }

    #[test]
    fn hybrid_routes_by_width() {
        let s = HybridSynthesizer::default();
        let x = Gate::X.unitary_matrix();
        let narrow = PulseRequest {
            n_qubits: 1,
            unitary: Some(&x),
            local_circuit: None,
        };
        let e1 = s.pulse(&narrow);
        assert!(e1.fidelity > 0.999);
        let mut c3 = Circuit::new(3);
        c3.push(Gate::CCX, &[0, 1, 2]);
        let wide = PulseRequest {
            n_qubits: 3,
            unitary: None,
            local_circuit: Some(&c3),
        };
        let e2 = s.pulse(&wide);
        assert!(e2.duration > 0.0);
        assert_eq!(s.grape().library().misses(), 1);
        assert_eq!(s.name(), "hybrid");
    }
}

//! Piecewise-constant control waveforms captured from GRAPE solutions.
//!
//! A [`PulseWaveform`] is the physical artifact a pulse entry used to
//! discard: the per-channel amplitude staircase GRAPE converged to. The
//! pulse-level simulator (`epoc-sim`) replays these against the device
//! Hamiltonian to verify schedules end-to-end, so the library now keeps
//! them behind an `Arc` (see [`crate::PulseEntry`]).

/// The piecewise-constant control amplitudes of one synthesized pulse.
///
/// Channel-major layout matching [`crate::DeviceModel::controls`]: row `j`
/// holds the amplitude (rad/ns) of channel `j` in each of the `n_slots`
/// slots of width [`PulseWaveform::dt`] ns.
#[derive(Debug, Clone, PartialEq)]
pub struct PulseWaveform {
    dt: f64,
    controls: Vec<Vec<f64>>,
}

impl PulseWaveform {
    /// Wraps a channel-major control matrix.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is not positive or the channel rows have unequal
    /// lengths.
    pub fn new(dt: f64, controls: Vec<Vec<f64>>) -> Self {
        assert!(dt > 0.0, "slot width must be positive");
        let n_slots = controls.first().map_or(0, Vec::len);
        assert!(
            controls.iter().all(|c| c.len() == n_slots),
            "ragged control rows"
        );
        Self { dt, controls }
    }

    /// Slot width (ns).
    pub fn dt(&self) -> f64 {
        self.dt
    }

    /// Number of control channels.
    pub fn n_channels(&self) -> usize {
        self.controls.len()
    }

    /// Number of slots.
    pub fn n_slots(&self) -> usize {
        self.controls.first().map_or(0, Vec::len)
    }

    /// Total waveform duration (ns).
    pub fn duration(&self) -> f64 {
        self.n_slots() as f64 * self.dt
    }

    /// The channel-major amplitude matrix.
    pub fn controls(&self) -> &[Vec<f64>] {
        &self.controls
    }

    /// Amplitude of `channel` at offset `t` ns from the waveform start
    /// (clamped into the last slot at `t == duration`).
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range or `t` is negative.
    pub fn amplitude(&self, channel: usize, t: f64) -> f64 {
        assert!(t >= 0.0, "negative waveform offset");
        let slot = ((t / self.dt) as usize).min(self.n_slots().saturating_sub(1));
        self.controls[channel][slot]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_lookup() {
        let w = PulseWaveform::new(2.0, vec![vec![0.1, 0.2, 0.3], vec![0.0, -0.1, 0.4]]);
        assert_eq!(w.n_channels(), 2);
        assert_eq!(w.n_slots(), 3);
        assert!((w.duration() - 6.0).abs() < 1e-12);
        assert_eq!(w.amplitude(0, 0.0), 0.1);
        assert_eq!(w.amplitude(0, 3.9), 0.2);
        assert_eq!(w.amplitude(1, 4.0), 0.4);
        // t == duration clamps into the last slot.
        assert_eq!(w.amplitude(1, 6.0), 0.4);
    }

    #[test]
    fn empty_waveform() {
        let w = PulseWaveform::new(1.0, vec![]);
        assert_eq!(w.n_slots(), 0);
        assert_eq!(w.duration(), 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn rejects_ragged_rows() {
        PulseWaveform::new(1.0, vec![vec![0.1], vec![0.1, 0.2]]);
    }
}

//! Property-based tests for the QOC crate.

use epoc_circuit::{Circuit, Gate};
use epoc_linalg::{random_unitary, Matrix};
use epoc_qoc::{
    grape, propagate, DeviceModel, DurationModel, GrapeConfig, KeyPolicy, PulseEntry,
    PulseLibrary,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn propagation_is_always_unitary(seed in 0u64..1000, slots in 1usize..12) {
        let device = DeviceModel::transmon_line(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = device.max_amplitude();
        let controls: Vec<Vec<f64>> = (0..device.controls().len())
            .map(|_| (0..slots).map(|_| (rng.gen::<f64>() - 0.5) * 2.0 * a).collect())
            .collect();
        let u = propagate(&device, &controls);
        prop_assert!(u.is_unitary(1e-8));
    }

    #[test]
    fn propagation_composes(seed in 0u64..500) {
        // Propagating k slots then m slots equals propagating k+m at once.
        let device = DeviceModel::transmon_line(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = device.max_amplitude();
        let mk = |rng: &mut StdRng, n: usize| -> Vec<Vec<f64>> {
            (0..2).map(|_| (0..n).map(|_| (rng.gen::<f64>() - 0.5) * a).collect()).collect()
        };
        let first = mk(&mut rng, 3);
        let second = mk(&mut rng, 4);
        let combined: Vec<Vec<f64>> = (0..2)
            .map(|j| {
                let mut v = first[j].clone();
                v.extend_from_slice(&second[j]);
                v
            })
            .collect();
        let u = propagate(&device, &second).matmul(&propagate(&device, &first));
        let w = propagate(&device, &combined);
        prop_assert!(u.approx_eq(&w, 1e-9));
    }

    #[test]
    fn grape_fidelity_in_unit_interval(seed in 0u64..200) {
        let device = DeviceModel::transmon_line(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let target = random_unitary(2, &mut rng);
        let r = grape(
            &device,
            &target,
            10,
            &GrapeConfig { max_iters: 30, restarts: 1, seed, ..Default::default() },
        );
        prop_assert!((0.0..=1.0 + 1e-9).contains(&r.fidelity));
        prop_assert!(r.unitary.is_unitary(1e-8));
        // Controls respect the amplitude bound.
        for ch in &r.controls {
            for &v in ch {
                prop_assert!(v.abs() <= device.max_amplitude() + 1e-12);
            }
        }
    }

    #[test]
    fn duration_model_monotone_in_gates(extra in 1usize..6) {
        // Appending physical gates never shortens the modeled duration.
        let m = DurationModel::default();
        let mut c = Circuit::new(2);
        c.push(Gate::CX, &[0, 1]);
        let base = m.block_duration(&c);
        for i in 0..extra {
            c.push(Gate::CX, &[i % 2, (i + 1) % 2]);
        }
        prop_assert!(m.block_duration(&c) >= base);
    }

    #[test]
    fn library_lookup_returns_what_was_inserted(seed in 0u64..500, d in 1.0..500.0f64) {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(2, &mut rng);
        let entry = PulseEntry { duration: d, fidelity: 0.999, n_slots: d as usize };
        lib.insert(&u, entry);
        prop_assert_eq!(lib.lookup(&u), Some(entry));
    }

    #[test]
    fn library_phase_invariance(seed in 0u64..500, phi in -3.1..3.1f64) {
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(2, &mut rng);
        lib.insert(&u, PulseEntry { duration: 7.0, fidelity: 0.99, n_slots: 4 });
        let rotated = u.scale(epoc_linalg::Complex64::cis(phi));
        prop_assert!(lib.lookup(&rotated).is_some());
    }
}

#[test]
fn grape_is_deterministic() {
    let device = DeviceModel::transmon_line(1);
    let target = Gate::H.unitary_matrix();
    let a = grape(&device, &target, 20, &GrapeConfig::default());
    let b = grape(&device, &target, 20, &GrapeConfig::default());
    assert_eq!(a.controls, b.controls);
    assert_eq!(a.fidelity, b.fidelity);
}

#[test]
fn longer_pulses_never_reduce_best_fidelity_much() {
    // More slots = strictly more controllable; fidelity should not drop
    // materially when duration grows (optimizer noise aside).
    let device = DeviceModel::transmon_line(1);
    let target = Gate::X.unitary_matrix();
    let short = grape(&device, &target, 14, &GrapeConfig::default());
    let long = grape(&device, &target, 28, &GrapeConfig::default());
    assert!(long.fidelity >= short.fidelity - 0.01);
}

#[test]
fn identity_block_models_to_zero_but_identity_grape_is_cheap() {
    let m = DurationModel::default();
    let c = Circuit::new(2);
    assert_eq!(m.block_duration(&c), 0.0);
    let device = DeviceModel::transmon_line(1);
    let r = grape(&device, &Matrix::identity(2), 1, &GrapeConfig::default());
    assert!(r.fidelity > 0.9999);
}

//! Property-based tests for the QOC crate.
//!
//! Ported from `proptest!` macros to `epoc_rt::check`, preserving the
//! 24-case counts.

use epoc_circuit::{Circuit, Gate};
use epoc_linalg::{random_unitary, Matrix};
use epoc_qoc::{
    grape, load_library_file, propagate, save_library_file, DeviceModel, DurationModel,
    GrapeConfig, KeyPolicy, PulseEntry, PulseLibrary, PulseWaveform, StoreConfig,
};
use epoc_rt::check::property;
use epoc_rt::rng::{Rng, StdRng};
use std::sync::Arc;

#[test]
fn propagation_is_always_unitary() {
    property("propagation_is_always_unitary").cases(24).run(|g| {
        let seed = g.u64_in(0, 1000);
        let slots = g.usize_in(1, 12);
        let device = DeviceModel::transmon_line(2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = device.max_amplitude();
        let controls: Vec<Vec<f64>> = (0..device.controls().len())
            .map(|_| (0..slots).map(|_| (rng.gen_f64() - 0.5) * 2.0 * a).collect())
            .collect();
        let u = propagate(&device, &controls).unwrap();
        assert!(u.is_unitary(1e-8), "seed={seed} slots={slots}");
    });
}

#[test]
fn propagation_composes() {
    property("propagation_composes").cases(24).run(|g| {
        let seed = g.u64_in(0, 500);
        // Propagating k slots then m slots equals propagating k+m at once.
        let device = DeviceModel::transmon_line(1).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = device.max_amplitude();
        let mk = |rng: &mut StdRng, n: usize| -> Vec<Vec<f64>> {
            (0..2).map(|_| (0..n).map(|_| (rng.gen_f64() - 0.5) * a).collect()).collect()
        };
        let first = mk(&mut rng, 3);
        let second = mk(&mut rng, 4);
        let combined: Vec<Vec<f64>> = (0..2)
            .map(|j| {
                let mut v = first[j].clone();
                v.extend_from_slice(&second[j]);
                v
            })
            .collect();
        let u = propagate(&device, &second)
            .unwrap()
            .matmul(&propagate(&device, &first).unwrap());
        let w = propagate(&device, &combined).unwrap();
        assert!(u.approx_eq(&w, 1e-9), "seed={seed}");
    });
}

#[test]
fn grape_fidelity_in_unit_interval() {
    property("grape_fidelity_in_unit_interval").cases(24).run(|g| {
        let seed = g.u64_in(0, 200);
        let device = DeviceModel::transmon_line(1).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let target = random_unitary(2, &mut rng);
        let r = grape(
            &device,
            &target,
            10,
            &GrapeConfig { max_iters: 30, restarts: 1, seed, ..Default::default() },
        )
        .unwrap();
        assert!((0.0..=1.0 + 1e-9).contains(&r.fidelity), "seed={seed}");
        assert!(r.unitary.is_unitary(1e-8), "seed={seed}");
        // Controls respect the amplitude bound.
        for ch in &r.controls {
            for &v in ch {
                assert!(v.abs() <= device.max_amplitude() + 1e-12, "seed={seed}");
            }
        }
    });
}

#[test]
fn duration_model_monotone_in_gates() {
    property("duration_model_monotone_in_gates").cases(24).run(|g| {
        let extra = g.usize_in(1, 6);
        // Appending physical gates never shortens the modeled duration.
        let m = DurationModel::default();
        let mut c = Circuit::new(2);
        c.push(Gate::CX, &[0, 1]);
        let base = m.block_duration(&c);
        for i in 0..extra {
            c.push(Gate::CX, &[i % 2, (i + 1) % 2]);
        }
        assert!(m.block_duration(&c) >= base, "extra={extra}");
    });
}

#[test]
fn library_lookup_returns_what_was_inserted() {
    property("library_lookup_returns_what_was_inserted")
        .cases(24)
        .run(|g| {
            let seed = g.u64_in(0, 500);
            let d = g.f64_in(1.0, 500.0);
            let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
            let mut rng = StdRng::seed_from_u64(seed);
            let u = random_unitary(2, &mut rng);
            let entry = PulseEntry { duration: d, fidelity: 0.999, n_slots: d as usize, waveform: None };
            lib.insert(&u, entry.clone());
            assert_eq!(lib.lookup(&u), Some(entry), "seed={seed} d={d}");
        });
}

#[test]
fn library_phase_invariance() {
    property("library_phase_invariance").cases(24).run(|g| {
        let seed = g.u64_in(0, 500);
        let phi = g.f64_in(-3.1, 3.1);
        let lib = PulseLibrary::new(KeyPolicy::PhaseAware);
        let mut rng = StdRng::seed_from_u64(seed);
        let u = random_unitary(2, &mut rng);
        lib.insert(&u, PulseEntry { duration: 7.0, fidelity: 0.99, n_slots: 4, waveform: None });
        let rotated = u.scale(epoc_linalg::Complex64::cis(phi));
        assert!(lib.lookup(&rotated).is_some(), "seed={seed} phi={phi}");
    });
}

/// A random pulse entry: random duration/fidelity/slot-count, and with
/// probability ~1/3 no waveform at all (modeled pulses and digital
/// fallbacks store `None`).
fn random_entry(rng: &mut StdRng) -> PulseEntry {
    let n_slots = 1 + (rng.next_u64_below(24)) as usize;
    let waveform = if rng.next_u64_below(3) == 0 {
        None
    } else {
        let channels = 1 + (rng.next_u64_below(4)) as usize;
        let controls: Vec<Vec<f64>> = (0..channels)
            .map(|_| (0..n_slots).map(|_| (rng.gen_f64() - 0.5) * 0.3).collect())
            .collect();
        Some(Arc::new(PulseWaveform::new(
            0.5 + rng.gen_f64() * 4.0,
            controls,
        )))
    };
    PulseEntry {
        duration: rng.gen_f64() * 500.0,
        fidelity: rng.gen_f64(),
        n_slots,
        waveform,
    }
}

#[test]
fn entry_json_round_trip_is_lossless() {
    property("entry_json_round_trip_is_lossless").cases(24).run(|g| {
        let seed = g.u64_in(0, 10_000);
        let mut rng = StdRng::seed_from_u64(seed);
        let entry = random_entry(&mut rng);
        let restored = PulseEntry::from_json_value(&entry.to_json_value())
            .unwrap_or_else(|e| panic!("seed={seed}: {e}"));
        // Exact equality: floats print in shortest round-trip form, so
        // every bit (duration, fidelity, dt, each amplitude) survives.
        assert_eq!(entry, restored, "seed={seed}");
    });
}

#[test]
fn library_file_round_trip_is_lossless_under_both_policies() {
    property("library_file_round_trip_is_lossless_under_both_policies")
        .cases(24)
        .run(|g| {
            let seed = g.u64_in(0, 10_000);
            let n = g.usize_in(1, 6);
            let policy = if seed % 2 == 0 {
                KeyPolicy::PhaseAware
            } else {
                KeyPolicy::PhaseSensitive
            };
            let mut rng = StdRng::seed_from_u64(seed);
            // Random storage tier: persistence must be tier-agnostic.
            let store = StoreConfig {
                shards: 1 + (rng.next_u64_below(4)) as usize,
                budget_bytes: None,
            };
            let lib = PulseLibrary::from_config(policy, &store);
            let mut unitaries = Vec::new();
            for _ in 0..n {
                let u = random_unitary(2, &mut rng);
                lib.insert(&u, random_entry(&mut rng));
                unitaries.push(u);
            }
            let path = std::env::temp_dir().join(format!(
                "epoc-prop-roundtrip-{}-{seed}.json",
                std::process::id()
            ));
            save_library_file(&path, &[("lib", &lib)]).unwrap();
            let restored = PulseLibrary::from_config(policy, &StoreConfig::default());
            let loaded = load_library_file(&path, &[("lib", &restored)]).unwrap();
            std::fs::remove_file(&path).ok();
            assert_eq!(loaded, lib.len(), "seed={seed}");
            for u in &unitaries {
                assert_eq!(restored.peek(u), lib.peek(u), "seed={seed}");
            }
        });
}

#[test]
fn eig_cache_does_not_change_the_trajectory() {
    // The eigensystem cache keys on bit-identical amplitudes, so a hit
    // replays exactly what recomputation would produce: fidelity, iteration
    // count, and every control must match the uncached path to the bit.
    property("eig_cache_does_not_change_the_trajectory")
        .cases(12)
        .run(|g| {
            let seed = g.u64_in(0, 400);
            let slots = g.usize_in(4, 16);
            let device = DeviceModel::transmon_line(1).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let target = random_unitary(2, &mut rng);
            let run = |eig_cache: bool| {
                grape(
                    &device,
                    &target,
                    slots,
                    &GrapeConfig {
                        max_iters: 40,
                        restarts: 2,
                        seed,
                        eig_cache,
                        ..Default::default()
                    },
                )
                .unwrap()
            };
            let cached = run(true);
            let plain = run(false);
            assert_eq!(
                cached.fidelity.to_bits(),
                plain.fidelity.to_bits(),
                "seed={seed} slots={slots}"
            );
            assert_eq!(cached.iterations, plain.iterations, "seed={seed}");
            assert_eq!(
                cached.total_iterations, plain.total_iterations,
                "seed={seed}"
            );
            for (a, b) in cached.controls.iter().zip(&plain.controls) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "seed={seed}");
                }
            }
        });
}

#[test]
fn grape_is_deterministic() {
    let device = DeviceModel::transmon_line(1).unwrap();
    let target = Gate::H.unitary_matrix();
    let a = grape(&device, &target, 20, &GrapeConfig::default()).unwrap();
    let b = grape(&device, &target, 20, &GrapeConfig::default()).unwrap();
    assert_eq!(a.controls, b.controls);
    assert_eq!(a.fidelity, b.fidelity);
}

#[test]
fn longer_pulses_never_reduce_best_fidelity_much() {
    // More slots = strictly more controllable; fidelity should not drop
    // materially when duration grows (optimizer noise aside).
    let device = DeviceModel::transmon_line(1).unwrap();
    let target = Gate::X.unitary_matrix();
    let short = grape(&device, &target, 14, &GrapeConfig::default()).unwrap();
    let long = grape(&device, &target, 28, &GrapeConfig::default()).unwrap();
    assert!(long.fidelity >= short.fidelity - 0.01);
}

#[test]
fn identity_block_models_to_zero_but_identity_grape_is_cheap() {
    let m = DurationModel::default();
    let c = Circuit::new(2);
    assert_eq!(m.block_duration(&c), 0.0);
    let device = DeviceModel::transmon_line(1).unwrap();
    let r = grape(&device, &Matrix::identity(2), 1, &GrapeConfig::default()).unwrap();
    assert!(r.fidelity > 0.9999);
}

//! A tiny wall-clock benchmark harness.
//!
//! Replaces `criterion` for the stage benches: a few warmup iterations,
//! then a fixed number of timed samples, reported as median / min / mean.
//! No statistics engine, no HTML — just honest numbers on stderr, fast
//! enough to run inside `cargo test -q --no-run`-checked bench targets.

use std::time::{Duration, Instant};

/// Timing summary of one benchmark: all samples, sorted.
#[derive(Debug, Clone)]
pub struct Stats {
    /// The benchmark's name.
    pub name: String,
    /// Per-sample wall-clock times, sorted ascending.
    pub samples: Vec<Duration>,
}

impl Stats {
    /// The median sample.
    pub fn median(&self) -> Duration {
        self.samples[self.samples.len() / 2]
    }

    /// The fastest sample.
    pub fn min(&self) -> Duration {
        self.samples[0]
    }

    /// The arithmetic mean of the samples.
    pub fn mean(&self) -> Duration {
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

/// Starts building a benchmark with default settings (3 warmup
/// iterations, 10 timed samples).
pub fn bench(name: &str) -> Bench {
    Bench {
        name: name.to_string(),
        warmup: 3,
        samples: 10,
    }
}

/// A configured benchmark; built by [`bench`], executed by
/// [`Bench::run`] or [`Bench::run_with_setup`].
pub struct Bench {
    name: String,
    warmup: usize,
    samples: usize,
}

impl Bench {
    /// Sets the number of warmup iterations (untimed; default 3).
    pub fn warmup(mut self, iters: usize) -> Self {
        self.warmup = iters;
        self
    }

    /// Sets the number of timed samples (default 10). Clamped to >= 1.
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    /// Runs the routine: warmup, then timed samples. Prints one summary
    /// line to stderr and returns the stats. The routine's return value
    /// is passed through `std::hint::black_box` so the work is not
    /// optimized away.
    pub fn run<R>(self, mut routine: impl FnMut() -> R) -> Stats {
        self.run_with_setup(|| (), |()| routine())
    }

    /// Like [`Bench::run`] but rebuilds fresh input before every
    /// iteration (warmup included); only the routine is timed. Use when
    /// the routine consumes or mutates its input.
    pub fn run_with_setup<T, R>(
        self,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) -> Stats {
        for _ in 0..self.warmup {
            let input = setup();
            std::hint::black_box(routine(std::hint::black_box(input)));
        }
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(std::hint::black_box(input)));
            samples.push(start.elapsed());
        }
        samples.sort();
        let stats = Stats {
            name: self.name,
            samples,
        };
        eprintln!(
            "bench {:<40} median {:>12?}  min {:>12?}  mean {:>12?}  (n={})",
            stats.name,
            stats.median(),
            stats.min(),
            stats.mean(),
            stats.samples.len()
        );
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_requested_sample_count() {
        let stats = bench("noop").warmup(1).samples(5).run(|| 1 + 1);
        assert_eq!(stats.samples.len(), 5);
    }

    #[test]
    fn samples_are_sorted_and_stats_consistent() {
        let stats = bench("spin").warmup(0).samples(7).run(|| {
            let mut acc = 0u64;
            for i in 0..1000 {
                acc = acc.wrapping_add(i).rotate_left(3);
            }
            acc
        });
        assert!(stats.samples.windows(2).all(|w| w[0] <= w[1]));
        assert!(stats.min() <= stats.median());
        assert!(stats.mean() >= stats.min());
    }

    #[test]
    fn setup_runs_fresh_each_iteration() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let built = AtomicUsize::new(0);
        bench("consuming")
            .warmup(2)
            .samples(4)
            .run_with_setup(
                || {
                    built.fetch_add(1, Ordering::Relaxed);
                    vec![1u8, 2, 3]
                },
                |v| v.into_iter().sum::<u8>(),
            );
        assert_eq!(built.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn zero_samples_clamps_to_one() {
        let stats = bench("clamped").warmup(0).samples(0).run(|| ());
        assert_eq!(stats.samples.len(), 1);
    }
}

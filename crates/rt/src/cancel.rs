//! Cooperative cancellation: deadlines and deterministic work budgets.
//!
//! A compile job can hold a worker hostage indefinitely — GRAPE restarts,
//! duration-search probes, and QSearch frontiers are all unbounded in the
//! worst case. This module gives callers two ways to bound a job:
//!
//! * **Wall-clock deadline** (`deadline_ms`): checked at the same
//!   deterministic points as budgets, but time-dependent by nature — so a
//!   blown deadline *fails the whole job* with a typed error rather than
//!   degrading it. A job either completes byte-identically to an
//!   undeadlined run or fails typed; it never silently produces a
//!   schedule that depends on machine speed.
//! * **Work budgets** (`Budget`): caps counted in work units — GRAPE
//!   Adam iterations and QSearch node evaluations — charged per work item
//!   (per block) through a [`CancelScope`]. Budget exhaustion is *soft*:
//!   the optimizer stops early with whatever it has, and the existing
//!   recovery ladder degrades the block (ultimately to the digital
//!   fallback model). Because budgets are counted in work units, not
//!   time, budgeted outcomes — including the recovery rungs taken — are
//!   byte-identical at any worker count.
//!
//! An explicit [`CancelToken::cancel`] flag (epocd uses it for drain)
//! behaves like a deadline: hard, typed failure.
//!
//! The default token is inert: every poll is a no-op and the optimizer
//! hot loops stay branch-predictable, so unbudgeted compiles pay nothing.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a job was cancelled hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The token's cancel flag was raised (e.g. service drain).
    Canceled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Canceled => write!(f, "canceled"),
            CancelReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// Deterministic per-work-item work budgets.
///
/// `None` means unlimited. Budgets apply *per block* (per
/// [`CancelScope`]), so a job's outcome does not depend on which worker
/// processed which block or in what order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Cap on total GRAPE Adam iterations per block (across restarts,
    /// duration-search probes, and recovery-ladder attempts).
    pub grape_iters: Option<u64>,
    /// Cap on QSearch node evaluations per block (across LEAP restarts
    /// and budget-escalation retries).
    pub qsearch_nodes: Option<u64>,
}

impl Budget {
    /// `true` when at least one cap is set.
    pub fn is_limited(&self) -> bool {
        self.grape_iters.is_some() || self.qsearch_nodes.is_some()
    }

    /// Parses a budget spec of the form
    /// `grape_iters=N,qsearch_nodes=M` (either key may be omitted).
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for unknown keys or non-numeric
    /// values.
    pub fn parse_spec(spec: &str) -> Result<Budget, String> {
        let mut budget = Budget::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("budget clause '{part}' is not key=value"))?;
            let n: u64 = value
                .trim()
                .parse()
                .map_err(|_| format!("budget value '{value}' is not a non-negative integer"))?;
            match key.trim() {
                "grape_iters" => budget.grape_iters = Some(n),
                "qsearch_nodes" => budget.qsearch_nodes = Some(n),
                other => return Err(format!("unknown budget key '{other}'")),
            }
        }
        Ok(budget)
    }
}

/// A cancellation token: optional cancel flag, optional wall-clock
/// deadline, optional work budgets. Cloning is cheap; clones share the
/// cancel flag.
///
/// # Examples
///
/// ```
/// use epoc_rt::cancel::{Budget, CancelToken};
///
/// let token = CancelToken::new()
///     .with_budget(Budget { grape_iters: Some(100), qsearch_nodes: None });
/// let scope = token.scope();
/// assert!(scope.spend_grape_iter().unwrap()); // within budget
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Option<Arc<AtomicBool>>,
    deadline: Option<Instant>,
    budget: Budget,
}

impl CancelToken {
    /// A token with a cancel flag but no deadline and no budgets.
    pub fn new() -> Self {
        Self {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
            budget: Budget::default(),
        }
    }

    /// Adds a wall-clock deadline `ms` milliseconds from now.
    pub fn with_deadline_ms(mut self, ms: u64) -> Self {
        self.deadline = Some(Instant::now() + Duration::from_millis(ms));
        self
    }

    /// Adds deterministic work budgets.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Raises the cancel flag: every scope of this token (and its
    /// clones) fails its next poll with [`CancelReason::Canceled`].
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// The token's work budgets.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// `true` when the token carries any work budget (callers use this
    /// to decide whether a degraded result may have been caused by a
    /// budget rather than the problem itself).
    pub fn has_budget(&self) -> bool {
        self.budget.is_limited()
    }

    /// `true` when the token can ever cancel or degrade anything —
    /// `false` for the inert default token.
    pub fn is_active(&self) -> bool {
        self.flag.is_some() || self.deadline.is_some() || self.budget.is_limited()
    }

    /// Checks the *hard* cancellation conditions (flag, deadline).
    /// Budgets are soft and live on the scope.
    pub fn hard_reason(&self) -> Option<CancelReason> {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return Some(CancelReason::Canceled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(CancelReason::DeadlineExceeded);
            }
        }
        None
    }

    /// Opens a per-work-item scope charging against fresh budget
    /// counters. Each block of a compile gets its own scope, so budget
    /// accounting is independent of work distribution across threads.
    pub fn scope(&self) -> CancelScope {
        CancelScope {
            token: self.clone(),
            grape_spent: Cell::new(0),
            qsearch_spent: Cell::new(0),
        }
    }
}

/// Per-work-item cancellation scope: shares the token's flag/deadline,
/// owns fresh budget counters. Not `Sync` — create one scope per block,
/// inside the worker that processes it.
#[derive(Debug)]
pub struct CancelScope {
    token: CancelToken,
    grape_spent: Cell<u64>,
    qsearch_spent: Cell<u64>,
}

impl CancelScope {
    /// An inert scope (no flag, no deadline, no budgets) for callers
    /// that don't thread a token.
    pub fn none() -> Self {
        CancelToken::default().scope()
    }

    /// Polls the hard cancellation conditions.
    ///
    /// # Errors
    ///
    /// Returns the [`CancelReason`] when the token's flag is raised or
    /// its deadline has passed.
    pub fn poll(&self) -> Result<(), CancelReason> {
        match self.token.hard_reason() {
            Some(reason) => Err(reason),
            None => Ok(()),
        }
    }

    /// Charges one GRAPE Adam iteration against the scope's budget.
    ///
    /// Returns `Ok(true)` when the iteration is within budget,
    /// `Ok(false)` when the budget is exhausted (soft: the caller stops
    /// optimizing and lets the recovery ladder degrade the block).
    ///
    /// # Errors
    ///
    /// Returns the [`CancelReason`] on a hard cancel (flag or deadline).
    pub fn spend_grape_iter(&self) -> Result<bool, CancelReason> {
        if !self.token.is_active() {
            return Ok(true);
        }
        self.poll()?;
        match self.token.budget.grape_iters {
            None => Ok(true),
            Some(cap) => {
                if self.grape_spent.get() >= cap {
                    Ok(false)
                } else {
                    self.grape_spent.set(self.grape_spent.get() + 1);
                    Ok(true)
                }
            }
        }
    }

    /// Charges `n` QSearch node evaluations against the scope's budget.
    ///
    /// Returns `Ok(true)` when within budget, `Ok(false)` when
    /// exhausted (soft: the search stops expanding and returns its best
    /// partial result, exactly as if `max_nodes` had been reached).
    ///
    /// # Errors
    ///
    /// Returns the [`CancelReason`] on a hard cancel (flag or deadline).
    pub fn spend_qsearch_nodes(&self, n: u64) -> Result<bool, CancelReason> {
        if !self.token.is_active() {
            return Ok(true);
        }
        self.poll()?;
        match self.token.budget.qsearch_nodes {
            None => Ok(true),
            Some(cap) => {
                let spent = self.qsearch_spent.get();
                if spent >= cap {
                    Ok(false)
                } else {
                    self.qsearch_spent.set(spent.saturating_add(n));
                    Ok(true)
                }
            }
        }
    }

    /// GRAPE iterations charged so far.
    pub fn grape_spent(&self) -> u64 {
        self.grape_spent.get()
    }

    /// QSearch nodes charged so far.
    pub fn qsearch_spent(&self) -> u64 {
        self.qsearch_spent.get()
    }

    /// The token this scope charges against.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_is_inert() {
        let token = CancelToken::default();
        assert!(!token.is_active());
        assert!(token.hard_reason().is_none());
        let scope = token.scope();
        assert!(scope.poll().is_ok());
        assert_eq!(scope.spend_grape_iter(), Ok(true));
        assert_eq!(scope.spend_qsearch_nodes(100), Ok(true));
        // Inert scopes don't even count (fast path).
        assert_eq!(scope.grape_spent(), 0);
    }

    #[test]
    fn cancel_flag_is_shared_across_clones_and_scopes() {
        let token = CancelToken::new();
        let clone = token.clone();
        let scope = clone.scope();
        assert!(scope.poll().is_ok());
        token.cancel();
        assert_eq!(scope.poll(), Err(CancelReason::Canceled));
        assert_eq!(scope.spend_grape_iter(), Err(CancelReason::Canceled));
    }

    #[test]
    fn elapsed_deadline_fails_hard() {
        let token = CancelToken::new().with_deadline_ms(0);
        std::thread::sleep(Duration::from_millis(2));
        let scope = token.scope();
        assert_eq!(scope.poll(), Err(CancelReason::DeadlineExceeded));
        assert_eq!(
            scope.spend_qsearch_nodes(1),
            Err(CancelReason::DeadlineExceeded)
        );
    }

    #[test]
    fn budgets_exhaust_softly_and_per_scope() {
        let token = CancelToken::default().with_budget(Budget {
            grape_iters: Some(2),
            qsearch_nodes: Some(3),
        });
        let scope = token.scope();
        assert_eq!(scope.spend_grape_iter(), Ok(true));
        assert_eq!(scope.spend_grape_iter(), Ok(true));
        assert_eq!(scope.spend_grape_iter(), Ok(false));
        assert_eq!(scope.grape_spent(), 2);
        assert_eq!(scope.spend_qsearch_nodes(2), Ok(true));
        assert_eq!(scope.spend_qsearch_nodes(2), Ok(true));
        assert_eq!(scope.spend_qsearch_nodes(2), Ok(false));
        // A fresh scope on the same token has a fresh budget.
        let fresh = token.scope();
        assert_eq!(fresh.spend_grape_iter(), Ok(true));
    }

    #[test]
    fn parse_spec_round_trips_both_keys() {
        let b = Budget::parse_spec("grape_iters=100,qsearch_nodes=50").unwrap();
        assert_eq!(b.grape_iters, Some(100));
        assert_eq!(b.qsearch_nodes, Some(50));
        let b = Budget::parse_spec("qsearch_nodes=7").unwrap();
        assert_eq!(b.grape_iters, None);
        assert_eq!(b.qsearch_nodes, Some(7));
        assert!(Budget::parse_spec("grape_iters=x").is_err());
        assert!(Budget::parse_spec("nodes=3").is_err());
        assert!(Budget::parse_spec("grape_iters").is_err());
        assert!(!Budget::parse_spec("").unwrap().is_limited());
    }

    #[test]
    fn reasons_display() {
        assert_eq!(CancelReason::Canceled.to_string(), "canceled");
        assert_eq!(CancelReason::DeadlineExceeded.to_string(), "deadline exceeded");
    }
}

//! A minimal property-based testing harness.
//!
//! Replaces the workspace's use of `proptest`: seeded case generation,
//! bounded shrinking, and regression replay, in ~200 lines on `std`.
//!
//! A property draws its inputs from a [`Gen`] and fails by panicking
//! (plain `assert!`s work unchanged). Internally every draw is recorded as
//! a *choice* (a `u64`); on failure the harness shrinks the recorded
//! choice stream — zeroing and halving entries, bounded by
//! [`Property::max_shrink`] attempts — and reports the smallest stream
//! that still fails. That stream can be pinned with
//! [`Property::regression`] so the failure is replayed first on every
//! future run (the same intent as proptest's `.proptest-regressions`
//! files, but explicit in the test source instead of a side file).
//!
//! ```
//! epoc_rt::check::property("add_commutes").cases(32).run(|g| {
//!     let a = g.usize_in(0, 1000);
//!     let b = g.usize_in(0, 1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::rng::{Rng, SplitMix64, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Starts building a property check. The name seeds case generation (so
/// distinct properties explore distinct inputs) and labels failures.
pub fn property(name: &str) -> Property {
    Property {
        name: name.to_string(),
        cases: 48,
        seed: fnv1a(name.as_bytes()),
        max_shrink: 256,
        regressions: Vec::new(),
    }
}

/// A configured property check; built by [`property`], executed by
/// [`Property::run`].
pub struct Property {
    name: String,
    cases: usize,
    seed: u64,
    max_shrink: usize,
    regressions: Vec<Vec<u64>>,
}

impl Property {
    /// Sets the number of random cases (default 48, matching the case
    /// count the workspace's proptest suites ran with).
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the generation seed (default: a hash of the name).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Bounds the number of shrink attempts after a failure (default 256).
    pub fn max_shrink(mut self, attempts: usize) -> Self {
        self.max_shrink = attempts;
        self
    }

    /// Pins a recorded choice stream as a regression case, replayed before
    /// any random cases. Copy the stream from a failure report.
    pub fn regression(mut self, choices: &[u64]) -> Self {
        self.regressions.push(choices.to_vec());
        self
    }

    /// Runs the property: all pinned regressions first, then `cases`
    /// random cases. Panics with a replayable report on the first failure
    /// (after shrinking it).
    pub fn run<F: Fn(&mut Gen)>(self, f: F) {
        for (i, pinned) in self.regressions.iter().enumerate() {
            if let Err(msg) = run_case(&f, pinned, 0) {
                panic!(
                    "property '{}' failed on pinned regression #{i}\n  choices: {pinned:?}\n  cause: {msg}",
                    self.name
                );
            }
        }
        let mut seeds = SplitMix64::new(self.seed);
        for case in 0..self.cases {
            let case_seed = seeds.next_u64();
            let fresh: Vec<u64> = Vec::new();
            if let Err((record, msg)) = run_recorded(&f, &fresh, case_seed) {
                let (shrunk, final_msg) = shrink(&f, record, msg, self.max_shrink);
                panic!(
                    "property '{}' failed on case {case}/{}\n  pin with: .regression(&{shrunk:?})\n  cause: {final_msg}",
                    self.name, self.cases
                );
            }
        }
    }
}

/// Runs one case, replaying `choices` (zero-padded past the end).
fn run_case<F: Fn(&mut Gen)>(f: &F, choices: &[u64], seed: u64) -> Result<(), String> {
    run_recorded(f, choices, seed).map_err(|(_, msg)| msg)
}

/// Runs one case and, on failure, returns the recorded choice stream.
fn run_recorded<F: Fn(&mut Gen)>(
    f: &F,
    replay: &[u64],
    seed: u64,
) -> Result<(), (Vec<u64>, String)> {
    let mut gen = Gen {
        rng: StdRng::seed_from_u64(seed),
        replay: replay.to_vec(),
        // A non-empty replay stream is a deterministic case: draws past
        // its end read 0 (the minimal choice) instead of fresh entropy.
        pad_zero: !replay.is_empty(),
        pos: 0,
        record: Vec::new(),
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut gen)));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => Err((gen.record, panic_message(payload.as_ref())))
    }
}

/// Bounded shrinking: repeatedly try zeroing, then halving, each recorded
/// choice; keep any candidate that still fails. Greedy first-improvement,
/// stopped after `budget` candidate executions.
fn shrink<F: Fn(&mut Gen)>(
    f: &F,
    mut best: Vec<u64>,
    mut msg: String,
    budget: usize,
) -> (Vec<u64>, String) {
    let mut attempts = 0usize;
    let mut improved = true;
    while improved && attempts < budget {
        improved = false;
        for i in 0..best.len() {
            if best[i] == 0 {
                continue;
            }
            for candidate_value in [0, best[i] / 2] {
                if candidate_value == best[i] {
                    continue;
                }
                let mut candidate = best.clone();
                candidate[i] = candidate_value;
                attempts += 1;
                if let Err((_, m)) = run_recorded(f, &candidate, 0) {
                    best = candidate;
                    msg = m;
                    improved = true;
                    break;
                }
                if attempts >= budget {
                    return (best, msg);
                }
            }
        }
    }
    (best, msg)
}

/// The value source handed to a property. Every draw is recorded so a
/// failing case can be shrunk and replayed.
pub struct Gen {
    rng: StdRng,
    replay: Vec<u64>,
    pad_zero: bool,
    pos: usize,
    record: Vec<u64>,
}

impl Gen {
    /// One recorded choice in `[0, bound)`.
    fn choice(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let raw = if self.pos < self.replay.len() {
            self.replay[self.pos] % bound
        } else if self.pad_zero {
            0
        } else {
            self.rng.next_u64_below(bound)
        };
        self.pos += 1;
        self.record.push(raw);
        raw
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.choice((hi - lo) as u64) as usize
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.choice(hi - lo)
    }

    /// Uniform `f64` in `[lo, hi)`, quantized to 2^53 steps of the range
    /// so the drawn choice shrinks toward `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let steps = 1u64 << 53;
        let t = self.choice(steps) as f64 / steps as f64;
        lo + t * (hi - lo)
    }

    /// A recorded coin flip.
    pub fn bool(&mut self) -> bool {
        self.choice(2) == 1
    }

    /// A vector with a drawn length in `[min_len, max_len)`, elements
    /// produced by `f`.
    ///
    /// # Panics
    ///
    /// Panics if `min_len >= max_len`.
    pub fn vec<T>(&mut self, min_len: usize, max_len: usize, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| f(self)).collect()
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// FNV-1a over bytes: stable, dependency-free name hashing for per-
/// property seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = AtomicUsize::new(0);
        property("trivially_true").cases(17).run(|g| {
            let _ = g.usize_in(0, 10);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn failing_property_panics_with_pin_line() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            property("always_fails").cases(4).run(|g| {
                let v = g.usize_in(0, 100);
                assert!(v > 1000, "v was {v}");
            });
        }))
        .expect_err("property should fail");
        let msg = panic_message(err.as_ref());
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains(".regression(&"), "{msg}");
    }

    #[test]
    fn shrinking_reaches_minimal_counterexample() {
        // Fails whenever x >= 10; the minimal failing choice is x = 10.
        let err = catch_unwind(AssertUnwindSafe(|| {
            property("shrinks_to_ten").cases(200).run(|g| {
                let x = g.usize_in(0, 1_000_000);
                assert!(x < 10, "x = {x}");
            });
        }))
        .expect_err("property should fail");
        let msg = panic_message(err.as_ref());
        // The zero/halving shrinker on a single choice converges to a
        // value in [10, 19]: halving stops once v/2 passes.
        let pinned: u64 = msg
            .split(".regression(&[")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or_else(|| panic!("no pinned stream in: {msg}"));
        assert!((10..20).contains(&pinned), "shrunk to {pinned}: {msg}");
    }

    #[test]
    fn regression_replay_is_deterministic() {
        // A pinned stream replays exactly the encoded values.
        property("replay_exact")
            .regression(&[7, 3])
            .cases(0)
            .run(|g| {
                assert_eq!(g.usize_in(0, 100), 7);
                assert_eq!(g.usize_in(0, 100), 3);
                // Draws past the pinned stream read the minimal choice.
                assert_eq!(g.usize_in(5, 50), 5);
            });
    }

    #[test]
    fn same_name_same_cases() {
        let mut first: Vec<usize> = Vec::new();
        {
            let v = std::sync::Mutex::new(&mut first);
            property("stable_stream").cases(5).run(|g| {
                v.lock().unwrap().push(g.usize_in(0, 1_000_000));
            });
        }
        let mut second: Vec<usize> = Vec::new();
        {
            let v = std::sync::Mutex::new(&mut second);
            property("stable_stream").cases(5).run(|g| {
                v.lock().unwrap().push(g.usize_in(0, 1_000_000));
            });
        }
        assert_eq!(first, second);
        assert!(first.windows(2).any(|w| w[0] != w[1]), "degenerate stream");
    }

    #[test]
    fn f64_draws_stay_in_range() {
        property("f64_bounds").cases(64).run(|g| {
            let x = g.f64_in(-2.5, 2.5);
            assert!((-2.5..2.5).contains(&x));
        });
    }

    #[test]
    fn vec_length_respected() {
        property("vec_len").cases(32).run(|g| {
            let v = g.vec(1, 20, |g| g.f64_in(-0.5, 0.5));
            assert!((1..20).contains(&v.len()));
        });
    }
}

//! Deterministic, seeded fault injection for chaos testing.
//!
//! Production code plants *fail points* — named markers at the places
//! where an operation can legitimately fail (an optimizer not converging,
//! a cache dropping an entry, a simulator step erroring). A disarmed fail
//! point is **one relaxed atomic load** and an immediate `false`, the same
//! fast-path discipline as [`crate::telemetry`], so instrumented hot loops
//! cost nothing in production runs.
//!
//! Tests and the `epocc --faults` CLI arm points by string label with a
//! [`Trigger`]:
//!
//! * [`Trigger::Always`] — every consult fires (failure storms);
//! * [`Trigger::NthHit`]`(n)` — only the `n`-th consult fires (surgical,
//!   for serial code paths where the consult order is deterministic);
//! * [`Trigger::FirstHits`]`(n)` — the first `n` consults fire (force one
//!   attempt to fail and let its retry succeed);
//! * [`Trigger::Probability`]`(p)` — fires when a **pure hash** of
//!   `(global seed, label, caller key)` lands below `p`.
//!
//! Probability decisions deliberately avoid the hit counter: parallel
//! stages consult fail points in a thread-dependent order, and a
//! counter-keyed coin flip would make injected failures — and therefore
//! the recovery ladder — depend on worker count. Call sites inside
//! parallel code use [`fail_point_keyed`] with a key derived from their
//! *inputs* (e.g. a fingerprint of the target unitary plus the search
//! configuration), so the same work item draws the same fate on every
//! thread schedule. Counter-based triggers (`NthHit`/`FirstHits`) are for
//! serial paths only, where hit order is already deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// When an armed fail point fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Every consult fires.
    Always,
    /// Only the `n`-th consult (1-based) fires.
    NthHit(u64),
    /// The first `n` consults fire; later consults pass.
    FirstHits(u64),
    /// Fires when `hash(seed, label, key)` maps below `p` in `[0, 1)`.
    Probability(f64),
}

struct Point {
    trigger: Trigger,
    hits: u64,
    fires: u64,
}

struct Registry {
    seed: u64,
    points: HashMap<String, Point>,
}

/// Fast-path switch: `true` iff at least one point is armed.
static ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        Mutex::new(Registry {
            seed: 0,
            points: HashMap::new(),
        })
    })
}

/// Poison-recovering lock: a panicked consumer (chaos tests panic on
/// purpose) must not wedge the registry for the rest of the process.
fn lock() -> MutexGuard<'static, Registry> {
    registry().lock().unwrap_or_else(|e| e.into_inner())
}

/// `true` when at least one fail point is armed (one relaxed atomic load).
#[inline]
pub fn is_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Sets the global fault seed feeding every [`Trigger::Probability`]
/// decision. Does not reset armed points or counters.
pub fn set_seed(seed: u64) {
    lock().seed = seed;
}

/// Arms (or re-arms) `label` with `trigger`, resetting its hit and fire
/// counters.
pub fn arm(label: &str, trigger: Trigger) {
    let mut r = lock();
    r.points.insert(
        label.to_string(),
        Point {
            trigger,
            hits: 0,
            fires: 0,
        },
    );
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarms `label` (no-op when not armed).
pub fn disarm(label: &str) {
    let mut r = lock();
    r.points.remove(label);
    if r.points.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Disarms everything and clears the global fault seed.
pub fn disarm_all() {
    let mut r = lock();
    r.points.clear();
    r.seed = 0;
    ARMED.store(false, Ordering::Relaxed);
}

/// Consults recorded for `label` so far (0 when never armed).
pub fn hits(label: &str) -> u64 {
    lock().points.get(label).map_or(0, |p| p.hits)
}

/// Times `label` actually fired so far (0 when never armed).
pub fn fires(label: &str) -> u64 {
    lock().points.get(label).map_or(0, |p| p.fires)
}

/// SplitMix64 finalizer: the bit mixer behind every keyed decision.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Folds `v` into hash state `h`. Callers build deterministic keys for
/// [`fail_point_keyed`] by chaining: `mix(mix(0, a), b)`.
#[inline]
pub fn mix(h: u64, v: u64) -> u64 {
    splitmix(h ^ v)
}

/// Folds an `f64` into hash state `h` by its bit pattern.
#[inline]
pub fn mix_f64(h: u64, v: f64) -> u64 {
    mix(h, v.to_bits())
}

/// FNV-1a over the label, so distinct labels with the same key draw
/// independent fates.
fn label_hash(label: &str) -> u64 {
    let mut h = 0xCBF29CE484222325u64;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001B3);
    }
    h
}

/// The uniform draw in `[0, 1)` a probability trigger on `label` compares
/// against `p` for the given `key` under the current seed. Exposed so
/// tests can pick thresholds that hit exactly the attempt they target.
pub fn decision_unit(label: &str, key: u64) -> f64 {
    let seed = lock().seed;
    decision_unit_seeded(seed, label, key)
}

fn decision_unit_seeded(seed: u64, label: &str, key: u64) -> f64 {
    let h = splitmix(seed ^ label_hash(label) ^ splitmix(key));
    // 53 mantissa bits → exact uniform on a 2^-53 grid.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

fn consult(label: &str, key: Option<u64>) -> bool {
    let mut r = lock();
    let seed = r.seed;
    let Some(p) = r.points.get_mut(label) else {
        return false;
    };
    p.hits += 1;
    let fired = match p.trigger {
        Trigger::Always => true,
        Trigger::NthHit(n) => p.hits == n,
        Trigger::FirstHits(n) => p.hits <= n,
        Trigger::Probability(prob) => {
            // Counter-keyed when the caller passed no key: fine for serial
            // paths, thread-schedule-dependent in parallel ones (use
            // `fail_point_keyed` there).
            let key = key.unwrap_or(p.hits);
            decision_unit_seeded(seed, label, key) < prob
        }
    };
    if fired {
        p.fires += 1;
    }
    fired
}

/// Consults the fail point `label`; `true` means "inject a failure here".
/// Counter-ordered: use only on serial code paths (disarmed: one atomic
/// load).
#[inline]
pub fn fail_point(label: &str) -> bool {
    if !is_armed() {
        return false;
    }
    consult(label, None)
}

/// Consults `label` with a caller-supplied deterministic `key` (build it
/// with [`mix`]/[`mix_f64`] from the operation's inputs). Probability
/// decisions become pure functions of `(seed, label, key)` — safe inside
/// parallel stages. Disarmed: one atomic load.
#[inline]
pub fn fail_point_keyed(label: &str, key: u64) -> bool {
    if !is_armed() {
        return false;
    }
    consult(label, Some(key))
}

/// Arms fail points from a CLI/env spec: comma-separated `label=trigger`
/// with triggers `always`, `pP` (probability, e.g. `p0.25`), `nN`
/// (nth-hit), `fN` (first-N-hits).
///
/// ```
/// epoc_rt::faults::arm_from_spec("grape.converge=always,qsearch.budget=p0.5").unwrap();
/// assert!(epoc_rt::faults::is_armed());
/// epoc_rt::faults::disarm_all();
/// ```
pub fn arm_from_spec(spec: &str) -> Result<(), String> {
    for part in spec.split(',').filter(|s| !s.is_empty()) {
        let (label, trig) = part
            .split_once('=')
            .ok_or_else(|| format!("fault spec '{part}' is not label=trigger"))?;
        let trigger = if trig == "always" {
            Trigger::Always
        } else if let Some(p) = trig.strip_prefix('p') {
            let p: f64 = p
                .parse()
                .map_err(|_| format!("fault spec '{part}': bad probability '{trig}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault spec '{part}': probability out of [0, 1]"));
            }
            Trigger::Probability(p)
        } else if let Some(n) = trig.strip_prefix('n') {
            Trigger::NthHit(
                n.parse()
                    .map_err(|_| format!("fault spec '{part}': bad hit index '{trig}'"))?,
            )
        } else if let Some(n) = trig.strip_prefix('f') {
            Trigger::FirstHits(
                n.parse()
                    .map_err(|_| format!("fault spec '{part}': bad hit count '{trig}'"))?,
            )
        } else {
            return Err(format!(
                "fault spec '{part}': unknown trigger '{trig}' (always | pP | nN | fN)"
            ));
        };
        arm(label.trim(), trigger);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fault state is global; tests in this binary serialize on this.
    fn test_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_points_never_fire() {
        let _g = test_lock();
        disarm_all();
        assert!(!is_armed());
        assert!(!fail_point("nope"));
        assert!(!fail_point_keyed("nope", 7));
        assert_eq!(hits("nope"), 0);
    }

    #[test]
    fn always_fires_every_hit() {
        let _g = test_lock();
        disarm_all();
        arm("t.always", Trigger::Always);
        assert!(fail_point("t.always"));
        assert!(fail_point("t.always"));
        assert_eq!(hits("t.always"), 2);
        assert_eq!(fires("t.always"), 2);
        // Unarmed labels stay silent even while others are armed.
        assert!(!fail_point("t.other"));
        disarm_all();
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let _g = test_lock();
        disarm_all();
        arm("t.nth", Trigger::NthHit(3));
        let fired: Vec<bool> = (0..5).map(|_| fail_point("t.nth")).collect();
        assert_eq!(fired, [false, false, true, false, false]);
        assert_eq!(fires("t.nth"), 1);
        disarm_all();
    }

    #[test]
    fn first_hits_fires_then_stops() {
        let _g = test_lock();
        disarm_all();
        arm("t.first", Trigger::FirstHits(2));
        let fired: Vec<bool> = (0..4).map(|_| fail_point("t.first")).collect();
        assert_eq!(fired, [true, true, false, false]);
        disarm_all();
    }

    #[test]
    fn keyed_probability_is_a_pure_function() {
        let _g = test_lock();
        disarm_all();
        set_seed(42);
        arm("t.prob", Trigger::Probability(0.5));
        let a: Vec<bool> = (0..32).map(|k| fail_point_keyed("t.prob", k)).collect();
        // Re-arm (resets counters) and consult in reverse order: keyed
        // decisions must not depend on consult order.
        arm("t.prob", Trigger::Probability(0.5));
        let b: Vec<bool> = (0..32)
            .rev()
            .map(|k| fail_point_keyed("t.prob", k))
            .collect();
        let b_fwd: Vec<bool> = b.into_iter().rev().collect();
        assert_eq!(a, b_fwd);
        assert!(a.iter().any(|&f| f) && a.iter().any(|&f| !f), "p=0.5 over 32 keys");
        // A different seed redraws the fates.
        set_seed(43);
        arm("t.prob", Trigger::Probability(0.5));
        let c: Vec<bool> = (0..32).map(|k| fail_point_keyed("t.prob", k)).collect();
        assert_ne!(a, c);
        disarm_all();
    }

    #[test]
    fn decision_unit_matches_fired_outcome() {
        let _g = test_lock();
        disarm_all();
        set_seed(7);
        let u = decision_unit("t.du", 99);
        assert!((0.0..1.0).contains(&u));
        arm("t.du", Trigger::Probability(u + 1e-9));
        assert!(fail_point_keyed("t.du", 99), "threshold just above the draw");
        arm("t.du", Trigger::Probability(u - 1e-9));
        assert!(!fail_point_keyed("t.du", 99), "threshold just below the draw");
        disarm_all();
    }

    #[test]
    fn spec_parsing_arms_and_rejects() {
        let _g = test_lock();
        disarm_all();
        arm_from_spec("a=always, b=p0.25,c=n2,d=f3").unwrap();
        assert!(fail_point("a"));
        assert!(!fail_point("c") && fail_point("c"));
        assert!(fail_point("d"));
        assert!(arm_from_spec("bogus").is_err());
        assert!(arm_from_spec("x=p1.5").is_err());
        assert!(arm_from_spec("x=zzz").is_err());
        assert!(arm_from_spec("x=nq").is_err());
        disarm_all();
        assert!(!is_armed());
    }

    #[test]
    fn mix_chains_are_order_sensitive() {
        assert_ne!(mix(mix(0, 1), 2), mix(mix(0, 2), 1));
        assert_ne!(mix_f64(0, 1.0), mix_f64(0, -1.0));
        assert_eq!(mix(7, 9), mix(7, 9));
    }
}

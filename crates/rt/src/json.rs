//! A small JSON serializer.
//!
//! Replaces `serde`/`serde_json` for the compiler's report output. Values
//! are built as an explicit tree ([`Json`]); objects keep their keys in
//! insertion order, so the same tree always prints the same bytes — the
//! pipeline's byte-identical-report guarantee depends on that.
//!
//! Strings are escaped per RFC 8259 (quotes, backslashes, and all control
//! characters, the latter as `\u00XX`). Floats print in Rust's shortest
//! round-trip form with a `.0` appended when integral, matching how the
//! previous serde-based output looked; non-finite floats become `null`,
//! as `serde_json` does.
//!
//! [`Json::parse`] is the inverse: a strict RFC 8259 recursive-descent
//! parser, used by tooling that reads documents this module wrote (e.g.
//! the bench regression check comparing `BENCH_stages.json` against a
//! committed baseline).

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in the reports).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A double. Non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("push on non-object Json: {other:?}"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes pretty-printed with two-space indentation, the layout
    /// `serde_json::to_string_pretty` produced before.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes `x` so that parsing the output recovers `x` exactly: Rust's
/// `Debug` float formatting is shortest-round-trip, keeps a `.0` on
/// integral values, and switches to exponent notation at extreme
/// magnitudes. Non-finite values become `null`.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let _ = write!(out, "{x:?}");
}

/// Writes `s` quoted and escaped per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why [`Json::parse`] rejected a document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Parses an RFC 8259 JSON document.
    ///
    /// Strict: no trailing garbage, no comments, no trailing commas.
    /// Numbers without a fraction or exponent become [`Json::UInt`] /
    /// [`Json::Int`] when they fit, [`Json::Num`] otherwise, so documents
    /// written by this module round-trip through `parse` unchanged.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The key/value pairs of an object, in document order.
    pub fn entries(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Numeric value as `f64` (any of `UInt` / `Int` / `Num`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(n) => Some(*n as f64),
            Json::Int(n) => Some(*n as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.error(format!("bad escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.error("raw control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    out.push_str(std::str::from_utf8(&rest[..len]).expect("input was valid UTF-8"));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self.peek().and_then(|b| (b as char).to_digit(16));
            match d {
                Some(d) => {
                    v = v * 16 + d;
                    self.pos += 1;
                }
                None => return Err(self.error("expected four hex digits after \\u")),
            }
        }
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| self.error("bad surrogate pair"));
                }
            }
            return Err(self.error("lone high surrogate in \\u escape"));
        }
        char::from_u32(hi).ok_or_else(|| self.error("lone low surrogate in \\u escape"))
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected digit")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        if integral {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error(format!("bad number '{text}'")))
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print_as_expected() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::UInt(42).to_string_compact(), "42");
        assert_eq!(Json::Int(-7).to_string_compact(), "-7");
        assert_eq!(Json::Str("hi".into()).to_string_compact(), "\"hi\"");
    }

    #[test]
    fn floats_round_trip_and_keep_a_decimal_point() {
        assert_eq!(Json::Num(1.0).to_string_compact(), "1.0");
        assert_eq!(Json::Num(-0.5).to_string_compact(), "-0.5");
        assert_eq!(Json::Num(0.1).to_string_compact(), "0.1");
        assert_eq!(Json::Num(1e300).to_string_compact(), "1e300");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        // Shortest form parses back to the exact same bits.
        for x in [0.1, 1.0 / 3.0, 2.0_f64.sqrt(), 1234.5678e-12, -1.7e18] {
            let printed = Json::Num(x).to_string_compact();
            let reparsed: f64 = printed.parse().unwrap();
            assert_eq!(reparsed.to_bits(), x.to_bits(), "{printed}");
        }
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        let s = "a\"b\\c\nd\te\u{01}f";
        assert_eq!(
            Json::Str(s.into()).to_string_compact(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
        );
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(Json::Str("π≈3".into()).to_string_compact(), "\"π≈3\"");
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::obj().to_string_pretty(), "{}");
    }

    #[test]
    fn pretty_layout_matches_expected_bytes() {
        let doc = Json::obj()
            .push("flow", "epoc")
            .push("n_qubits", 3usize)
            .push("fidelity", 0.5f64)
            .push("tags", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let expected = "{\n  \"flow\": \"epoc\",\n  \"n_qubits\": 3,\n  \"fidelity\": 0.5,\n  \"tags\": [\n    1,\n    2\n  ]\n}";
        assert_eq!(doc.to_string_pretty(), expected);
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let doc = Json::obj().push("z", 1usize).push("a", 2usize).push("m", 3usize);
        assert_eq!(doc.to_string_compact(), "{\"z\":1,\"a\":2,\"m\":3}");
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let doc = Json::obj()
            .push("flow", "epoc")
            .push("none", Json::Null)
            .push("ok", true)
            .push("n", 42usize)
            .push("i", Json::Int(-7))
            .push("x", 0.125f64)
            .push("text", "a\"b\\c\nπ")
            .push("arr", Json::Arr(vec![Json::UInt(1), Json::Num(2.5), Json::Bool(false)]))
            .push("nested", Json::obj().push("k", 9usize));
        for printed in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&printed).unwrap(), doc, "{printed}");
        }
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0").unwrap(), Json::UInt(0));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Num(1500.0));
        assert_eq!(Json::parse("-0.25").unwrap(), Json::Num(-0.25));
        // u64::MAX + 1 no longer fits an integer type.
        assert_eq!(Json::parse("18446744073709551616").unwrap(), Json::Num(1.8446744073709552e19));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            Json::parse("\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\"").unwrap(),
            Json::Str("a\"b\\c\n\tAé".into())
        );
        // Surrogate pair for U+1F600.
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("\u{1F600}".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "", "tru", "{", "[1,", "[1,]", "{\"a\":}", "{\"a\" 1}", "01", "1.", "1e",
            "\"unterminated", "\"\\q\"", "\"\\ud800\"", "[1] junk", "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse("{\"benches\":{\"matmul\":{\"median_ns\":1500,\"name\":\"m\"}}}").unwrap();
        let entry = doc.get("benches").and_then(|b| b.get("matmul")).unwrap();
        assert_eq!(entry.get("median_ns").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(entry.get("name").and_then(Json::as_str), Some("m"));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.get("benches").unwrap().entries().unwrap().len(), 1);
        assert!(Json::UInt(3).entries().is_none());
    }

    #[test]
    fn nested_object_compact() {
        let doc = Json::obj().push(
            "stages",
            Json::obj().push("zx_depth_before", 9usize).push("pulses", 4usize),
        );
        assert_eq!(
            doc.to_string_compact(),
            "{\"stages\":{\"zx_depth_before\":9,\"pulses\":4}}"
        );
    }
}

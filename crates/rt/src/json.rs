//! A small JSON serializer.
//!
//! Replaces `serde`/`serde_json` for the compiler's report output. Values
//! are built as an explicit tree ([`Json`]); objects keep their keys in
//! insertion order, so the same tree always prints the same bytes — the
//! pipeline's byte-identical-report guarantee depends on that.
//!
//! Strings are escaped per RFC 8259 (quotes, backslashes, and all control
//! characters, the latter as `\u00XX`). Floats print in Rust's shortest
//! round-trip form with a `.0` appended when integral, matching how the
//! previous serde-based output looked; non-finite floats become `null`,
//! as `serde_json` does.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter in the reports).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A double. Non-finite values serialize as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::push`].
    pub fn obj() -> Self {
        Json::Obj(Vec::new())
    }

    /// Appends a key/value pair to an object (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Json::Obj(pairs) => pairs.push((key.to_string(), value.into())),
            other => panic!("push on non-object Json: {other:?}"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes pretty-printed with two-space indentation, the layout
    /// `serde_json::to_string_pretty` produced before.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

/// Writes `x` so that parsing the output recovers `x` exactly: Rust's
/// `Debug` float formatting is shortest-round-trip, keeps a `.0` on
/// integral values, and switches to exponent notation at extreme
/// magnitudes. Non-finite values become `null`.
fn write_f64(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let _ = write!(out, "{x:?}");
}

/// Writes `s` quoted and escaped per RFC 8259.
fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_print_as_expected() {
        assert_eq!(Json::Null.to_string_compact(), "null");
        assert_eq!(Json::Bool(true).to_string_compact(), "true");
        assert_eq!(Json::UInt(42).to_string_compact(), "42");
        assert_eq!(Json::Int(-7).to_string_compact(), "-7");
        assert_eq!(Json::Str("hi".into()).to_string_compact(), "\"hi\"");
    }

    #[test]
    fn floats_round_trip_and_keep_a_decimal_point() {
        assert_eq!(Json::Num(1.0).to_string_compact(), "1.0");
        assert_eq!(Json::Num(-0.5).to_string_compact(), "-0.5");
        assert_eq!(Json::Num(0.1).to_string_compact(), "0.1");
        assert_eq!(Json::Num(1e300).to_string_compact(), "1e300");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string_compact(), "null");
        // Shortest form parses back to the exact same bits.
        for x in [0.1, 1.0 / 3.0, 2.0_f64.sqrt(), 1234.5678e-12, -1.7e18] {
            let printed = Json::Num(x).to_string_compact();
            let reparsed: f64 = printed.parse().unwrap();
            assert_eq!(reparsed.to_bits(), x.to_bits(), "{printed}");
        }
    }

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        let s = "a\"b\\c\nd\te\u{01}f";
        assert_eq!(
            Json::Str(s.into()).to_string_compact(),
            "\"a\\\"b\\\\c\\nd\\te\\u0001f\""
        );
    }

    #[test]
    fn unicode_passes_through_unescaped() {
        assert_eq!(Json::Str("π≈3".into()).to_string_compact(), "\"π≈3\"");
    }

    #[test]
    fn empty_containers_stay_on_one_line() {
        assert_eq!(Json::Arr(vec![]).to_string_pretty(), "[]");
        assert_eq!(Json::obj().to_string_pretty(), "{}");
    }

    #[test]
    fn pretty_layout_matches_expected_bytes() {
        let doc = Json::obj()
            .push("flow", "epoc")
            .push("n_qubits", 3usize)
            .push("fidelity", 0.5f64)
            .push("tags", Json::Arr(vec![Json::UInt(1), Json::UInt(2)]));
        let expected = "{\n  \"flow\": \"epoc\",\n  \"n_qubits\": 3,\n  \"fidelity\": 0.5,\n  \"tags\": [\n    1,\n    2\n  ]\n}";
        assert_eq!(doc.to_string_pretty(), expected);
    }

    #[test]
    fn object_keys_keep_insertion_order() {
        let doc = Json::obj().push("z", 1usize).push("a", 2usize).push("m", 3usize);
        assert_eq!(doc.to_string_compact(), "{\"z\":1,\"a\":2,\"m\":3}");
    }

    #[test]
    fn nested_object_compact() {
        let doc = Json::obj().push(
            "stages",
            Json::obj().push("zx_depth_before", 9usize).push("pulses", 4usize),
        );
        assert_eq!(
            doc.to_string_compact(),
            "{\"stages\":{\"zx_depth_before\":9,\"pulses\":4}}"
        );
    }
}

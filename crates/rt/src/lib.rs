//! # epoc-rt — the hermetic runtime under every EPOC crate
//!
//! The workspace builds and tests fully offline: no crates-io registry,
//! no vendored sources. Everything the other crates used to pull from
//! external dependencies lives here, implemented on `std` alone:
//!
//! * [`rng`] — a seedable xoshiro256** PRNG (SplitMix64 seeding) with the
//!   sampling helpers the compiler needs (`gen_f64`, `gen_range`,
//!   `gen_gaussian` via Box–Muller). Replaces `rand`.
//! * [`check`] — a minimal property-based testing harness: seeded case
//!   generation, bounded choice-stream shrinking, and explicit regression
//!   replay. Replaces `proptest`.
//! * [`pool`] — scoped-thread parallel map over a slice with a
//!   configurable worker count. Replaces `crossbeam::thread::scope` (and
//!   the `parking_lot` locks around it).
//! * [`json`] — an escape-correct JSON value tree with a pretty printer
//!   whose `f64` formatting round-trips. Replaces `serde`/`serde_json`.
//! * [`bench`] — a tiny wall-clock benchmark harness (median-of-N with
//!   warmup). Replaces `criterion` for the stage benches.
//! * [`telemetry`] — RAII spans, monotonic counters, and log-2 histograms
//!   with Chrome trace-event export. Replaces `tracing`/`metrics`; off by
//!   default with a one-atomic-load fast path.
//! * [`faults`] — deterministic, seeded fault injection behind string
//!   labels (always / nth-hit / first-hits / keyed-probability triggers)
//!   for chaos testing. Replaces `fail`; disarmed fail points cost one
//!   atomic load.
//! * [`cancel`] — cooperative cancellation tokens carrying wall-clock
//!   deadlines and deterministic work budgets, polled at fixed points in
//!   the optimizer hot loops. Replaces `tokio_util::sync::CancellationToken`
//!   with a poll-based design that keeps budgeted outcomes byte-identical
//!   at any worker count.
//!
//! Every module is deliberately small: the goal is not to reimplement the
//! upstream crates, only the narrow slices the workspace consumes, with
//! deterministic behavior under a fixed seed so pipeline reports are
//! byte-identical regardless of worker count.

#![warn(missing_docs)]

pub mod bench;
pub mod cancel;
pub mod check;
pub mod faults;
pub mod json;
pub mod pool;
pub mod rng;
pub mod telemetry;

//! Scoped-thread parallel map.
//!
//! Replaces `crossbeam::thread::scope` in `core::pipeline`: a fixed crew
//! of workers pulls item indices off a shared atomic counter and writes
//! each result into its slot, so the output order matches the input order
//! regardless of which worker computed what. With equal inputs the output
//! is identical at any worker count — the property the pipeline's
//! determinism guarantee rests on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count to use when the caller has no preference: the
/// machine's available parallelism, falling back to 4 if that cannot be
/// determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Applies `f` to every item of `items`, spreading the work over
/// `workers` scoped threads, and returns the results in input order.
///
/// `f` receives the item index alongside the item. With `workers <= 1`
/// (or a single item) everything runs on the calling thread. A panic in
/// `f` propagates out of the scope.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker crew left a slot unfilled")
        })
        .collect()
}

/// Applies `f` to every element of `items` in place, spreading contiguous
/// chunks over `workers` scoped threads. `f` receives the element's index
/// alongside the element.
///
/// Each element is visited exactly once with its own index, so the final
/// contents of `items` are identical at any worker count — chunking only
/// decides which thread does the writing. With `workers <= 1` (or a single
/// item) everything runs on the calling thread. A panic in `f` propagates
/// out of the scope.
pub fn parallel_for_mut<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    let workers = workers.max(1).min(len.max(1));
    if workers <= 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    std::thread::scope(|scope| {
        for (c, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (off, t) in chunk_items.iter_mut().enumerate() {
                    f(c * chunk + off, t);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        let expected: Vec<usize> = (0..100).map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let items: Vec<u64> = (0..57).collect();
        let seq = parallel_map(&items, 1, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(13));
        let par = parallel_map(&items, 8, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(13));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out = parallel_map(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 64, |_, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let visits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..200).collect();
        parallel_map(&items, 6, |i, _| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "item {i} visited wrong count");
        }
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn for_mut_visits_every_index_once() {
        let mut items = vec![0usize; 137];
        parallel_for_mut(&mut items, 5, |i, slot| *slot = i * 3 + 1);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i * 3 + 1);
        }
    }

    #[test]
    fn for_mut_worker_count_does_not_change_result() {
        let mix = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(11);
        let mut seq = vec![0u64; 64];
        parallel_for_mut(&mut seq, 1, |i, slot| *slot = mix(i));
        for w in [2, 3, 8, 64] {
            let mut par = vec![0u64; 64];
            parallel_for_mut(&mut par, w, |i, slot| *slot = mix(i));
            assert_eq!(seq, par, "workers = {w}");
        }
    }

    #[test]
    fn for_mut_empty_and_tiny_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_mut(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![7u8];
        parallel_for_mut(&mut one, 9, |i, v| *v += i as u8 + 1);
        assert_eq!(one, vec![8]);
    }
}

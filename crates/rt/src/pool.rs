//! Scoped-thread parallel map.
//!
//! Replaces `crossbeam::thread::scope` in `core::pipeline`: a fixed crew
//! of workers pulls item indices off a shared atomic counter and writes
//! each result into its slot, so the output order matches the input order
//! regardless of which worker computed what. With equal inputs the output
//! is identical at any worker count — the property the pipeline's
//! determinism guarantee rests on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The worker count to use when the caller has no preference: the
/// machine's available parallelism, falling back to 4 if that cannot be
/// determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Applies `f` to every item of `items`, spreading the work over
/// `workers` scoped threads, and returns the results in input order.
///
/// `f` receives the item index alongside the item. With `workers <= 1`
/// (or a single item) everything runs on the calling thread. A panic in
/// `f` propagates out of the scope.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                *slots[i].lock().unwrap() = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("worker crew left a slot unfilled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        let expected: Vec<usize> = (0..100).map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let items: Vec<u64> = (0..57).collect();
        let seq = parallel_map(&items, 1, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(13));
        let par = parallel_map(&items, 8, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(13));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out = parallel_map(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 64, |_, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let visits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..200).collect();
        parallel_map(&items, 6, |i, _| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "item {i} visited wrong count");
        }
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }
}

//! Scoped-thread parallel map and a reusable dispatch crew.
//!
//! Replaces `crossbeam::thread::scope` in `core::pipeline`: a fixed crew
//! of workers pulls item indices off a shared atomic counter and writes
//! each result into its slot, so the output order matches the input order
//! regardless of which worker computed what. With equal inputs the output
//! is identical at any worker count — the property the pipeline's
//! determinism guarantee rests on.
//!
//! [`parallel_map`]/[`parallel_for_mut`] spawn threads per call, which is
//! fine for coarse one-shot fan-outs. [`with_crew`] keeps the threads
//! alive across many small dispatch rounds — the shape of an A* search
//! loop that evaluates a handful of candidates per expansion — paying the
//! spawn cost once per search instead of once per round.
//!
//! Every fan-out replicates the caller's telemetry job id (see
//! [`crate::telemetry::TelemetryScope`]) into the worker threads, so
//! spans and counters recorded inside a parallel stage stay attributed
//! to the compile job that dispatched it. The id travels with the work
//! (captured at dispatch time for crew rounds), never with the thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks `m`, recovering the guard from a poisoned lock. Poisoning here
/// means a sibling worker panicked mid-round; the protected data (result
/// slots, round state) is still structurally valid, and the panic itself
/// propagates when the thread scope joins — recovering keeps the
/// teardown orderly instead of cascading (an `unwrap` inside a `Drop`
/// during that unwind would abort the process).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The worker count to use when the caller has no preference: the
/// machine's available parallelism, falling back to 4 if that cannot be
/// determined.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Applies `f` to every item of `items`, spreading the work over
/// `workers` scoped threads, and returns the results in input order.
///
/// `f` receives the item index alongside the item. With `workers <= 1`
/// (or a single item) everything runs on the calling thread. A panic in
/// `f` propagates out of the scope.
pub fn parallel_map<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = workers.max(1).min(items.len().max(1));
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let job = crate::telemetry::current_job();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let _scope = crate::telemetry::TelemetryScope::enter(job);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let result = f(i, &items[i]);
                    *lock_recover(&slots[i]) = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .expect("worker crew left a slot unfilled")
        })
        .collect()
}

/// Applies `f` to every element of `items` in place, spreading contiguous
/// chunks over `workers` scoped threads. `f` receives the element's index
/// alongside the element.
///
/// Each element is visited exactly once with its own index, so the final
/// contents of `items` are identical at any worker count — chunking only
/// decides which thread does the writing. With `workers <= 1` (or a single
/// item) everything runs on the calling thread. A panic in `f` propagates
/// out of the scope.
pub fn parallel_for_mut<T, F>(items: &mut [T], workers: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = items.len();
    let workers = workers.max(1).min(len.max(1));
    if workers <= 1 {
        for (i, t) in items.iter_mut().enumerate() {
            f(i, t);
        }
        return;
    }
    let chunk = len.div_ceil(workers);
    let job = crate::telemetry::current_job();
    std::thread::scope(|scope| {
        for (c, chunk_items) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let _scope = crate::telemetry::TelemetryScope::enter(job);
                for (off, t) in chunk_items.iter_mut().enumerate() {
                    f(c * chunk + off, t);
                }
            });
        }
    });
}

/// One batch of work shared between the dispatcher and the crew: items,
/// one result slot per item, a claim counter, and a completion counter.
struct Round<T, R> {
    items: Arc<Vec<T>>,
    results: Arc<Vec<Mutex<Option<R>>>>,
    next: Arc<AtomicUsize>,
    done: Arc<AtomicUsize>,
    /// Telemetry job id of the dispatching thread, replicated into each
    /// worker for the duration of the round.
    job: u64,
}

// Manual impl: `derive(Clone)` would demand `T: Clone` / `R: Clone`,
// but only the `Arc` handles are cloned.
impl<T, R> Clone for Round<T, R> {
    fn clone(&self) -> Self {
        Self {
            items: Arc::clone(&self.items),
            results: Arc::clone(&self.results),
            next: Arc::clone(&self.next),
            done: Arc::clone(&self.done),
            job: self.job,
        }
    }
}

struct RoundState<T, R> {
    /// Bumped on every dispatch so sleeping workers can tell a new round
    /// from a spurious wakeup.
    generation: u64,
    shutdown: bool,
    round: Option<Round<T, R>>,
}

struct CrewShared<T, R> {
    state: Mutex<RoundState<T, R>>,
    /// Signaled by the dispatcher when a new round is posted (or on
    /// shutdown).
    work_cv: Condvar,
    /// Signaled by whichever thread finishes a round's last item.
    done_cv: Condvar,
}

/// Claims and computes items of `round` until none remain. Run by both
/// the crew workers and the dispatching thread itself.
fn run_round<T, R, F>(round: &Round<T, R>, job: &F, shared: &CrewShared<T, R>)
where
    F: Fn(usize, &T) -> R,
{
    let n = round.items.len();
    loop {
        let i = round.next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        let result = job(i, &round.items[i]);
        *lock_recover(&round.results[i]) = Some(result);
        if round.done.fetch_add(1, Ordering::AcqRel) + 1 == n {
            // Takes the state lock before notifying so the wakeup cannot
            // slip between the dispatcher's counter check and its wait.
            let _st = lock_recover(&shared.state);
            shared.done_cv.notify_all();
        }
    }
}

fn crew_worker<T, R, F>(shared: &CrewShared<T, R>, job: &F)
where
    F: Fn(usize, &T) -> R,
{
    let mut seen = 0u64;
    loop {
        let round = {
            let mut st = lock_recover(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen {
                    seen = st.generation;
                    // The round may already be over (the dispatcher
                    // finished it alone and took it down): keep waiting.
                    if let Some(r) = st.round.clone() {
                        break r;
                    }
                }
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let _scope = crate::telemetry::TelemetryScope::enter(round.job);
        run_round(&round, job, shared);
    }
}

/// Signals shutdown when the driver exits (normally or by panic) so the
/// scoped workers wake up and join instead of deadlocking the scope.
struct ShutdownGuard<'a, T, R>(&'a CrewShared<T, R>);

impl<T, R> Drop for ShutdownGuard<'_, T, R> {
    fn drop(&mut self) {
        // This drop runs while a panic may be unwinding (that is its
        // whole purpose); the poison-recovering lock keeps it from
        // double-panicking into a process abort.
        lock_recover(&self.0.state).shutdown = true;
        self.0.work_cv.notify_all();
    }
}

/// A reusable worker crew handed to the driver closure of [`with_crew`].
///
/// [`Crew::dispatch`] fans a batch of items out over the crew and returns
/// the results **in input order** — which worker computed what never
/// shows, so a dispatch round is deterministic at any worker count.
pub struct Crew<'a, T, R, F> {
    /// `None` means the crew is inline: `dispatch` runs on the caller.
    shared: Option<&'a CrewShared<T, R>>,
    job: &'a F,
}

impl<T, R, F> Crew<'_, T, R, F>
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    /// Evaluates `job` on every item and returns the results in input
    /// order. The dispatching thread participates in the computation, so
    /// a one-worker crew is exactly a serial loop.
    pub fn dispatch(&self, items: Vec<T>) -> Vec<R> {
        let Some(shared) = self.shared else {
            return items.iter().enumerate().map(|(i, t)| (self.job)(i, t)).collect();
        };
        if items.is_empty() {
            return Vec::new();
        }
        let n = items.len();
        let round = Round {
            items: Arc::new(items),
            results: Arc::new((0..n).map(|_| Mutex::new(None)).collect()),
            next: Arc::new(AtomicUsize::new(0)),
            done: Arc::new(AtomicUsize::new(0)),
            job: crate::telemetry::current_job(),
        };
        {
            let mut st = lock_recover(&shared.state);
            st.generation = st.generation.wrapping_add(1);
            st.round = Some(round.clone());
            shared.work_cv.notify_all();
        }
        // Help with the round, then wait out any straggler workers.
        run_round(&round, self.job, shared);
        {
            let mut st = lock_recover(&shared.state);
            while round.done.load(Ordering::Acquire) < n {
                st = shared
                    .done_cv
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.round = None;
        }
        round
            .results
            .iter()
            .map(|slot| {
                lock_recover(slot)
                    .take()
                    .expect("worker crew left a slot unfilled")
            })
            .collect()
    }
}

/// Runs `driver` with a crew of `workers` threads evaluating `job`.
///
/// The crew is spawned once and reused by every [`Crew::dispatch`] the
/// driver makes — the cheap-per-round counterpart to [`parallel_map`].
/// With `workers <= 1` no threads are spawned and dispatch runs inline on
/// the calling thread; the dispatching thread always participates, so
/// `workers` is the total computing thread count. A panic in `job`
/// propagates out of the scope (a panic in `driver` shuts the crew down
/// before unwinding).
pub fn with_crew<T, R, F, D, Out>(workers: usize, job: F, driver: D) -> Out
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
    D: FnOnce(&Crew<'_, T, R, F>) -> Out,
{
    if workers <= 1 {
        return driver(&Crew { shared: None, job: &job });
    }
    let shared = CrewShared {
        state: Mutex::new(RoundState {
            generation: 0,
            shutdown: false,
            round: None,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    };
    std::thread::scope(|scope| {
        let _guard = ShutdownGuard(&shared);
        for _ in 0..workers - 1 {
            scope.spawn(|| crew_worker(&shared, &job));
        }
        driver(&Crew {
            shared: Some(&shared),
            job: &job,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, 4, |i, &x| {
            assert_eq!(i, x);
            x * x
        });
        let expected: Vec<usize> = (0..100).map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_worker_matches_many_workers() {
        let items: Vec<u64> = (0..57).collect();
        let seq = parallel_map(&items, 1, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(13));
        let par = parallel_map(&items, 8, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(13));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: Vec<u32> = Vec::new();
        let out = parallel_map(&items, 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let items = vec![1, 2, 3];
        let out = parallel_map(&items, 64, |_, &x| x * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn every_item_visited_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let visits: Vec<AtomicUsize> = (0..200).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..200).collect();
        parallel_map(&items, 6, |i, _| {
            visits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, v) in visits.iter().enumerate() {
            assert_eq!(v.load(Ordering::Relaxed), 1, "item {i} visited wrong count");
        }
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn for_mut_visits_every_index_once() {
        let mut items = vec![0usize; 137];
        parallel_for_mut(&mut items, 5, |i, slot| *slot = i * 3 + 1);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i * 3 + 1);
        }
    }

    #[test]
    fn for_mut_worker_count_does_not_change_result() {
        let mix = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(11);
        let mut seq = vec![0u64; 64];
        parallel_for_mut(&mut seq, 1, |i, slot| *slot = mix(i));
        for w in [2, 3, 8, 64] {
            let mut par = vec![0u64; 64];
            parallel_for_mut(&mut par, w, |i, slot| *slot = mix(i));
            assert_eq!(seq, par, "workers = {w}");
        }
    }

    #[test]
    fn for_mut_empty_and_tiny_inputs() {
        let mut empty: Vec<u8> = Vec::new();
        parallel_for_mut(&mut empty, 4, |_, _| unreachable!());
        let mut one = vec![7u8];
        parallel_for_mut(&mut one, 9, |i, v| *v += i as u8 + 1);
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn crew_results_are_in_input_order_at_any_worker_count() {
        let job = |i: usize, &x: &u64| x.wrapping_mul(0x9E37_79B9).rotate_left(17) ^ i as u64;
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().enumerate().map(|(i, x)| job(i, x)).collect();
        for workers in [1, 2, 3, 8] {
            let out = with_crew(workers, job, |crew| crew.dispatch(items.clone()));
            assert_eq!(out, expected, "workers = {workers}");
        }
    }

    #[test]
    fn crew_survives_many_rounds() {
        // The point of the crew: many small dispatches reuse the same
        // threads. Interleave round sizes to exercise stragglers waking
        // into already-finished rounds.
        with_crew(4, |i: usize, &x: &u32| x + i as u32, |crew| {
            for round in 0..200u32 {
                let n = (round % 7) as usize;
                let out = crew.dispatch(vec![round; n]);
                let expected: Vec<u32> = (0..n as u32).map(|i| round + i).collect();
                assert_eq!(out, expected, "round {round}");
            }
        });
    }

    #[test]
    fn crew_empty_dispatch_is_empty() {
        let out = with_crew(3, |_: usize, &x: &u8| x, |crew| crew.dispatch(Vec::new()));
        assert!(out.is_empty());
    }

    #[test]
    fn crew_single_worker_runs_inline() {
        // With one worker the dispatch must not touch any thread
        // machinery: verify by observing the calling thread's id.
        let caller = std::thread::current().id();
        let out = with_crew(
            1,
            move |_: usize, _: &()| std::thread::current().id() == caller,
            |crew| crew.dispatch(vec![(), (), ()]),
        );
        assert_eq!(out, vec![true, true, true]);
    }

    #[test]
    fn workers_inherit_dispatchers_job_scope() {
        use crate::telemetry::{current_job, TelemetryScope};
        let _scope = TelemetryScope::enter(42);
        let items: Vec<u8> = vec![0; 32];
        let seen = parallel_map(&items, 4, |_, _| current_job());
        assert!(seen.iter().all(|&j| j == 42), "parallel_map lost the job id");
        let mut slots = vec![0u64; 32];
        parallel_for_mut(&mut slots, 4, |_, s| *s = current_job());
        assert!(slots.iter().all(|&j| j == 42), "parallel_for_mut lost the job id");
        let crew_seen = with_crew(
            4,
            |_: usize, _: &u8| current_job(),
            |crew| {
                // The round carries the id live at dispatch time, not the
                // id live when the crew was spawned.
                let _inner = TelemetryScope::enter(77);
                crew.dispatch(vec![0u8; 32])
            },
        );
        assert!(
            crew_seen.iter().all(|&j| j == 77),
            "crew round lost the dispatch-time job id: {crew_seen:?}"
        );
    }

    #[test]
    fn crew_driver_return_value_passes_through() {
        let sum: u64 = with_crew(2, |_: usize, &x: &u64| x * 2, |crew| {
            crew.dispatch((1..=10).collect()).into_iter().sum()
        });
        assert_eq!(sum, 110);
    }
}

//! Seedable pseudo-random number generation.
//!
//! The generator is xoshiro256** (Blackman & Vigna), seeded by expanding a
//! single `u64` through SplitMix64 — the standard construction that maps
//! any seed, including 0, to a full-period non-zero state. All sampling
//! helpers are provided methods on the [`Rng`] trait so call sites stay
//! generic over the generator, exactly as they were over `rand::Rng`.
//!
//! Determinism contract: given the same seed, the same draw sequence is
//! produced on every platform and in every build profile. Pipeline
//! reproducibility (identical reports at any worker count) rests on this.

/// SplitMix64: a tiny, fast, well-distributed 64-bit generator. Used both
/// as the seeding expander for [`Xoshiro256ss`] and directly where a
/// single-word state is enough (per-case seeds in the property harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's standard generator. 256-bit state, period
/// 2^256 − 1, passes BigCrush; more than enough for synthesis restarts,
/// benchmark circuit generation and property-test case generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256ss {
    s: [u64; 4],
}

/// The default generator, by its conventional name — a drop-in for the
/// `rand::rngs::StdRng` the workspace used before going hermetic.
pub type StdRng = Xoshiro256ss;

impl Xoshiro256ss {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256ss {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

/// A source of randomness with the sampling helpers the compiler uses.
pub trait Rng {
    /// The next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw in `[0, bound)` via Lemire-style rejection on the
    /// high bits (unbiased; `bound == 0` panics).
    fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_u64_below(0)");
        // Rejection zone keeps the draw exactly uniform.
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A fair coin flip.
    fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform draw from an integer or float range, e.g.
    /// `rng.gen_range(0..n)` or `rng.gen_range(1..=3usize)`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A standard-normal sample via Box–Muller (two uniform draws; the
    /// first is rejected while it is too small to take a logarithm of).
    fn gen_gaussian(&mut self) -> f64 {
        loop {
            let u1 = self.gen_f64();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = self.gen_f64();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// A range a [`Rng`] can sample uniformly. Implemented for the half-open
/// and inclusive ranges the workspace draws from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> Self::Output;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_u64_below(span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                // span == 0 means the full u64 domain; only reachable for
                // u64::MIN..=u64::MAX, which no caller uses — guard anyway.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + rng.next_u64_below(span) as $t
            }
        }
    )*};
}

impl_sample_unsigned!(usize, u64, u32, u8);

impl SampleRange for std::ops::Range<i32> {
    type Output = i32;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> i32 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.next_u64_below(span) as i64) as i32
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_seed_reproduces_exactly() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "streams from different seeds collided");
    }

    #[test]
    fn zero_seed_is_usable() {
        // SplitMix64 expansion means seed 0 must not produce the all-zero
        // (stuck) xoshiro state.
        let mut r = StdRng::seed_from_u64(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&v| v != 0));
        assert_ne!(draws[0], draws[1]);
    }

    #[test]
    fn splitmix_known_vector() {
        // First outputs for seed 0, per the public-domain splitmix64.c
        // reference implementation.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0,1)");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let a = r.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(1..=3usize);
            assert!((1..=3).contains(&b));
            let c = r.gen_range(0..7);
            assert!((0..7).contains(&c));
            let d = r.gen_range(-2.5..2.5f64);
            assert!((-2.5..2.5).contains(&d));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut r = StdRng::seed_from_u64(13);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let skew = samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
        assert!(skew.abs() < 0.05, "skew {skew}");
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut r = StdRng::seed_from_u64(5);
        let heads = (0..10_000).filter(|_| r.gen_bool()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn next_u64_below_is_unbiased_at_edges() {
        let mut r = StdRng::seed_from_u64(17);
        for _ in 0..1000 {
            assert_eq!(r.next_u64_below(1), 0);
        }
        for _ in 0..1000 {
            assert!(r.next_u64_below(3) < 3);
        }
    }
}
